//! Engine checkpoints: persist a trained [`Distinct`] and resume later.
//!
//! A checkpoint captures everything training and profiling paid for —
//! learned path weights, the full learned model (hyperplanes + Platt
//! calibration), the tuned `min_sim`, and the profile cache — so a
//! restarted process skips straight to resolution.
//!
//! File format (single file):
//!
//! ```text
//! DISTINCTCKPT2\n
//! <16 hex chars: FNV-1a-64 of the payload bytes>\n
//! <JSON payload>
//! ```
//!
//! The magic line's numeric suffix is the checkpoint **format version**
//! ([`CHECKPOINT_FORMAT_VERSION`]), repeated as a `format` field inside
//! the payload. A file written by a build with a different version is
//! refused with the typed [`DistinctError::VersionMismatch`] — never
//! reinterpreted under this build's schema, and never conflated with
//! corruption (the bytes are intact, just foreign).
//!
//! Writes go to a `*.tmp` sibling first and are renamed into place, via
//! the same [`Vfs`](relstore::Vfs) abstraction the store uses — so the
//! fault-injection harness can kill a checkpoint save mid-write and prove
//! the previous checkpoint survives. Loads verify the checksum before
//! parsing a byte: a torn or bit-flipped checkpoint surfaces as
//! [`DistinctError::CorruptCheckpoint`], never as a silently wrong model.
//!
//! A checkpoint is only valid against the catalog it was built from: the
//! profile cache stores graph node ids. Loading validates the join-path
//! descriptions and the catalog's tuple count and refuses on mismatch.

use crate::features::Profile;
use crate::learn::{LearnedModel, PathWeights};
use crate::pipeline::{Distinct, DistinctError};
use relgraph::{Propagation, WeightedSet};
use relstore::{fnv1a64, FxHashMap, StdVfs, TupleRef, Vfs};
use serde::{Deserialize, Serialize};
use std::path::Path;
use std::sync::Arc;

/// Magic prefix of a checkpoint file's header line; the numeric suffix is
/// the format version.
pub const CHECKPOINT_MAGIC_PREFIX: &str = "DISTINCTCKPT";

/// Checkpoint format version this build reads and writes. Bumped whenever
/// the payload schema changes shape; loads of any other version fail with
/// [`DistinctError::VersionMismatch`].
pub const CHECKPOINT_FORMAT_VERSION: u32 = 2;

/// Magic header line of a checkpoint file (prefix + format version).
pub const CHECKPOINT_MAGIC: &str = "DISTINCTCKPT2";

#[derive(Debug, Serialize, Deserialize)]
pub(crate) struct PropEntry {
    forward: Vec<(u32, f64)>,
    backward: Vec<(u32, f64)>,
}

/// Persisted form of one reference profile. Shared by the engine
/// checkpoint and the run manager's per-chunk profile checkpoints.
#[derive(Debug, Serialize, Deserialize)]
pub(crate) struct ProfileEntry {
    rel: u32,
    tid: u32,
    props: Vec<PropEntry>,
}

/// Encode one profile for persistence. Deterministic: the hash-ordered
/// propagation maps are emitted as sorted pair lists, so identical
/// profiles always serialize to identical bytes.
pub(crate) fn encode_profile(p: &Profile) -> ProfileEntry {
    ProfileEntry {
        rel: p.reference.rel.0,
        tid: p.reference.tid.0,
        props: p
            .props
            .iter()
            .map(|prop| PropEntry {
                forward: sorted_pairs(&prop.forward),
                backward: sorted_pairs(&prop.backward),
            })
            .collect(),
    }
}

/// Decode one persisted profile. `None` when the per-path propagation
/// count disagrees with the engine's path set (a checkpoint from a
/// different schema).
pub(crate) fn decode_profile(entry: &ProfileEntry, n_paths: usize) -> Option<Profile> {
    if entry.props.len() != n_paths {
        return None;
    }
    let reference = TupleRef::new(relstore::RelId(entry.rel), relstore::TupleId(entry.tid));
    let mut props = Vec::with_capacity(n_paths);
    let mut sets = Vec::with_capacity(n_paths);
    for p in &entry.props {
        let to_map = |pairs: &[(u32, f64)]| {
            pairs
                .iter()
                .map(|&(n, w)| (relgraph::NodeId(n), w))
                .collect::<FxHashMap<relgraph::NodeId, f64>>()
        };
        let prop = Propagation {
            forward: to_map(&p.forward),
            backward: to_map(&p.backward),
        };
        sets.push(WeightedSet::from_map(prop.forward.clone()));
        props.push(prop);
    }
    Some(Profile {
        reference,
        props,
        sets,
        placeholder: false,
    })
}

#[derive(Debug, Serialize, Deserialize)]
struct CheckpointPayload {
    /// Format version, repeated from the magic line so a re-framed payload
    /// cannot smuggle a foreign schema past the header check.
    format: u32,
    /// Join-path descriptions — the checkpoint's compatibility key.
    paths: Vec<String>,
    /// Tuple count of the catalog the profiles were computed against
    /// (graph node ids are only meaningful for that exact catalog).
    catalog_tuples: u64,
    min_sim: f64,
    weights: PathWeights,
    learned: Option<LearnedModel>,
    profiles: Vec<ProfileEntry>,
}

fn corrupt(path: &Path, reason: impl Into<String>) -> DistinctError {
    DistinctError::CorruptCheckpoint {
        path: path.display().to_string(),
        reason: reason.into(),
    }
}

fn sorted_pairs(map: &FxHashMap<relgraph::NodeId, f64>) -> Vec<(u32, f64)> {
    let mut v: Vec<(u32, f64)> = map.iter().map(|(n, &w)| (n.0, w)).collect();
    v.sort_unstable_by_key(|&(n, _)| n);
    v
}

impl Distinct {
    /// Serialize the engine's trained state to `path` through an explicit
    /// [`Vfs`] — the fault-injectable entry point.
    pub fn save_checkpoint_with(
        &self,
        path: &Path,
        vfs: &mut dyn Vfs,
    ) -> Result<(), DistinctError> {
        let mut profiles: Vec<ProfileEntry> = self
            .profile_cache_snapshot()
            .into_iter()
            .map(|(_, p)| encode_profile(&p))
            .collect();
        // Deterministic output: the cache iterates in hash order.
        profiles.sort_unstable_by_key(|e| (e.rel, e.tid));
        let payload = CheckpointPayload {
            format: CHECKPOINT_FORMAT_VERSION,
            paths: self.paths().descriptions.clone(),
            catalog_tuples: self.catalog().tuple_count() as u64,
            min_sim: self.config().min_sim,
            weights: self.weights().clone(),
            learned: self.learned().cloned(),
            profiles,
        };
        let json = serde_json::to_string(&payload).map_err(|e| {
            DistinctError::Store(relstore::StoreError::Io {
                context: "serialize checkpoint".into(),
                reason: e.to_string(),
            })
        })?;
        let blob = format!(
            "{CHECKPOINT_MAGIC}\n{:016x}\n{json}",
            fnv1a64(json.as_bytes())
        );
        let tmp = path.with_extension("tmp");
        vfs.write(&tmp, blob.as_bytes()).map_err(|e| {
            DistinctError::Store(relstore::StoreError::Io {
                context: "write checkpoint".into(),
                reason: e.to_string(),
            })
        })?;
        vfs.rename(&tmp, path).map_err(|e| {
            DistinctError::Store(relstore::StoreError::Io {
                context: "commit checkpoint".into(),
                reason: e.to_string(),
            })
        })
    }

    /// Serialize the engine's trained state (weights, learned model,
    /// `min_sim`, profile cache) to `path`, atomically.
    pub fn save_checkpoint(&self, path: &Path) -> Result<(), DistinctError> {
        self.save_checkpoint_with(path, &mut StdVfs)
    }

    /// Restore state saved by [`Distinct::save_checkpoint`] into this
    /// engine (which must be [`Distinct::prepare`]d over the same catalog
    /// with the same path-enumeration settings), through an explicit
    /// [`Vfs`].
    pub fn load_checkpoint_with(
        &mut self,
        path: &Path,
        vfs: &mut dyn Vfs,
    ) -> Result<(), DistinctError> {
        let bytes = vfs.read(path).map_err(|e| {
            DistinctError::Store(relstore::StoreError::Io {
                context: "read checkpoint".into(),
                reason: e.to_string(),
            })
        })?;
        let text = std::str::from_utf8(&bytes)
            .map_err(|_| corrupt(path, "checkpoint is not valid UTF-8"))?;
        let mut lines = text.splitn(3, '\n');
        let magic = lines.next().unwrap_or("");
        if magic != CHECKPOINT_MAGIC {
            // A well-formed magic with a different version suffix is a
            // foreign-build checkpoint, not corruption.
            if let Some(found) = magic
                .strip_prefix(CHECKPOINT_MAGIC_PREFIX)
                .and_then(|v| v.parse::<u32>().ok())
            {
                return Err(DistinctError::VersionMismatch {
                    path: path.display().to_string(),
                    found,
                    expected: CHECKPOINT_FORMAT_VERSION,
                });
            }
            return Err(corrupt(
                path,
                format!("bad magic `{magic}` (expected {CHECKPOINT_MAGIC})"),
            ));
        }
        let declared = lines
            .next()
            .ok_or_else(|| corrupt(path, "missing checksum line"))?;
        let json = lines
            .next()
            .ok_or_else(|| corrupt(path, "missing payload"))?;
        let actual = format!("{:016x}", fnv1a64(json.as_bytes()));
        if declared != actual {
            return Err(corrupt(
                path,
                format!("checksum mismatch: header {declared}, payload {actual}"),
            ));
        }
        let payload: CheckpointPayload = serde_json::from_str(json)
            .map_err(|e| corrupt(path, format!("unparseable payload: {e}")))?;
        if payload.format != CHECKPOINT_FORMAT_VERSION {
            return Err(DistinctError::VersionMismatch {
                path: path.display().to_string(),
                found: payload.format,
                expected: CHECKPOINT_FORMAT_VERSION,
            });
        }
        if payload.paths != self.paths().descriptions {
            return Err(corrupt(
                path,
                "checkpoint was built for a different join-path set",
            ));
        }
        if payload.catalog_tuples != self.catalog().tuple_count() as u64 {
            return Err(corrupt(
                path,
                format!(
                    "checkpoint catalog had {} tuples, this one has {}",
                    payload.catalog_tuples,
                    self.catalog().tuple_count()
                ),
            ));
        }
        let n_paths = self.paths().len();
        let mut restored: Vec<(TupleRef, Arc<Profile>)> =
            Vec::with_capacity(payload.profiles.len());
        for entry in &payload.profiles {
            let profile = decode_profile(entry, n_paths).ok_or_else(|| {
                corrupt(
                    path,
                    format!(
                        "profile has {} per-path propagations, engine has {n_paths} paths",
                        entry.props.len()
                    ),
                )
            })?;
            restored.push((profile.reference, Arc::new(profile)));
        }
        // All validation passed: install atomically (state-wise) — a
        // failed load leaves the engine exactly as it was.
        self.set_min_sim(payload.min_sim);
        self.set_weights(payload.weights)
            .map_err(|_| corrupt(path, "weight dimensionality does not match path set"))?;
        self.install_learned(payload.learned);
        self.install_profiles(restored);
        Ok(())
    }

    /// Restore state saved by [`Distinct::save_checkpoint`].
    pub fn load_checkpoint(&mut self, path: &Path) -> Result<(), DistinctError> {
        self.load_checkpoint_with(path, &mut StdVfs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DistinctConfig;
    use datagen::{AmbiguousSpec, World, WorldConfig};
    use relstore::{FaultPlan, FaultyVfs};

    fn dataset() -> datagen::DblpDataset {
        let mut config = WorldConfig::tiny(21);
        config.ambiguous = vec![AmbiguousSpec::new("Wei Wang", vec![6, 5])];
        datagen::to_catalog(&World::generate(config)).unwrap()
    }

    fn engine(d: &datagen::DblpDataset) -> Distinct {
        let config = DistinctConfig {
            training: crate::config::TrainingConfig {
                positives: 60,
                negatives: 60,
                ..Default::default()
            },
            ..Default::default()
        };
        Distinct::prepare(&d.catalog, "Publish", "author", config).unwrap()
    }

    fn temp_file(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("distinct_ckpt_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("engine.ckpt")
    }

    #[test]
    fn checkpoint_round_trip_restores_weights_model_and_profiles() {
        let d = dataset();
        let mut trained = engine(&d);
        trained.train().unwrap();
        let refs = trained.references_of("Wei Wang");
        let expected = trained
            .resolve(&crate::request::ResolveRequest::new(&refs))
            .clustering;
        let cached = trained.cached_profiles();
        assert!(cached > 0);

        let path = temp_file("rt");
        trained.save_checkpoint(&path).unwrap();

        let mut fresh = engine(&d);
        assert_eq!(fresh.cached_profiles(), 0);
        fresh.load_checkpoint(&path).unwrap();
        assert_eq!(fresh.weights(), trained.weights());
        assert!(fresh.learned().is_some());
        assert_eq!(fresh.cached_profiles(), cached);
        // Resolution from the restored cache is bit-identical — and spends
        // no budget on profiling (everything is cached).
        let ctl = crate::control::RunControl::new();
        let outcome = fresh.resolve(&crate::request::ResolveRequest::new(&refs).control(&ctl));
        assert_eq!(outcome.clustering.labels, expected.labels);
        std::fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }

    #[test]
    fn checkpoint_save_is_deterministic() {
        let d = dataset();
        let mut e = engine(&d);
        e.train().unwrap();
        let p1 = temp_file("det1");
        let p2 = temp_file("det2");
        e.save_checkpoint(&p1).unwrap();
        e.save_checkpoint(&p2).unwrap();
        assert_eq!(std::fs::read(&p1).unwrap(), std::fs::read(&p2).unwrap());
        std::fs::remove_dir_all(p1.parent().unwrap()).unwrap();
        std::fs::remove_dir_all(p2.parent().unwrap()).unwrap();
    }

    #[test]
    fn corrupted_checkpoint_is_rejected_at_every_byte() {
        let d = dataset();
        let mut e = engine(&d);
        e.train().unwrap();
        let path = temp_file("flip");
        e.save_checkpoint(&path).unwrap();
        let blob = std::fs::read(&path).unwrap();
        // Flip one bit at a spread of positions; every corruption must be
        // caught (magic, checksum line, or payload checksum mismatch).
        let step = (blob.len() / 40).max(1);
        for pos in (0..blob.len()).step_by(step) {
            let mut bad = blob.clone();
            bad[pos] ^= 0x04;
            std::fs::write(&path, &bad).unwrap();
            let mut fresh = engine(&d);
            let err = fresh.load_checkpoint(&path).unwrap_err();
            // A flip landing on the magic's version digit reads as a
            // foreign version; everywhere else it is corruption. Both are
            // rejections that install nothing.
            assert!(
                matches!(
                    err,
                    DistinctError::CorruptCheckpoint { .. } | DistinctError::VersionMismatch { .. }
                ),
                "byte {pos}: expected a rejection, got {err}"
            );
            // The failed load left the engine untrained and uncached.
            assert!(fresh.learned().is_none());
            assert_eq!(fresh.cached_profiles(), 0);
        }
        std::fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }

    #[test]
    fn truncated_checkpoint_is_rejected() {
        let d = dataset();
        let mut e = engine(&d);
        e.train().unwrap();
        let path = temp_file("trunc");
        e.save_checkpoint(&path).unwrap();
        let blob = std::fs::read(&path).unwrap();
        for keep in [0, 1, CHECKPOINT_MAGIC.len(), blob.len() / 2, blob.len() - 1] {
            std::fs::write(&path, &blob[..keep]).unwrap();
            let mut fresh = engine(&d);
            assert!(
                fresh.load_checkpoint(&path).is_err(),
                "prefix of {keep} bytes loaded"
            );
        }
        std::fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }

    #[test]
    fn killed_checkpoint_save_preserves_the_previous_checkpoint() {
        let d = dataset();
        let mut e = engine(&d);
        e.train().unwrap();
        let path = temp_file("kill");
        e.save_checkpoint(&path).unwrap();
        let committed = std::fs::read(&path).unwrap();

        // Warm more profiles so a second save differs, then kill its write.
        let refs = e.references_of("Wei Wang");
        let _ = e.resolve(&crate::request::ResolveRequest::new(&refs));
        for plan in [
            FaultPlan::fail_nth_write(1),
            FaultPlan::torn_nth_write(1, 13),
        ] {
            let mut vfs = FaultyVfs::new(plan);
            assert!(e.save_checkpoint_with(&path, &mut vfs).is_err());
            // The committed checkpoint file is untouched and still loads.
            assert_eq!(std::fs::read(&path).unwrap(), committed);
            let mut fresh = engine(&d);
            fresh.load_checkpoint(&path).unwrap();
        }

        // A bit flip succeeds at write time but is caught at load.
        let mut vfs = FaultyVfs::new(FaultPlan::bit_flip_nth_write(1, 99));
        e.save_checkpoint_with(&path, &mut vfs).unwrap();
        let mut fresh = engine(&d);
        assert!(matches!(
            fresh.load_checkpoint(&path).unwrap_err(),
            DistinctError::CorruptCheckpoint { .. }
        ));
        std::fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }

    #[test]
    fn foreign_format_version_is_a_typed_mismatch() {
        let d = dataset();
        let mut e = engine(&d);
        e.train().unwrap();
        let path = temp_file("ver");
        e.save_checkpoint(&path).unwrap();
        let blob = std::fs::read_to_string(&path).unwrap();

        // A version-1 file (the pre-versioned-payload format): typed
        // mismatch from the magic line, not a confusing bad-magic error.
        let old = blob.replacen(CHECKPOINT_MAGIC, "DISTINCTCKPT1", 1);
        std::fs::write(&path, &old).unwrap();
        let mut fresh = engine(&d);
        match fresh.load_checkpoint(&path).unwrap_err() {
            DistinctError::VersionMismatch {
                found, expected, ..
            } => {
                assert_eq!(found, 1);
                assert_eq!(expected, CHECKPOINT_FORMAT_VERSION);
            }
            other => panic!("expected VersionMismatch, got {other}"),
        }
        assert!(fresh.learned().is_none());
        assert_eq!(fresh.cached_profiles(), 0);

        // A re-framed payload smuggling a foreign `format` field past a
        // current magic line is caught by the payload check.
        let (_, rest) = blob.split_once('\n').unwrap();
        let (_, json) = rest.split_once('\n').unwrap();
        let smuggled = json.replacen(
            &format!("\"format\":{CHECKPOINT_FORMAT_VERSION}"),
            "\"format\":99",
            1,
        );
        assert_ne!(smuggled, json, "payload must carry the format field");
        let reframed = format!(
            "{CHECKPOINT_MAGIC}\n{:016x}\n{smuggled}",
            fnv1a64(smuggled.as_bytes())
        );
        std::fs::write(&path, reframed).unwrap();
        let mut fresh = engine(&d);
        assert!(matches!(
            fresh.load_checkpoint(&path).unwrap_err(),
            DistinctError::VersionMismatch { found: 99, .. }
        ));
        std::fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }

    #[test]
    fn checkpoint_for_a_different_catalog_is_refused() {
        let d = dataset();
        let mut e = engine(&d);
        e.train().unwrap();
        let path = temp_file("xcat");
        e.save_checkpoint(&path).unwrap();

        let mut other_cfg = WorldConfig::tiny(22);
        other_cfg.ambiguous = vec![AmbiguousSpec::new("Wei Wang", vec![4, 4])];
        let other = datagen::to_catalog(&World::generate(other_cfg)).unwrap();
        let mut fresh = engine(&other);
        assert!(matches!(
            fresh.load_checkpoint(&path).unwrap_err(),
            DistinctError::CorruptCheckpoint { .. }
        ));
        std::fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }
}

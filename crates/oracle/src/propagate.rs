//! Naive connection-strength propagation by exhaustive walk enumeration
//! (paper §2.2).
//!
//! The paper defines `Prob_P(r → t)` by uniform probability propagation:
//! the tuple containing `r` starts with mass 1 and at every step each
//! tuple splits its mass evenly over the tuples joinable along the next
//! step. Equivalently — and this is the form implemented here —
//!
//! ```text
//! Prob_P(r → t) = Σ over walks r = u_0, u_1, …, u_L = t  of  Π_i 1/|nbrs(u_i)|
//! ```
//!
//! where `|nbrs(u_i)|` counts *all* tuples joinable from `u_i` along step
//! `i+1`. This module enumerates each walk individually via recursion over
//! the catalog's foreign-key indexes and accumulates the products into a
//! `BTreeMap` keyed by [`TupleRef`], so every sum runs in tuple order.
//!
//! Semantics mirrored from the production propagation, stated explicitly:
//!
//! * **Blocked tuples** (the reference's own name tuple): a walk that
//!   steps onto a blocked tuple is dropped, but the `1/|nbrs|` share is
//!   still computed over the *unfiltered* neighbor count — blocked mass
//!   is lost, never renormalized. This holds in both directions.
//! * **Dead ends** (e.g. a null foreign key): the walk contributes
//!   nothing; its mass is lost.
//! * **Backward probabilities** `Prob_P(t → r)`: the probability that a
//!   walk from `t` along the reversed path lands exactly on `r`, with the
//!   same blocked/dead-end rules. They are computed only for tuples in
//!   the forward support (which is exactly the set of tuples that can
//!   reach `r` backwards — a forward walk reversed is a backward walk).

use relstore::{Catalog, Direction, JoinPath, JoinStep, TupleRef};
use std::collections::BTreeMap;

/// A deterministic weighted tuple set: probability mass per tuple, in
/// tuple order.
pub type Mass = BTreeMap<TupleRef, f64>;

/// Result of propagating one reference along one join path.
#[derive(Debug, Clone, Default)]
pub struct OraclePropagation {
    /// `Prob_P(r → t)` per reachable end-relation tuple `t`.
    pub forward: Mass,
    /// `Prob_P(t → r)` per reachable end-relation tuple `t` (same key set
    /// as `forward`).
    pub backward: Mass,
}

/// All tuples joinable from `t` along one step, straight from the
/// catalog's foreign-key indexes.
fn step_neighbors(catalog: &Catalog, step: JoinStep, t: TupleRef) -> Vec<TupleRef> {
    match step.dir {
        Direction::Forward => catalog.follow_forward(step.fk, t).into_iter().collect(),
        Direction::Backward => catalog.follow_backward(step.fk, t),
    }
}

/// Recursively enumerate forward walks from `t`, carrying the accumulated
/// probability `p`, and add each completed walk's mass to `out`.
fn forward_walks(
    catalog: &Catalog,
    steps: &[JoinStep],
    t: TupleRef,
    p: f64,
    blocked: &[TupleRef],
    out: &mut Mass,
) {
    match steps.split_first() {
        None => {
            *out.entry(t).or_insert(0.0) += p;
        }
        Some((step, rest)) => {
            let nbrs = step_neighbors(catalog, *step, t);
            if nbrs.is_empty() {
                return; // dead end: mass lost
            }
            // Share over the unfiltered neighbor count: mass stepping onto
            // a blocked tuple is lost, not redistributed.
            let share = p / nbrs.len() as f64;
            for v in nbrs {
                if blocked.contains(&v) {
                    continue;
                }
                forward_walks(catalog, rest, v, share, blocked, out);
            }
        }
    }
}

/// Recursively enumerate reverse walks from `t`; return the total
/// probability of landing exactly on `origin`.
fn reverse_walks(
    catalog: &Catalog,
    steps: &[JoinStep],
    t: TupleRef,
    p: f64,
    blocked: &[TupleRef],
    origin: TupleRef,
) -> f64 {
    match steps.split_first() {
        None => {
            if t == origin {
                p
            } else {
                0.0
            }
        }
        Some((step, rest)) => {
            let nbrs = step_neighbors(catalog, *step, t);
            if nbrs.is_empty() {
                return 0.0;
            }
            let share = p / nbrs.len() as f64;
            let mut acc = 0.0;
            for v in nbrs {
                if blocked.contains(&v) {
                    continue;
                }
                acc += reverse_walks(catalog, rest, v, share, blocked, origin);
            }
            acc
        }
    }
}

/// Propagate probabilities from `origin` along `path` by full walk
/// enumeration, never passing through any `blocked` tuple.
///
/// `origin` must be a tuple of the path's start relation. An empty path
/// yields `{origin: 1.0}` in both directions.
pub fn enumerate_propagation(
    catalog: &Catalog,
    path: &JoinPath,
    origin: TupleRef,
    blocked: &[TupleRef],
) -> OraclePropagation {
    let mut forward = Mass::new();
    forward_walks(catalog, &path.steps, origin, 1.0, blocked, &mut forward);

    // Reverse the path: steps in reverse order, each direction flipped.
    let steps_rev: Vec<JoinStep> = path.steps.iter().rev().map(|s| s.reversed()).collect();
    let mut backward = Mass::new();
    for &t in forward.keys() {
        let p = reverse_walks(catalog, &steps_rev, t, 1.0, blocked, origin);
        backward.insert(t, p);
    }
    OraclePropagation { forward, backward }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relstore::{AttrType, SchemaBuilder, TupleId, Value};

    /// The Fig. 3-style coauthor shape: Publish -> Papers <- Publish ->
    /// Authors, with paper 1 by (w, x, y) and paper 2 by (w, z).
    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_relation(
            SchemaBuilder::new("Authors")
                .key("a", AttrType::Str)
                .build()
                .unwrap(),
        )
        .unwrap();
        c.add_relation(
            SchemaBuilder::new("Papers")
                .key("p", AttrType::Int)
                .build()
                .unwrap(),
        )
        .unwrap();
        c.add_relation(
            SchemaBuilder::new("Publish")
                .fk("a", AttrType::Str, "Authors")
                .fk("p", AttrType::Int, "Papers")
                .build()
                .unwrap(),
        )
        .unwrap();
        for a in ["w", "x", "y", "z"] {
            c.insert("Authors", [Value::str(a)].into()).unwrap();
        }
        for p in 1..=2 {
            c.insert("Papers", [Value::Int(p)].into()).unwrap();
        }
        for (a, p) in [("w", 1), ("x", 1), ("y", 1), ("w", 2), ("z", 2)] {
            c.insert("Publish", [Value::str(a), Value::Int(p)].into())
                .unwrap();
        }
        c.finalize(true).unwrap();
        c
    }

    fn coauthor_path(c: &Catalog) -> JoinPath {
        let publish = c.relation_id("Publish").unwrap();
        let fk_p = c
            .fk_edges()
            .iter()
            .find(|e| e.label == "Publish.p->Papers")
            .unwrap()
            .id;
        let fk_a = c
            .fk_edges()
            .iter()
            .find(|e| e.label == "Publish.a->Authors")
            .unwrap()
            .id;
        JoinPath::new(
            publish,
            vec![
                JoinStep::forward(fk_p),
                JoinStep::backward(fk_p),
                JoinStep::forward(fk_a),
            ],
            c,
        )
        .unwrap()
    }

    fn publish(c: &Catalog, idx: u32) -> TupleRef {
        TupleRef::new(c.relation_id("Publish").unwrap(), TupleId(idx))
    }

    fn author(c: &Catalog, name: &str) -> TupleRef {
        let authors = c.relation_id("Authors").unwrap();
        let tid = c.relation(authors).by_key(&Value::str(name)).unwrap();
        TupleRef::new(authors, tid)
    }

    #[test]
    fn forward_matches_hand_computation() {
        let c = catalog();
        let p = enumerate_propagation(&c, &coauthor_path(&c), publish(&c, 0), &[]);
        // From (w, paper1): 1 → paper1 → its 3 records (1/3 each) → authors
        // w, x, y at 1/3 each.
        assert_eq!(p.forward.len(), 3);
        for name in ["w", "x", "y"] {
            let v = p.forward[&author(&c, name)];
            assert!((v - 1.0 / 3.0).abs() < 1e-12, "{name}: {v}");
        }
        let total: f64 = p.forward.values().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn backward_matches_hand_computation() {
        let c = catalog();
        let p = enumerate_propagation(&c, &coauthor_path(&c), publish(&c, 0), &[]);
        // From x (1 record → paper1 → 3 records): landing on the origin
        // record has probability 1/3. From w (2 records, one branch can
        // reach the origin): 1/2 · 1/3 = 1/6.
        assert!((p.backward[&author(&c, "x")] - 1.0 / 3.0).abs() < 1e-12);
        assert!((p.backward[&author(&c, "w")] - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn blocking_loses_mass_without_renormalizing() {
        let c = catalog();
        // Origin (x, paper1), block author w: x and y keep exactly 1/3.
        let blocked = vec![author(&c, "w")];
        let p = enumerate_propagation(&c, &coauthor_path(&c), publish(&c, 1), &blocked);
        assert!(!p.forward.contains_key(&blocked[0]));
        for name in ["x", "y"] {
            let v = p.forward[&author(&c, name)];
            assert!((v - 1.0 / 3.0).abs() < 1e-12, "{name}: {v}");
        }
        let total: f64 = p.forward.values().sum();
        assert!((total - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_path_is_the_origin_with_probability_one() {
        let c = catalog();
        let publish_rel = c.relation_id("Publish").unwrap();
        let origin = publish(&c, 2);
        let p = enumerate_propagation(&c, &JoinPath::empty(publish_rel), origin, &[]);
        assert_eq!(p.forward.len(), 1);
        assert_eq!(p.forward[&origin], 1.0);
        assert_eq!(p.backward[&origin], 1.0);
    }

    #[test]
    fn forward_and_backward_share_support_with_positive_values() {
        let c = catalog();
        let path = coauthor_path(&c);
        for idx in 0..5 {
            let p = enumerate_propagation(&c, &path, publish(&c, idx), &[]);
            assert_eq!(
                p.forward.keys().collect::<Vec<_>>(),
                p.backward.keys().collect::<Vec<_>>()
            );
            for (&f, &b) in p.forward.values().zip(p.backward.values()) {
                assert!(f > 0.0 && f <= 1.0 + 1e-12);
                assert!(b > 0.0 && b <= 1.0 + 1e-12);
            }
        }
    }
}

//! Compare the paper's six method variants (Fig. 4) on a small world —
//! a fast, example-sized version of `exp_fig4`.
//!
//! Run: `cargo run --release --example compare_variants`

use datagen::{to_catalog, AmbiguousSpec, World, WorldConfig};
use distinct::{min_sim_grid, Distinct, DistinctConfig, Variant};
use eval::PairCounts;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut config = WorldConfig::default();
    config.ambiguous = vec![
        AmbiguousSpec::new("Wei Wang", vec![20, 12, 6, 4]),
        AmbiguousSpec::new("Lei Wang", vec![10, 7, 3]),
        AmbiguousSpec::new("Hui Fang", vec![6, 5]),
    ];
    let dataset = to_catalog(&World::generate(config))?;
    let base = DistinctConfig::default();

    println!("{:<32} {:>8} {:>10}", "variant", "min-sim", "f-measure");
    for variant in Variant::all() {
        let mut engine =
            Distinct::prepare(&dataset.catalog, "Publish", "author", variant.config(&base))?;
        if variant.supervised() {
            engine.train()?;
        }
        // DISTINCT runs at the fixed calibrated threshold; the baselines
        // get their best threshold from the grid, as in the paper.
        let thresholds: Vec<f64> = if variant.sweeps_min_sim() {
            min_sim_grid()
        } else {
            vec![base.min_sim]
        };
        let mut best = (0.0f64, 0.0f64);
        for min_sim in thresholds {
            let mut f_sum = 0.0;
            for truth in &dataset.truths {
                let clustering = engine
                    .resolve(&distinct::ResolveRequest::new(&truth.refs).min_sim(min_sim))
                    .clustering;
                f_sum += PairCounts::from_labels(&truth.labels, &clustering.labels)
                    .scores()
                    .f_measure;
            }
            let f = f_sum / dataset.truths.len() as f64;
            if f > best.1 {
                best = (min_sim, f);
            }
        }
        println!("{:<32} {:>8.4} {:>10.3}", variant.label(), best.0, best.1);
    }
    Ok(())
}

//! Offline drop-in subset of `proptest`.
//!
//! Supports the strategy surface the workspace uses — numeric ranges,
//! `any::<T>()`, tuples, `collection::vec`, `option::of`, `bool::ANY`,
//! simple string patterns, `prop_map`, `prop_filter_map` — driven by the
//! `proptest!` macro with `prop_assert!`/`prop_assert_eq!`.
//!
//! Differences from upstream: generation is deterministically seeded per
//! test name (no OS entropy, no persistence files), there is **no
//! shrinking** (failures print the generated inputs via the assertion
//! message instead), and string "regex" strategies understand only the
//! patterns the workspace uses (`".*"`, `"[X-Y]*"` character classes).

#![warn(missing_docs)]

/// Strategy trait: deterministic generation of arbitrary values.
pub mod strategy {
    use super::test_runner::TestRng;

    /// Generates values of an associated type from a seeded RNG.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Transform and filter: regenerate until `f` returns `Some`.
        fn prop_filter_map<U, F: Fn(Self::Value) -> Option<U>>(
            self,
            reason: &'static str,
            f: F,
        ) -> FilterMap<Self, F>
        where
            Self: Sized,
        {
            FilterMap {
                inner: self,
                f,
                reason,
            }
        }

        /// Keep only values where `f` returns true.
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            reason: &'static str,
            f: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                inner: self,
                f,
                reason,
            }
        }
    }

    /// How many times filtering strategies retry before giving up.
    const MAX_REJECTS: usize = 4096;

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_filter_map`].
    pub struct FilterMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
        pub(crate) reason: &'static str,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> Option<U>> Strategy for FilterMap<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            for _ in 0..MAX_REJECTS {
                if let Some(v) = (self.f)(self.inner.generate(rng)) {
                    return v;
                }
            }
            panic!("prop_filter_map rejected too many values: {}", self.reason);
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
        pub(crate) reason: &'static str,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..MAX_REJECTS {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected too many values: {}", self.reason);
        }
    }

    /// A constant strategy.
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub use strategy::{Just, Strategy};

mod numeric {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);
}

/// `any::<T>()` support.
pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::Rng;

    /// Types with a canonical "anything" strategy.
    pub trait Arbitrary: Sized {
        /// Generate an arbitrary value (edge cases included).
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// Strategy returned by [`super::prelude::any`].
    pub struct Any<T>(pub(crate) std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    // Mix edge cases, small values, and full-range draws,
                    // like upstream's binomial-ish integer distribution.
                    match rng.rng.gen_range(0..8u32) {
                        0 => 0,
                        1 => <$t>::MAX,
                        2 => <$t>::MIN,
                        3 | 4 => rng.rng.gen_range(0..16u64) as $t,
                        _ => rng.rng.gen::<u64>() as $t,
                    }
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.rng.gen::<bool>()
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            match rng.rng.gen_range(0..10u32) {
                0 => 0.0,
                1 => -0.0,
                2 => f64::NAN,
                3 => f64::INFINITY,
                4 => f64::NEG_INFINITY,
                5 => f64::MIN_POSITIVE,
                6 => rng.rng.gen_range(-1.0..1.0),
                _ => {
                    let m: f64 = rng.rng.gen_range(-1.0..1.0);
                    let e: i32 = rng.rng.gen_range(-300..300);
                    m * 10f64.powi(e)
                }
            }
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Size specification for [`vec`]: an exact length or a range.
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }
    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy for vectors of `element` with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.size.lo + 1 >= self.size.hi {
                self.size.lo
            } else {
                rng.rng.gen_range(self.size.lo..self.size.hi)
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies.
pub mod option {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::Rng;

    /// Strategy yielding `None` about a quarter of the time.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.rng.gen_range(0..4u32) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::Rng;

    /// Uniform boolean strategy.
    pub struct BoolAny;

    /// Uniform boolean strategy value.
    pub const ANY: BoolAny = BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.rng.gen::<bool>()
        }
    }
}

mod strings {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::Rng;

    /// String literals act as (restricted) regex strategies. Supported:
    /// `".*"` (any chars but newline, plus CSV-hostile specials) and
    /// `"[X-Y]*"` single character classes.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let n = rng.rng.gen_range(0..32usize);
            let class = parse_class(self);
            (0..n).map(|_| class.sample(rng)).collect()
        }
    }

    enum Class {
        /// `.` — anything except `\n`, weighted toward hostile chars.
        Dot,
        /// `[lo-hi]` inclusive.
        Range(char, char),
    }

    impl Class {
        fn sample(&self, rng: &mut TestRng) -> char {
            match self {
                Class::Range(lo, hi) => {
                    char::from_u32(rng.rng.gen_range(*lo as u32..=*hi as u32)).unwrap_or(*lo)
                }
                Class::Dot => match rng.rng.gen_range(0..10u32) {
                    // Quoting/parsing hazards first: the workspace uses
                    // `.*` to stress CSV and JSON round-trips.
                    0 => '"',
                    1 => ',',
                    2 => '\\',
                    3 => '\u{e9}',
                    4 => char::from_u32(rng.rng.gen_range(0x4E00..0x9FFFu32)).unwrap_or('中'),
                    _ => {
                        let c = rng.rng.gen_range(0x20..0x7Fu32);
                        char::from_u32(c).unwrap_or('x')
                    }
                },
            }
        }
    }

    fn parse_class(pattern: &str) -> Class {
        let inner = pattern.strip_suffix('*').unwrap_or(pattern);
        if inner == "." {
            return Class::Dot;
        }
        let chars: Vec<char> = inner.chars().collect();
        if chars.len() == 5 && chars[0] == '[' && chars[2] == '-' && chars[4] == ']' {
            return Class::Range(chars[1], chars[3]);
        }
        panic!(
            "vendored proptest supports only \".*\" and \"[X-Y]*\" string patterns, got {pattern:?}"
        );
    }
}

mod tuples {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    macro_rules! impl_tuple_strategy {
        ($(($($n:tt $t:ident),+))*) => {$(
            impl<$($t: Strategy),+> Strategy for ($($t,)+) {
                type Value = ($($t::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (0 A)
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
        (0 A, 1 B, 2 C, 3 D, 4 E)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H)
    }
}

/// The case runner behind the `proptest!` macro.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// RNG handed to strategies (wraps the vendored [`StdRng`]).
    pub struct TestRng {
        /// Underlying generator.
        pub rng: StdRng,
    }

    /// Per-test configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config with an explicit case count.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream defaults to 256; keep CI latency in check while
            // still exercising a meaningful sample.
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed property case.
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Build a failure from a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Run `body` for each case with a deterministic per-test RNG stream.
    pub fn run<F>(config: &ProptestConfig, test_name: &str, mut body: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        for case in 0..config.cases {
            let seed = fnv64(test_name) ^ (u64::from(case)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let mut rng = TestRng {
                rng: StdRng::seed_from_u64(seed),
            };
            if let Err(e) = body(&mut rng) {
                panic!(
                    "proptest case {case}/{} of `{test_name}` failed (seed {seed:#x}): {e}",
                    config.cases
                );
            }
        }
    }

    fn fnv64(s: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in s.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

pub use test_runner::ProptestConfig;

/// Everything the `proptest::prelude::*` glob is expected to provide.
pub mod prelude {
    pub use crate::arbitrary::{Any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

/// Assert a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::fail(format!(
                            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                            stringify!($left), stringify!($right), l, r
                        )),
                    );
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::fail(format!(
                            "{}\n  left: {:?}\n right: {:?}",
                            format!($($fmt)+), l, r
                        )),
                    );
                }
            }
        }
    };
}

/// Assert inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "assertion failed: `{} != {}`\n  both: {:?}",
                            stringify!($left),
                            stringify!($right),
                            l
                        ),
                    ));
                }
            }
        }
    };
}

/// Skip the current case when an assumption fails. The vendored runner
/// treats it as a pass (no resampling).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

/// The `proptest!` test-harness macro.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    (($cfg:expr); $(
        #[test]
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        #[test]
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            $crate::test_runner::run(&__config, stringify!($name), |__rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                $body
                #[allow(unreachable_code)]
                ::std::result::Result::Ok(())
            });
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..9, y in -2.0f64..2.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn vec_respects_size(v in crate::collection::vec(0u32..5, 2..6)) {
            prop_assert!((2..6).contains(&v.len()), "len {}", v.len());
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn tuples_and_options_compose(
            (a, s, o) in (any::<i64>(), "[ -~]*", crate::option::of(0usize..4)),
        ) {
            let _ = a;
            prop_assert!(s.chars().all(|c| (' '..='~').contains(&c)));
            if let Some(x) = o {
                prop_assert!(x < 4);
            }
        }

        #[test]
        fn prop_map_transforms(n in (0u32..10).prop_map(|x| x * 2)) {
            prop_assert!(n % 2 == 0 && n < 20);
        }

        #[test]
        fn filter_map_retries(
            n in (0u32..100).prop_filter_map("need even", |x| (x % 2 == 0).then_some(x)),
        ) {
            prop_assert!(n % 2 == 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut first: Vec<u64> = Vec::new();
        for round in 0..2 {
            let mut got = Vec::new();
            crate::test_runner::run(&ProptestConfig::with_cases(5), "determinism_probe", |rng| {
                got.push(Strategy::generate(&(0u64..1_000_000), rng));
                Ok(())
            });
            if round == 0 {
                first = got;
            } else {
                assert_eq!(first, got);
            }
        }
    }

    #[test]
    #[should_panic(expected = "failed")]
    fn failing_property_panics_with_context() {
        crate::test_runner::run(&ProptestConfig::with_cases(3), "always_fails", |_| {
            Err(crate::test_runner::TestCaseError::fail("nope"))
        });
    }
}

//! Whole-database object distinction: one pass that assigns every
//! authorship reference a global entity id, saving the database and the
//! trained model to disk along the way.
//!
//! Run: `cargo run --release --example dedupe_database`

use datagen::{to_catalog, AmbiguousSpec, World, WorldConfig};
use distinct::{DedupeOptions, Distinct, DistinctConfig};
use eval::PairCounts;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut config = WorldConfig::tiny(77);
    config.ambiguous = vec![
        AmbiguousSpec::new("Wei Wang", vec![12, 9, 4]),
        AmbiguousSpec::new("Lei Wang", vec![8, 5]),
    ];
    let dataset = to_catalog(&World::generate(config))?;

    // Persist the database itself (schema.json + one CSV per relation).
    let dir = std::env::temp_dir().join("distinct_dedupe_example");
    relstore::persist::save_catalog(&dataset.catalog, &dir)?;
    let reloaded = relstore::persist::load_catalog(&dir)?;
    println!(
        "database saved to {} and reloaded: {} relations, {} tuples",
        dir.display(),
        reloaded.relation_count(),
        reloaded.tuple_count()
    );

    // Train on the reloaded catalog and export the model.
    let mut engine = Distinct::prepare(&reloaded, "Publish", "author", DistinctConfig::default())?;
    engine.train()?;
    if let Some(c) = engine.calibrate_threshold(&Default::default())? {
        println!("auto-calibrated min-sim = {}", c.min_sim);
    }
    let model_path = dir.join("model.json");
    std::fs::write(&model_path, engine.export_model().expect("trained"))?;
    println!("trained model exported to {}", model_path.display());

    // One pass over every name.
    let assignment = engine.resolve_all(&DedupeOptions::default());
    println!(
        "\nresolved {} references into {} entities ({} names split into multiple entities):",
        assignment.assigned_refs(),
        assignment.entity_count(),
        assignment.split_names().len()
    );
    for r in assignment.split_names().iter().take(8) {
        println!("  {}: {} refs -> {} entities", r.name, r.refs, r.entities);
    }

    // Global evaluation: the generator records the true entity of every
    // Publish row, so the whole assignment can be scored with B-cubed
    // (pairwise scores over 2000+ refs are dominated by cross-name true
    // negatives, so the per-item B3 view is the informative one).
    let publish = reloaded.relation_id("Publish").unwrap();
    let mut gold = Vec::new();
    let mut pred = Vec::new();
    for (i, &entity) in dataset.publish_entities.iter().enumerate() {
        let r = relstore::TupleRef::new(publish, relstore::TupleId(i as u32));
        if let Some(e) = assignment.entity(r) {
            gold.push(entity);
            pred.push(e);
        }
    }
    let b3 = eval::bcubed_scores(&gold, &pred);
    println!(
        "
global B-cubed over {} references: p {:.3} r {:.3} f {:.3}",
        gold.len(),
        b3.precision,
        b3.recall,
        b3.f_measure
    );

    // Score the planted names against ground truth.
    for truth in &dataset.truths {
        let pred: Vec<usize> = truth
            .refs
            .iter()
            .map(|&r| assignment.entity(r).expect("assigned"))
            .collect();
        let s = PairCounts::from_labels(&truth.labels, &pred).scores();
        println!(
            "  [planted] {}: p {:.3} r {:.3} f {:.3}",
            truth.name, s.precision, s.recall, s.f_measure
        );
    }
    Ok(())
}

//! Criterion bench: random-walk probability combination between reference
//! propagations (§2.4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use relgraph::{walk_probability, NodeId, Propagation};
use relstore::FxHashMap;
use std::hint::black_box;

fn make_prop(start: u32, len: u32) -> Propagation {
    let mut fwd: FxHashMap<NodeId, f64> = FxHashMap::default();
    let mut bwd: FxHashMap<NodeId, f64> = FxHashMap::default();
    for n in start..start + len {
        let w = 1.0 / (n - start + 1) as f64;
        fwd.insert(NodeId(n), w);
        bwd.insert(NodeId(n), w * 0.5);
    }
    Propagation {
        forward: fwd,
        backward: bwd,
    }
}

fn bench_walk(c: &mut Criterion) {
    let mut group = c.benchmark_group("walk_probability");
    for &n in &[10u32, 100, 1000] {
        let a = make_prop(0, n);
        let b = make_prop(n / 2, n);
        group.bench_with_input(BenchmarkId::new("half_overlap", n), &n, |bench, _| {
            bench.iter(|| black_box(walk_probability(black_box(&a), black_box(&b))))
        });
        // Asymmetric supports exercise the smaller-side iteration choice.
        let small = make_prop(0, 8);
        group.bench_with_input(BenchmarkId::new("small_vs_large", n), &n, |bench, _| {
            bench.iter(|| black_box(walk_probability(black_box(&small), black_box(&b))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_walk);
criterion_main!(benches);

//@ path: crates/cluster/src/engine.rs
//@ crate: cluster
//! Fixture: the callee side of the cross-file D101 pair. `run` is reached
//! from `Distinct::resolve` and panics; `not_reached` panics but has no
//! caller on any entry-point path; `proven` is reached but carries a
//! reasoned suppression.

pub fn run(n: usize) -> usize {
    let v: Vec<usize> = vec![n];
    let first = v.first().copied().unwrap(); //~ D101
    first + proven(Some(first))
}

pub fn not_reached(x: Option<usize>) -> usize {
    x.unwrap()
}

pub fn proven(x: Option<usize>) -> usize {
    x.unwrap() // distinct-lint: allow(D101, reason="run passes Some unconditionally on the line above")
}

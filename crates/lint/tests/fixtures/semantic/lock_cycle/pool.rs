//@ path: crates/exec/src/pool.rs
//@ crate: exec
//! Fixture: D103 lock discipline. `ab` and `ba` acquire the same two
//! mutexes in opposite orders (a deliberate lock-order cycle), and
//! `held_send` blocks on a channel send while holding a lock — both a
//! lock-discipline violation (D103) and a guard-liveness one (D106).
//! `consistent` takes both locks in the canonical order only.

struct Pool;

impl Pool {
    fn ab(&self) {
        let a = self.mu_a.lock();
        let b = self.mu_b.lock(); //~ D103
        work(&a, &b);
    }

    fn ba(&self) {
        let b = self.mu_b.lock();
        let a = self.mu_a.lock(); //~ D103
        work(&a, &b);
    }

    fn held_send(&self) {
        let g = self.state.lock();
        self.tx.send(1); //~ D103 D106
        drop(g);
    }

    fn consistent(&self) {
        let a = self.mu_a.lock();
        let c = self.mu_c.lock();
        work(&a, &c);
    }
}

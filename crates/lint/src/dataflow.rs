//! A small forward dataflow framework over statement CFGs.
//!
//! Facts are strings (binding names, guard labels) in [`BTreeSet`]s —
//! deterministic iteration order for free, and the universes here are a
//! handful of names per function, so sets of strings beat bitsets on
//! clarity with no measurable cost. Transfer functions are gen/kill:
//! `out[s] = (in[s] − kill[s]) ∪ gen[s]`, with `in[s]` the join over
//! predecessors — union for *may* analyses (a fact holds on **some**
//! path), intersection for *must* (it holds on **every** path).
//!
//! The worklist iterates to a fixpoint; gen/kill transfer functions are
//! monotone on the powerset lattice, so termination is bounded by
//! `stmts × facts`.

use crate::cfg::Cfg;
use std::collections::BTreeSet;

/// How predecessor facts merge at a join point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Join {
    /// Union: the fact holds on at least one path (liveness, taint).
    May,
    /// Intersection: the fact holds on every path (availability).
    Must,
}

/// Per-statement gen/kill sets, indexed like `cfg.stmts`.
#[derive(Debug, Default)]
pub struct GenKill {
    /// Facts a statement creates.
    pub gen: Vec<BTreeSet<String>>,
    /// Facts a statement destroys (applied before gen).
    pub kill: Vec<BTreeSet<String>>,
}

impl GenKill {
    /// Empty gen/kill sets for `n` statements.
    pub fn new(n: usize) -> GenKill {
        GenKill {
            gen: vec![BTreeSet::new(); n],
            kill: vec![BTreeSet::new(); n],
        }
    }
}

/// The fixpoint: facts on entry to and exit from each statement.
#[derive(Debug)]
pub struct Flow {
    /// `ins[s]` — facts holding just before statement `s`.
    pub ins: Vec<BTreeSet<String>>,
    /// `outs[s]` — facts holding just after statement `s`.
    pub outs: Vec<BTreeSet<String>>,
}

impl Flow {
    /// Facts live *during* statement `s`: everything flowing in plus
    /// what the statement itself generates (a guard acquired by a
    /// statement is held for the rest of that same statement).
    pub fn during(&self, s: usize) -> BTreeSet<String> {
        self.ins[s].union(&self.outs[s]).cloned().collect()
    }
}

/// Run a forward gen/kill analysis over `cfg` to fixpoint.
pub fn forward(cfg: &Cfg, gk: &GenKill, join: Join) -> Flow {
    let n = cfg.stmts.len();
    assert_eq!(gk.gen.len(), n, "gen sets must match statement count");
    assert_eq!(gk.kill.len(), n, "kill sets must match statement count");
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (u, outs) in cfg.succ.iter().enumerate() {
        for &v in outs {
            preds[v].push(u);
        }
    }
    // Must-analyses start optimistic (everything available) at non-entry
    // statements; may-analyses start empty. Entries always start empty.
    let universe: BTreeSet<String> = gk.gen.iter().flatten().cloned().collect();
    let mut ins: Vec<BTreeSet<String>> = (0..n)
        .map(|s| {
            if join == Join::Must && !preds[s].is_empty() {
                universe.clone()
            } else {
                BTreeSet::new()
            }
        })
        .collect();
    let mut outs: Vec<BTreeSet<String>> = vec![BTreeSet::new(); n];
    for s in 0..n {
        outs[s] = transfer(&ins[s], gk, s);
    }
    let mut work: Vec<usize> = (0..n).collect();
    while let Some(s) = work.pop() {
        let merged: BTreeSet<String> = match join {
            Join::May => preds[s]
                .iter()
                .flat_map(|&p| outs[p].iter().cloned())
                .collect(),
            Join::Must => {
                let mut it = preds[s].iter();
                match it.next() {
                    None => BTreeSet::new(),
                    Some(&first) => {
                        let mut acc = outs[first].clone();
                        for &p in it {
                            acc = acc.intersection(&outs[p]).cloned().collect();
                        }
                        acc
                    }
                }
            }
        };
        let new_out = transfer(&merged, gk, s);
        if merged != ins[s] || new_out != outs[s] {
            ins[s] = merged;
            outs[s] = new_out;
            for &v in &cfg.succ[s] {
                if !work.contains(&v) {
                    work.push(v);
                }
            }
        }
    }
    Flow { ins, outs }
}

fn transfer(input: &BTreeSet<String>, gk: &GenKill, s: usize) -> BTreeSet<String> {
    let mut out: BTreeSet<String> = input.difference(&gk.kill[s]).cloned().collect();
    out.extend(gk.gen[s].iter().cloned());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{FileCtx, Role};

    fn cfg_of(body: &str) -> Cfg {
        let src = format!("fn f() {{ {body} }}");
        let ctx = FileCtx::new("crates/core/src/x.rs", "core", Role::Library, &src);
        Cfg::build(&ctx, &ctx.fns[0].clone())
    }

    fn set(names: &[&str]) -> BTreeSet<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn may_facts_survive_a_branch_without_kill() {
        // g born at stmt 0; killed only inside the if body; may-analysis
        // keeps it live after the join because the bypass path never
        // killed it.
        let cfg = cfg_of("let g = l.lock();\nif c { drop(g); }\nafter();");
        let n = cfg.stmts.len();
        let mut gk = GenKill::new(n);
        gk.gen[0] = set(&["g"]);
        gk.kill[2] = set(&["g"]); // the drop(g) statement
        let flow = forward(&cfg, &gk, Join::May);
        let after = n - 1;
        assert!(flow.ins[after].contains("g"), "{flow:?}");
    }

    #[test]
    fn must_facts_die_at_an_unbalanced_join() {
        let cfg = cfg_of("let g = l.lock();\nif c { drop(g); }\nafter();");
        let n = cfg.stmts.len();
        let mut gk = GenKill::new(n);
        gk.gen[0] = set(&["g"]);
        gk.kill[2] = set(&["g"]);
        let flow = forward(&cfg, &gk, Join::Must);
        let after = n - 1;
        assert!(!flow.ins[after].contains("g"), "{flow:?}");
    }

    #[test]
    fn kill_stops_straight_line_propagation() {
        let cfg = cfg_of("let t = m.values();\nt.sort();\nconsume(t);");
        let mut gk = GenKill::new(cfg.stmts.len());
        gk.gen[0] = set(&["t"]);
        gk.kill[1] = set(&["t"]);
        let flow = forward(&cfg, &gk, Join::May);
        assert!(flow.ins[1].contains("t"));
        assert!(!flow.ins[2].contains("t"));
    }

    #[test]
    fn loop_back_edge_reaches_a_fixpoint_with_facts_from_below() {
        // Fact born inside the loop body is live at the header on the
        // second iteration (back edge), so a may-analysis sees it there.
        let cfg = cfg_of("for i in 0..3 { let t = src(); use_it(t); }\nafter();");
        let n = cfg.stmts.len();
        let mut gk = GenKill::new(n);
        // stmt 1 is `let t = src();`
        gk.gen[1] = set(&["t"]);
        let flow = forward(&cfg, &gk, Join::May);
        assert!(flow.ins[0].contains("t"), "{flow:?}");
    }
}

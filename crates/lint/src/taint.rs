//! D102 — probability-range taint. A function that *produces* a
//! probability (by name or doc contract) and does range-risky arithmetic
//! without an in-body sanitizer is flagged when the clustering engine
//! transitively consumes it: Definitions 2–3 of the paper require those
//! values to stay in [0,1] before threshold comparisons.

use crate::callgraph::CallGraph;
use crate::catalog::{Finding, LintId};

/// Name/doc markers that promise a probability-valued result.
fn is_probability_fn(name: &str, doc: &str) -> bool {
    let n = name.to_ascii_lowercase();
    if ["resemblance", "jaccard", "similarity", "prob"]
        .iter()
        .any(|m| n.contains(m))
    {
        return true;
    }
    let d = doc.to_ascii_lowercase();
    d.contains("probability") || d.contains("[0,1]") || d.contains("[0, 1]")
}

/// Run the D102 pass over a built call graph.
pub fn d102_probability_taint(graph: &CallGraph) -> Vec<Finding> {
    let ws = &graph.ws;
    // Sinks: every non-test function in the clustering crate. Reachability
    // *from* the sinks marks everything clustering may consume.
    let sinks: Vec<usize> = (0..ws.fns.len())
        .filter(|&i| ws.fns[i].crate_dir == "cluster" && !ws.fns[i].is_test)
        .collect();
    if sinks.is_empty() {
        return Vec::new();
    }
    let parent = graph.reach(&sinks, |_| true);
    let mut out = Vec::new();
    for (i, f) in ws.fns.iter().enumerate() {
        if parent[i].is_none() || f.is_test {
            continue;
        }
        if !is_probability_fn(&f.name, &f.doc) {
            continue;
        }
        if !f.facts.risky_arith || f.facts.sanitizes {
            continue;
        }
        let chain = graph.chain(&parent, i);
        out.push(Finding {
            id: LintId::D102,
            file: f.file.clone(),
            line: f.line,
            message: format!(
                "probability-valued fn `{}` has unsanitized arithmetic; consumed via {chain}",
                f.name
            ),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{FileCtx, Role};
    use crate::symbols::Workspace;
    use std::collections::{BTreeMap, BTreeSet};

    fn graph(files: &[(&str, &str, &str)]) -> CallGraph {
        let ctxs: Vec<FileCtx> = files
            .iter()
            .map(|(p, k, s)| FileCtx::new(p, k, Role::Library, s))
            .collect();
        let refs: Vec<&FileCtx> = ctxs.iter().collect();
        let dirs: BTreeSet<String> = files.iter().map(|(_, k, _)| k.to_string()).collect();
        let mut closures = BTreeMap::new();
        for d in &dirs {
            closures.insert(d.clone(), dirs.clone());
        }
        CallGraph::build(Workspace::build(&refs, BTreeMap::new(), closures))
    }

    #[test]
    fn unsanitized_probability_flowing_to_cluster_is_flagged() {
        let g = graph(&[
            (
                "crates/cluster/src/engine.rs",
                "cluster",
                "pub fn decide(a: &S, b: &S) -> bool { resemblance(a, b) > 0.5 }",
            ),
            (
                "crates/relgraph/src/neighbors.rs",
                "relgraph",
                "pub fn resemblance(a: &S, b: &S) -> f64 { a.x / b.x }",
            ),
        ]);
        let findings = d102_probability_taint(&g);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].file, "crates/relgraph/src/neighbors.rs");
        assert!(
            findings[0].message.contains("decide") || findings[0].message.contains("resemblance")
        );
    }

    #[test]
    fn sanitizer_or_no_sink_clears_the_finding() {
        // Same producer with a debug_assert: clean.
        let g = graph(&[
            (
                "crates/cluster/src/engine.rs",
                "cluster",
                "pub fn decide(a: &S, b: &S) -> bool { resemblance(a, b) > 0.5 }",
            ),
            (
                "crates/relgraph/src/neighbors.rs",
                "relgraph",
                "pub fn resemblance(a: &S, b: &S) -> f64 { let r = a.x / b.x; debug_assert!(r >= 0.0); r }",
            ),
        ]);
        assert!(d102_probability_taint(&g).is_empty());
        // Unsanitized, but nothing in cluster calls it: clean.
        let g2 = graph(&[
            (
                "crates/cluster/src/engine.rs",
                "cluster",
                "pub fn decide() -> bool { true }",
            ),
            (
                "crates/relgraph/src/neighbors.rs",
                "relgraph",
                "pub fn resemblance(a: &S, b: &S) -> f64 { a.x / b.x }",
            ),
        ]);
        assert!(d102_probability_taint(&g2).is_empty());
    }

    #[test]
    fn doc_contract_marks_a_probability_fn() {
        let g = graph(&[
            (
                "crates/cluster/src/engine.rs",
                "cluster",
                "pub fn decide(w: f64) -> bool { edge_weight(w) > 0.5 }",
            ),
            (
                "crates/relgraph/src/walk.rs",
                "relgraph",
                "/// Walk probability for one hop.\npub fn edge_weight(w: f64) -> f64 { w * w }",
            ),
        ]);
        let findings = d102_probability_taint(&g);
        assert_eq!(findings.len(), 1, "{findings:?}");
    }
}

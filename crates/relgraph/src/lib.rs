//! # relgraph — probabilistic linkage machinery over a relational store
//!
//! Implements §2 of the DISTINCT paper on top of [`relstore`]:
//!
//! * [`LinkGraph`] — a compact CSR view of every foreign-key edge for fast
//!   repeated traversal;
//! * [`propagate()`] — uniform probability propagation along a join path,
//!   producing both `Prob_P(r → t)` (connection strength of each neighbor
//!   tuple) and `Prob_P(t → r)` in a single pass (paper §2.2, Fig. 3);
//! * [`WeightedSet`] — weighted neighbor-tuple sets with the
//!   connection-strength-weighted Jaccard of Definition 2;
//! * [`walk_probability`] — random-walk probability between two references
//!   along a path and its reverse (paper §2.4);
//! * [`Resemblance`] — the unified kernel selector ([`Resemblance::Exact`]
//!   vs lossless [`Resemblance::Pruned`]) behind every resemblance
//!   evaluation, backed by per-set [`Sketch`]es and the columnar
//!   [`SetArena`].

#![warn(missing_docs)]

pub mod arena;
pub mod graph;
pub mod neighbors;
pub mod propagate;
pub mod sketch;
pub mod walk;

pub use arena::{ArenaPool, IntersectionMatrix, SetArena};
pub use graph::{LinkGraph, NodeId};
pub use neighbors::{Resemblance, WeightedSet};
pub use propagate::{propagate, propagate_blocked, propagate_blocked_guarded, Propagation};
pub use sketch::{ConfigError, Sketch, SketchConfig};
pub use walk::{directed_walk, walk_probability};

//@ path: crates/core/src/engine.rs
//@ crate: core
//! Fixture: D106 guard liveness. A guard held at any statement that can
//! block on the exec pool or a channel is a determinism and deadlock
//! hazard. `held_direct` carries a let-bound guard into a pool submit,
//! `held_transitive` reaches the pool through a callee, and
//! `inline_temporary` creates a guard *inside* a send expression (the
//! temporary lives for the whole statement). `dropped_first`,
//! `scoped_out`, and `suppressed` show the sanctioned shapes: explicit
//! drop, a brace scope that ends before the submit, and a reviewed
//! suppression.

struct Engine;

impl Engine {
    fn held_direct(&self) {
        let g = self.names.lock();
        self.pool.par_map_guarded(g.len()); //~ D106
        finish(g);
    }

    fn held_transitive(&self) {
        let g = self.names.lock();
        self.fan_out(g.len()); //~ D106
    }

    fn fan_out(&self, n: usize) {
        self.pool.par_chunks(n);
    }

    fn inline_temporary(&self) {
        self.tx.send(self.names.lock().len()); //~ D106
    }

    fn dropped_first(&self) {
        let g = self.names.lock();
        let n = g.len();
        drop(g);
        self.pool.par_map_guarded(n);
    }

    fn scoped_out(&self) {
        let n = {
            let g = self.names.lock();
            g.len()
        };
        self.pool.par_chunks(n);
    }

    fn suppressed(&self) {
        let g = self.names.lock();
        // distinct-lint: allow(D106, reason="fixture: reviewed single-task submit")
        self.pool.par_map_guarded(g.len());
    }
}

//! Automatic training-set construction (paper §3).
//!
//! "The majority of entities have distinct names in most applications": a
//! person name composed of a rare first name *and* a rare last name is
//! very likely unique. References to one such name give positive example
//! pairs (equivalent references); references to two different such names
//! give negative pairs (distinct references). No manual labels required.

use crate::config::TrainingConfig;
use crate::features::{resemblance_features, walk_features, Profile};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use relstore::{Catalog, FxHashMap, RelId, TupleId, TupleRef, Value};
use std::sync::Arc;

/// One training pair with its label (+1 equivalent, −1 distinct).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainingPair {
    /// First reference.
    pub a: TupleRef,
    /// Second reference.
    pub b: TupleRef,
    /// +1.0 for equivalent, −1.0 for distinct.
    pub label: f64,
}

/// The constructed training set plus statistics.
#[derive(Debug, Clone)]
pub struct TrainingSet {
    /// The example pairs, positives first.
    pub pairs: Vec<TrainingPair>,
    /// How many names passed the rare-name filter.
    pub unique_names: usize,
    /// Positive pair count.
    pub positives: usize,
    /// Negative pair count.
    pub negatives: usize,
    /// The unique names themselves with their references — reused by
    /// threshold calibration ([`crate::calibrate`]), which pools several
    /// unique names into pseudo-ambiguous groups.
    pub names: Vec<(String, Vec<TupleRef>)>,
}

/// Per-pair feature vectors for SVM training, labelled.
#[derive(Debug, Clone, PartialEq)]
pub struct PairFeatures {
    /// Per-path set resemblances of the pair.
    pub resem: Vec<f64>,
    /// Per-path symmetrized walk probabilities of the pair.
    pub walk: Vec<f64>,
    /// +1.0 for equivalent, −1.0 for distinct (copied from the pair).
    pub label: f64,
}

/// Compute both feature vectors for every training pair, in parallel.
///
/// Every pair's features depend only on its two (immutable) profiles, so
/// the output — committed in pair order by the executor — is identical
/// for any thread count. A pair whose profiles are missing from the map
/// comes back `None`, as does every pair left unprocessed after `stop`
/// fires; callers decide whether that aborts the run.
pub fn featurize_pairs(
    pairs: &[TrainingPair],
    profiles: &FxHashMap<TupleRef, Arc<Profile>>,
    executor: &exec::Executor,
    stop: &(dyn Fn() -> bool + Sync),
) -> (Vec<Option<PairFeatures>>, exec::ParStats) {
    executor.par_map_guarded(
        pairs,
        |_, pair| {
            let pa = profiles.get(&pair.a)?;
            let pb = profiles.get(&pair.b)?;
            Some(PairFeatures {
                resem: resemblance_features(pa, pb),
                walk: walk_features(pa, pb),
                label: pair.label,
            })
        },
        stop,
    )
}

/// Errors from training-set construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrainingError {
    /// The reference relation/attribute could not be resolved.
    BadReferenceSpec(String),
    /// Too few unique names to build any pairs.
    TooFewUniqueNames(usize),
}

impl std::fmt::Display for TrainingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainingError::BadReferenceSpec(s) => write!(f, "bad reference spec: {s}"),
            TrainingError::TooFewUniqueNames(n) => {
                write!(f, "only {n} unique names found; need at least 2")
            }
        }
    }
}

impl std::error::Error for TrainingError {}

/// Split a full name into (first token, last token); `None` for
/// single-token names.
fn split_name(name: &str) -> Option<(&str, &str)> {
    let mut parts = name.split_whitespace();
    let first = parts.next()?;
    let last = parts.last()?;
    if first == last && name.split_whitespace().count() == 1 {
        return None;
    }
    Some((first, last))
}

/// Build the training set from a reference relation.
///
/// `ref_relation.ref_attr` must be a foreign key to the relation holding
/// named objects (e.g. `Publish.author -> Authors`); names are that target
/// relation's key values.
// distinct-lint: allow(D005, reason="bounded by TrainingConfig pair caps; train_with checks RunControl at the stage boundary")
pub fn build_training_set(
    catalog: &Catalog,
    ref_relation: &str,
    ref_attr: &str,
    cfg: &TrainingConfig,
) -> Result<TrainingSet, TrainingError> {
    let publish: RelId = catalog
        .relation_id(ref_relation)
        .ok_or_else(|| TrainingError::BadReferenceSpec(format!("no relation `{ref_relation}`")))?;
    let attr = catalog
        .relation(publish)
        .schema()
        .attr_index(ref_attr)
        .ok_or_else(|| TrainingError::BadReferenceSpec(format!("no attribute `{ref_attr}`")))?;
    let fk = catalog
        .fk_edges()
        .iter()
        .find(|e| e.from == publish && e.attr == attr)
        .ok_or_else(|| {
            TrainingError::BadReferenceSpec(format!("`{ref_attr}` is not a foreign key"))
        })?;
    let authors = fk.to;

    // Token frequencies over the *named-object* relation (one count per
    // distinct name, as in counting people per first name).
    let mut first_freq: FxHashMap<String, usize> = FxHashMap::default();
    let mut last_freq: FxHashMap<String, usize> = FxHashMap::default();
    let key_attr = catalog
        .relation(authors)
        .schema()
        .key_index()
        .ok_or_else(|| TrainingError::BadReferenceSpec("name relation has no key".to_string()))?;
    for (_, t) in catalog.relation(authors).iter() {
        if let Some(name) = t.get(key_attr).as_str() {
            if let Some((f, l)) = split_name(name) {
                *first_freq.entry(f.to_string()).or_insert(0) += 1;
                *last_freq.entry(l.to_string()).or_insert(0) += 1;
            }
        }
    }

    // Unique-name candidates with at least 2 references.
    let mut unique: Vec<(String, Vec<TupleRef>)> = Vec::new();
    for (_, t) in catalog.relation(authors).iter() {
        let Some(name) = t.get(key_attr).as_str() else {
            continue;
        };
        let Some((f, l)) = split_name(name) else {
            continue;
        };
        if first_freq[f] > cfg.max_first_name_freq || last_freq[l] > cfg.max_last_name_freq {
            continue;
        }
        let refs: Vec<TupleRef> = catalog
            .relation(publish)
            .lookup(attr, &Value::str(name))
            .into_iter()
            .map(|tid: TupleId| TupleRef::new(publish, tid))
            .collect();
        if refs.len() >= 2 {
            unique.push((name.to_string(), refs));
        }
    }
    if unique.len() < 2 {
        return Err(TrainingError::TooFewUniqueNames(unique.len()));
    }

    let mut rng = StdRng::seed_from_u64(cfg.seed);
    unique.shuffle(&mut rng);

    // Positives: pairs within one unique name, round-robin over names so
    // no single prolific name dominates.
    let mut pairs: Vec<TrainingPair> = Vec::new();
    let mut per_name_pairs: Vec<Vec<(TupleRef, TupleRef)>> = unique
        .iter()
        .map(|(_, refs)| {
            let mut v = Vec::new();
            for i in 0..refs.len() {
                for j in (i + 1)..refs.len() {
                    v.push((refs[i], refs[j]));
                }
            }
            v.shuffle(&mut rng);
            v
        })
        .collect();
    let mut round = 0usize;
    while pairs.len() < cfg.positives {
        let mut any = false;
        for name_pairs in per_name_pairs.iter_mut() {
            if let Some((a, b)) = name_pairs.pop() {
                pairs.push(TrainingPair { a, b, label: 1.0 });
                any = true;
                if pairs.len() >= cfg.positives {
                    break;
                }
            }
        }
        round += 1;
        if !any || round > 10_000 {
            break; // exhausted all within-name pairs
        }
    }
    let positives = pairs.len();

    // Negatives: one reference each from two different unique names.
    let mut negatives = 0usize;
    let mut attempts = 0usize;
    while negatives < cfg.negatives && attempts < cfg.negatives * 20 {
        attempts += 1;
        let i = rng.gen_range(0..unique.len());
        let j = rng.gen_range(0..unique.len());
        if i == j {
            continue;
        }
        let a = unique[i].1[rng.gen_range(0..unique[i].1.len())];
        let b = unique[j].1[rng.gen_range(0..unique[j].1.len())];
        pairs.push(TrainingPair { a, b, label: -1.0 });
        negatives += 1;
    }

    Ok(TrainingSet {
        pairs,
        unique_names: unique.len(),
        positives,
        negatives,
        names: unique,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{AmbiguousSpec, World, WorldConfig};

    fn dataset() -> datagen::DblpDataset {
        let mut config = WorldConfig::tiny(13);
        config.ambiguous = vec![AmbiguousSpec::new("Wei Wang", vec![10, 6])];
        datagen::to_catalog(&World::generate(config)).unwrap()
    }

    fn training_cfg() -> TrainingConfig {
        TrainingConfig {
            positives: 60,
            negatives: 60,
            ..Default::default()
        }
    }

    #[test]
    fn split_name_behaviour() {
        assert_eq!(split_name("Wei Wang"), Some(("Wei", "Wang")));
        assert_eq!(split_name("Jose Luis Garcia"), Some(("Jose", "Garcia")));
        assert_eq!(split_name("Prince"), None);
        assert_eq!(split_name(""), None);
        assert_eq!(split_name("  padded   name  "), Some(("padded", "name")));
    }

    #[test]
    fn builds_requested_pair_counts() {
        let d = dataset();
        let ts = build_training_set(&d.catalog, "Publish", "author", &training_cfg()).unwrap();
        assert_eq!(ts.positives, 60, "unique names: {}", ts.unique_names);
        assert_eq!(ts.negatives, 60);
        assert_eq!(ts.pairs.len(), 120);
        assert!(ts.unique_names > 10);
    }

    #[test]
    fn positive_pairs_share_a_name_negatives_do_not() {
        let d = dataset();
        let ts = build_training_set(&d.catalog, "Publish", "author", &training_cfg()).unwrap();
        for p in &ts.pairs {
            let name_a = d.catalog.value(p.a, 0).as_str().unwrap().to_string();
            let name_b = d.catalog.value(p.b, 0).as_str().unwrap().to_string();
            if p.label > 0.0 {
                assert_eq!(name_a, name_b);
                assert_ne!(p.a, p.b, "a positive pair must be two distinct references");
            } else {
                assert_ne!(name_a, name_b);
            }
        }
    }

    #[test]
    fn ambiguous_name_is_not_treated_as_unique() {
        // "Wei Wang" has namesakes sharing "Wei" and "Wang", so the rare-
        // name filter must reject it — its pairs must never appear.
        let d = dataset();
        let ts = build_training_set(&d.catalog, "Publish", "author", &training_cfg()).unwrap();
        for p in &ts.pairs {
            let name = d.catalog.value(p.a, 0).as_str().unwrap();
            assert_ne!(name, "Wei Wang");
            let name = d.catalog.value(p.b, 0).as_str().unwrap();
            assert_ne!(name, "Wei Wang");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let d = dataset();
        let a = build_training_set(&d.catalog, "Publish", "author", &training_cfg()).unwrap();
        let b = build_training_set(&d.catalog, "Publish", "author", &training_cfg()).unwrap();
        assert_eq!(a.pairs, b.pairs);
        let c = build_training_set(
            &d.catalog,
            "Publish",
            "author",
            &TrainingConfig {
                seed: 99,
                ..training_cfg()
            },
        )
        .unwrap();
        assert_ne!(a.pairs, c.pairs);
    }

    #[test]
    fn bad_specs_error() {
        let d = dataset();
        assert!(matches!(
            build_training_set(&d.catalog, "Nope", "author", &training_cfg()),
            Err(TrainingError::BadReferenceSpec(_))
        ));
        assert!(matches!(
            build_training_set(&d.catalog, "Publish", "nope", &training_cfg()),
            Err(TrainingError::BadReferenceSpec(_))
        ));
    }

    #[test]
    fn positives_capped_by_available_pairs() {
        let d = dataset();
        let cfg = TrainingConfig {
            positives: 1_000_000,
            negatives: 10,
            ..Default::default()
        };
        let ts = build_training_set(&d.catalog, "Publish", "author", &cfg).unwrap();
        assert!(ts.positives < 1_000_000);
        assert!(ts.positives > 0);
        assert_eq!(ts.negatives, 10);
    }

    #[test]
    fn round_robin_spreads_positives_across_names() {
        let d = dataset();
        let ts = build_training_set(&d.catalog, "Publish", "author", &training_cfg()).unwrap();
        let mut names = std::collections::HashSet::new();
        for p in ts.pairs.iter().filter(|p| p.label > 0.0) {
            names.insert(d.catalog.value(p.a, 0).as_str().unwrap().to_string());
        }
        assert!(
            names.len() > 10,
            "positives concentrated on {} names",
            names.len()
        );
    }
}

//! Integration: cross-crate consistency of the substrates — the CSV
//! loader, attribute expansion, the CSR link graph, probability
//! propagation, and the clustering engine must agree with each other on
//! generated data.

use datagen::{to_catalog, AmbiguousSpec, World, WorldConfig};
use relgraph::{propagate, LinkGraph};
use relstore::{
    csv, expand_values, path_tuple_set, Catalog, JoinPath, JoinStep, PathEnumOptions, TupleRef,
};

fn dataset() -> datagen::DblpDataset {
    let mut config = WorldConfig::tiny(9);
    config.ambiguous = vec![AmbiguousSpec::new("Wei Wang", vec![6, 4])];
    to_catalog(&World::generate(config)).expect("valid world")
}

#[test]
fn csv_round_trip_preserves_every_relation() {
    let d = dataset();
    let mut rebuilt = Catalog::new();
    for (_, rel) in d.catalog.relations() {
        rebuilt.add_relation(rel.schema().clone()).unwrap();
    }
    for (rid, rel) in d.catalog.relations() {
        let text = csv::to_csv(rel);
        let loaded = csv::load_csv(rebuilt.relation_mut(rid), &text).unwrap();
        assert_eq!(loaded, rel.len(), "{}", rel.name());
    }
    rebuilt.finalize(true).unwrap();
    // Every tuple identical.
    for (rid, rel) in d.catalog.relations() {
        let other = rebuilt.relation(rid);
        assert_eq!(rel.len(), other.len());
        for (tid, t) in rel.iter() {
            assert_eq!(t, other.tuple(tid));
        }
    }
}

#[test]
fn propagation_forward_mass_is_bounded_on_every_path() {
    let d = dataset();
    let ex = expand_values(&d.catalog).unwrap();
    let graph = LinkGraph::build(&ex.catalog);
    let publish = ex.catalog.relation_id("Publish").unwrap();
    let opts = PathEnumOptions {
        max_len: 4,
        ..Default::default()
    };
    let paths = relstore::enumerate_paths(&ex.catalog, publish, &opts);
    assert!(!paths.is_empty());
    let truth = &d.truths[0];
    for path in paths.iter().take(12) {
        for &r in truth.refs.iter().take(5) {
            let prop = propagate(&graph, &ex.catalog, path, r);
            let total = prop.total_forward();
            assert!(
                total <= 1.0 + 1e-9,
                "path {} leaked mass: {total}",
                path.describe(&ex.catalog)
            );
            for (&n, &p) in &prop.forward {
                assert!(p > 0.0 && p <= 1.0 + 1e-9);
                let b = prop.backward[&n];
                assert!(b > 0.0 && b <= 1.0 + 1e-9);
            }
        }
    }
}

#[test]
fn propagation_support_matches_raw_traversal() {
    // The tuples with nonzero probability must be exactly the tuples
    // reachable by the tuple-level traversal.
    let d = dataset();
    let ex = expand_values(&d.catalog).unwrap();
    let graph = LinkGraph::build(&ex.catalog);
    let publish = ex.catalog.relation_id("Publish").unwrap();
    let opts = PathEnumOptions {
        max_len: 3,
        ..Default::default()
    };
    let paths = relstore::enumerate_paths(&ex.catalog, publish, &opts);
    let r = d.truths[0].refs[0];
    for path in paths.iter().take(10) {
        let prop = propagate(&graph, &ex.catalog, path, r);
        let mut via_prop: Vec<TupleRef> = prop.forward.keys().map(|&n| graph.tuple(n)).collect();
        via_prop.sort_unstable();
        let via_traverse = path_tuple_set(&ex.catalog, path, r);
        assert_eq!(
            via_prop,
            via_traverse,
            "path {}",
            path.describe(&ex.catalog)
        );
    }
}

#[test]
fn link_graph_agrees_with_catalog_adjacency() {
    let d = dataset();
    let ex = expand_values(&d.catalog).unwrap();
    let graph = LinkGraph::build(&ex.catalog);
    for edge in ex.catalog.fk_edges().iter().take(6) {
        let from_rel = ex.catalog.relation(edge.from);
        for (tid, _) in from_rel.iter().take(50) {
            let t = TupleRef::new(edge.from, tid);
            let expected: Vec<_> = ex
                .catalog
                .follow_forward(edge.id, t)
                .into_iter()
                .map(|x| graph.node(x))
                .collect();
            let got = graph.step_neighbors(JoinStep::forward(edge.id), graph.node(t), edge.from);
            assert_eq!(got, expected.as_slice());
        }
    }
}

#[test]
fn expansion_only_adds_relations_and_preserves_counts() {
    let d = dataset();
    let ex = expand_values(&d.catalog).unwrap();
    assert!(ex.catalog.relation_count() > d.catalog.relation_count());
    for (rid, rel) in d.catalog.relations() {
        assert_eq!(rel.len(), ex.catalog.relation(rid).len(), "{}", rel.name());
        assert_eq!(rel.name(), ex.catalog.relation(rid).name());
    }
    // Expanded FK edges form a superset (by label) of the originals.
    let labels: std::collections::HashSet<String> = ex
        .catalog
        .fk_edges()
        .iter()
        .map(|e| e.label.clone())
        .collect();
    for e in d.catalog.fk_edges() {
        assert!(labels.contains(&e.label), "missing {}", e.label);
    }
}

#[test]
fn empty_join_path_is_identity_everywhere() {
    let d = dataset();
    let ex = expand_values(&d.catalog).unwrap();
    let graph = LinkGraph::build(&ex.catalog);
    let publish = ex.catalog.relation_id("Publish").unwrap();
    let path = JoinPath::empty(publish);
    let r = d.truths[0].refs[0];
    let prop = propagate(&graph, &ex.catalog, &path, r);
    assert_eq!(prop.neighbor_count(), 1);
    assert_eq!(path_tuple_set(&ex.catalog, &path, r), vec![r]);
}

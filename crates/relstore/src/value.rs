//! Typed attribute values.
//!
//! The store supports four scalar types plus `Null`. Floats are wrapped so
//! that values are totally ordered, hashable, and usable as index keys
//! (bit-pattern equality after normalizing `-0.0` and NaN).

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// Declared type of an attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttrType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit float (total order via normalized bit pattern).
    Float,
    /// UTF-8 string (reference counted; cloning a value is cheap).
    Str,
    /// Boolean.
    Bool,
}

impl fmt::Display for AttrType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrType::Int => write!(f, "int"),
            AttrType::Float => write!(f, "float"),
            AttrType::Str => write!(f, "str"),
            AttrType::Bool => write!(f, "bool"),
        }
    }
}

/// A single attribute value.
///
/// Strings are stored as `Arc<str>` so that tuples and indexes can share one
/// allocation per distinct string; cloning a [`Value`] never allocates.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// Absent value.
    Null,
    /// Integer value.
    Int(i64),
    /// Float value (normalized for equality: NaN collapses, -0.0 == +0.0).
    Float(f64),
    /// String value.
    Str(Arc<str>),
    /// Boolean value.
    Bool(bool),
}

impl Value {
    /// Build a string value.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// The runtime type of this value, or `None` for `Null`.
    pub fn attr_type(&self) -> Option<AttrType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(AttrType::Int),
            Value::Float(_) => Some(AttrType::Float),
            Value::Str(_) => Some(AttrType::Str),
            Value::Bool(_) => Some(AttrType::Bool),
        }
    }

    /// True if the value is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// True if the value matches the declared type (Null matches anything).
    pub fn matches(&self, ty: AttrType) -> bool {
        match self.attr_type() {
            None => true,
            Some(t) => t == ty,
        }
    }

    /// The integer payload, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The float payload, if this is a `Float`.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// The boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Normalized bit pattern for float comparison: all NaNs collapse to one
    /// pattern and `-0.0` equals `+0.0`.
    fn float_bits(x: f64) -> u64 {
        if x.is_nan() {
            f64::NAN.to_bits() | 1 << 63 // one canonical NaN
        } else if x == 0.0 {
            0 // collapse -0.0 and +0.0
        } else {
            x.to_bits()
        }
    }

    /// Order rank of the variant, used for cross-type total ordering.
    fn rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 3,
            Value::Str(_) => 4,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => Self::float_bits(*a) == Self::float_bits(*b),
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        state.write_u8(self.rank());
        match self {
            Value::Null => {}
            Value::Int(i) => state.write_u64(*i as u64),
            Value::Float(x) => state.write_u64(Self::float_bits(*x)),
            Value::Str(s) => s.hash(state),
            Value::Bool(b) => state.write_u8(*b as u8),
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => {
                // Total order consistent with Eq: compare normalized bits of
                // sign-flipped representation.
                fn key(x: f64) -> i64 {
                    let bits = Value::float_bits(x) as i64;
                    bits ^ (((bits >> 63) as u64) >> 1) as i64
                }
                key(*a).cmp(&key(*b))
            }
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            _ => self.rank().cmp(&other.rank()),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.as_str()))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn h(v: &Value) -> u64 {
        let mut s = DefaultHasher::new();
        v.hash(&mut s);
        s.finish()
    }

    #[test]
    fn type_checks() {
        assert_eq!(Value::Int(3).attr_type(), Some(AttrType::Int));
        assert_eq!(Value::str("a").attr_type(), Some(AttrType::Str));
        assert_eq!(Value::Null.attr_type(), None);
        assert!(Value::Null.matches(AttrType::Int));
        assert!(Value::Int(1).matches(AttrType::Int));
        assert!(!Value::Int(1).matches(AttrType::Str));
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::str("x").as_str(), Some("x"));
        assert_eq!(Value::Float(1.5).as_float(), Some(1.5));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Int(7).as_str(), None);
        assert!(Value::Null.is_null());
    }

    #[test]
    fn float_equality_is_normalized() {
        assert_eq!(Value::Float(0.0), Value::Float(-0.0));
        assert_eq!(Value::Float(f64::NAN), Value::Float(f64::NAN));
        assert_eq!(h(&Value::Float(0.0)), h(&Value::Float(-0.0)));
        assert_eq!(h(&Value::Float(f64::NAN)), h(&Value::Float(f64::NAN)));
        assert_ne!(Value::Float(1.0), Value::Float(2.0));
    }

    #[test]
    fn display_round_trips_visually() {
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::str("wei wang").to_string(), "wei wang");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Bool(false).to_string(), "false");
    }

    #[test]
    fn cross_type_ordering_is_total_and_stable() {
        let mut vals = [
            Value::str("b"),
            Value::Int(2),
            Value::Null,
            Value::Bool(true),
            Value::Float(0.5),
            Value::Int(1),
            Value::str("a"),
        ];
        vals.sort();
        assert_eq!(vals[0], Value::Null);
        // Within-type orderings hold.
        let ints: Vec<_> = vals.iter().filter_map(Value::as_int).collect();
        assert_eq!(ints, vec![1, 2]);
        let strs: Vec<_> = vals.iter().filter_map(Value::as_str).collect();
        assert_eq!(strs, vec!["a", "b"]);
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from("s"), Value::str("s"));
        assert_eq!(Value::from(String::from("s")), Value::str("s"));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from(2.5f64), Value::Float(2.5));
    }

    proptest! {
        #[test]
        fn eq_implies_same_hash(a in any::<i64>(), b in any::<i64>()) {
            let va = Value::Int(a);
            let vb = Value::Int(b);
            if va == vb {
                prop_assert_eq!(h(&va), h(&vb));
            }
        }

        #[test]
        fn float_ord_is_antisymmetric(a in any::<f64>(), b in any::<f64>()) {
            let va = Value::Float(a);
            let vb = Value::Float(b);
            let ab = va.cmp(&vb);
            let ba = vb.cmp(&va);
            prop_assert_eq!(ab, ba.reverse());
        }

        #[test]
        fn float_eq_consistent_with_ord(a in any::<f64>(), b in any::<f64>()) {
            let va = Value::Float(a);
            let vb = Value::Float(b);
            prop_assert_eq!(va == vb, va.cmp(&vb) == std::cmp::Ordering::Equal);
        }

        #[test]
        fn string_values_round_trip(s in ".*") {
            let v = Value::str(&s);
            prop_assert_eq!(v.as_str(), Some(s.as_str()));
        }
    }
}

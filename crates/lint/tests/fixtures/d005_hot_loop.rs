//@ crate: svm
//@ path: crates/svm/src/smo.rs
//@ role: library

/// Optimizes without ever consulting the work budget: cancellation and
/// deadlines cannot land while this runs.
pub fn iterate(xs: &[f64]) -> f64 { //~ D005
    let mut acc = 0.0;
    for x in xs {
        acc += x;
    }
    acc
}

/// A guard parameter marks the budget as threaded through.
pub fn iterate_guarded(xs: &[f64], guard: &mut dyn FnMut(u64) -> bool) -> f64 {
    let mut acc = 0.0;
    for x in xs {
        if !guard(1) {
            break;
        }
        acc += x;
    }
    acc
}

/// Charging a RunControl inside the loop also satisfies the pass.
pub fn iterate_charging(xs: &[f64], ctl: &RunControl) -> Option<f64> {
    let mut acc = 0.0;
    for x in xs {
        ctl.charge(1)?;
        acc += x;
    }
    Some(acc)
}

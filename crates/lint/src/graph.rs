//! Crate/module graph of the workspace, built by parsing each member's
//! `Cargo.toml` with the same minimal hand-rolled TOML reading used for
//! the baseline. Drives the `graph` subcommand, the layering assertions
//! in the self-check suite, and the call-graph resolver's
//! dependency-closure constraint.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// A workspace-loading failure. These are fatal: a half-loaded graph
/// would silently weaken every check built on it (a crate missing from
/// the graph is a crate whose panics the semantic passes cannot see).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A filesystem read failed.
    Io {
        /// What was being read.
        context: String,
        /// The underlying error text.
        reason: String,
    },
    /// A directory under `crates/` has no `Cargo.toml`.
    MissingManifest {
        /// The offending directory name.
        dir: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Io { context, reason } => write!(f, "{context}: {reason}"),
            GraphError::MissingManifest { dir } => write!(
                f,
                "crates/{dir}/ has no Cargo.toml — every directory under crates/ \
                 must be a workspace member (remove strays or add a manifest)"
            ),
        }
    }
}

impl std::error::Error for GraphError {}

/// One workspace member crate.
#[derive(Debug, Clone)]
pub struct CrateNode {
    /// Directory name under `crates/` (the lint's crate key, e.g. `core`).
    pub dir: String,
    /// `[package] name` from the manifest (e.g. `distinct`).
    pub package: String,
    /// Workspace-internal dependencies (normal + dev), as directory
    /// names, sorted.
    pub deps: Vec<String>,
    /// Workspace-internal `[dependencies]` only (no dev-dependencies),
    /// sorted. The call-graph resolver uses these: a dev-only dependency
    /// cannot be reached from shipping library code.
    pub normal_deps: Vec<String>,
    /// `.rs` modules under `src/`, workspace-relative, sorted.
    pub modules: Vec<String>,
}

/// The whole workspace graph, keyed by directory name.
#[derive(Debug, Clone, Default)]
pub struct CrateGraph {
    /// Members, sorted by directory name.
    pub nodes: BTreeMap<String, CrateNode>,
}

impl CrateGraph {
    /// Build the graph by scanning `crates/*/Cargo.toml` under `root`.
    /// Any directory under `crates/` without a manifest is a fatal
    /// [`GraphError::MissingManifest`].
    pub fn load(root: &Path) -> Result<CrateGraph, GraphError> {
        // Dependency keys in member manifests are workspace aliases
        // (`cluster.workspace = true`), which match the directory names,
        // so the alias set is just the directory listing.
        let crates_dir = root.join("crates");
        let mut dirs: Vec<String> = Vec::new();
        let entries = fs::read_dir(&crates_dir).map_err(|e| GraphError::Io {
            context: "read_dir crates/".into(),
            reason: e.to_string(),
        })?;
        for entry in entries {
            let entry = entry.map_err(|e| GraphError::Io {
                context: "read_dir crates/ entry".into(),
                reason: e.to_string(),
            })?;
            if !entry.path().is_dir() {
                continue;
            }
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.starts_with('.') {
                continue;
            }
            if !entry.path().join("Cargo.toml").exists() {
                return Err(GraphError::MissingManifest { dir: name });
            }
            dirs.push(name);
        }
        dirs.sort();

        let mut graph = CrateGraph::default();
        for dir in &dirs {
            let manifest_path = crates_dir.join(dir).join("Cargo.toml");
            let text = fs::read_to_string(&manifest_path).map_err(|e| GraphError::Io {
                context: format!("read {}", manifest_path.display()),
                reason: e.to_string(),
            })?;
            let mut package = String::new();
            let mut deps = Vec::new();
            let mut normal_deps = Vec::new();
            let mut section = String::new();
            for raw in text.lines() {
                let line = raw.trim();
                if line.starts_with('[') && line.ends_with(']') {
                    section = line.trim_matches(['[', ']']).to_string();
                    continue;
                }
                let Some((key, val)) = line.split_once('=') else {
                    continue;
                };
                let (key, val) = (key.trim(), val.trim());
                if section == "package" && key == "name" {
                    package = val.trim_matches('"').to_string();
                }
                if section == "dependencies" || section == "dev-dependencies" {
                    // `cluster.workspace = true` or `cluster = { workspace = true }`
                    let dep = key.split('.').next().unwrap_or(key).to_string();
                    if dirs.contains(&dep) {
                        if !deps.contains(&dep) {
                            deps.push(dep.clone());
                        }
                        if section == "dependencies" && !normal_deps.contains(&dep) {
                            normal_deps.push(dep);
                        }
                    }
                }
            }
            deps.sort();
            normal_deps.sort();
            let mut modules = Vec::new();
            collect_modules(root, &crates_dir.join(dir).join("src"), &mut modules);
            modules.sort();
            graph.nodes.insert(
                dir.clone(),
                CrateNode {
                    dir: dir.clone(),
                    package,
                    deps,
                    normal_deps,
                    modules,
                },
            );
        }
        Ok(graph)
    }

    /// The transitive closure of `dir`'s *normal* dependencies, including
    /// `dir` itself. Library code in `dir` can only name items from these
    /// crates, which bounds what a call site may resolve to.
    pub fn normal_closure(&self, dir: &str) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        let mut stack = vec![dir.to_string()];
        while let Some(d) = stack.pop() {
            if !out.insert(d.clone()) {
                continue;
            }
            if let Some(node) = self.nodes.get(&d) {
                for dep in &node.normal_deps {
                    stack.push(dep.clone());
                }
            }
        }
        out
    }

    /// Return the members in dependency order, or the cycle that prevents
    /// one. Cargo would reject a cycle anyway; the self-check uses this to
    /// assert the layering stays intentional.
    pub fn topo_order(&self) -> Result<Vec<String>, String> {
        let mut order = Vec::new();
        // 0 = unvisited, 1 = on stack, 2 = done.
        let mut state: BTreeMap<&str, u8> = BTreeMap::new();
        fn visit<'a>(
            g: &'a CrateGraph,
            name: &'a str,
            state: &mut BTreeMap<&'a str, u8>,
            order: &mut Vec<String>,
        ) -> Result<(), String> {
            match state.get(name).copied().unwrap_or(0) {
                1 => return Err(format!("dependency cycle through `{name}`")),
                2 => return Ok(()),
                _ => {}
            }
            state.insert(name, 1);
            if let Some(node) = g.nodes.get(name) {
                for dep in &node.deps {
                    visit(g, dep, state, order)?;
                }
            }
            state.insert(name, 2);
            order.push(name.to_string());
            Ok(())
        }
        for name in self.nodes.keys() {
            visit(self, name, &mut state, &mut order)?;
        }
        Ok(order)
    }

    /// Crates with no workspace-internal dependencies (the foundation layer).
    pub fn foundations(&self) -> Vec<&str> {
        self.nodes
            .values()
            .filter(|n| n.deps.is_empty())
            .map(|n| n.dir.as_str())
            .collect()
    }

    /// Human-readable report for the `graph` subcommand.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let order = self.topo_order().unwrap_or_else(|e| vec![format!("<{e}>")]);
        let _ = writeln!(s, "workspace crates in dependency order:");
        for name in &order {
            let Some(n) = self.nodes.get(name) else {
                continue;
            };
            let deps = if n.deps.is_empty() {
                "-".to_string()
            } else {
                n.deps.join(", ")
            };
            let _ = writeln!(
                s,
                "  {:<10} ({:<17} {:>2} modules)  deps: {}",
                n.dir,
                format!("{},", n.package),
                n.modules.len(),
                deps
            );
        }
        s
    }
}

fn collect_modules(root: &Path, dir: &Path, out: &mut Vec<String>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.filter_map(|e| e.ok()) {
        let path = entry.path();
        if path.is_dir() {
            collect_modules(root, &path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_string_lossy().replace('\\', "/"));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workspace::find_root;

    #[test]
    fn loads_and_orders_this_workspace() {
        let root = find_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("root");
        let g = CrateGraph::load(&root).expect("graph");
        assert!(g.nodes.contains_key("core"));
        assert_eq!(g.nodes["core"].package, "distinct");
        // exec is a foundation crate and core depends on it.
        assert!(g.nodes["exec"].deps.is_empty());
        assert!(g.nodes["core"].deps.contains(&"exec".to_string()));
        // lint depends on nothing in the workspace.
        assert!(g.nodes["lint"].deps.is_empty());
        let order = g.topo_order().expect("acyclic");
        let pos = |n: &str| order.iter().position(|x| x == n).unwrap_or(usize::MAX);
        assert!(pos("exec") < pos("core"));
        assert!(pos("relgraph") < pos("core"));
    }

    #[test]
    fn normal_deps_exclude_dev_only_edges() {
        let root = find_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("root");
        let g = CrateGraph::load(&root).expect("graph");
        // datagen is a dev-dependency of core: present in the union,
        // absent from the normal edge set and the normal closure.
        assert!(g.nodes["core"].deps.contains(&"datagen".to_string()));
        assert!(!g.nodes["core"].normal_deps.contains(&"datagen".to_string()));
        let closure = g.normal_closure("core");
        assert!(closure.contains("relgraph"));
        assert!(closure.contains("cluster"));
        assert!(closure.contains("relstore"));
        assert!(!closure.contains("datagen"));
        assert!(!closure.contains("oracle"));
    }

    #[test]
    fn missing_manifest_is_fatal() {
        let scratch =
            std::env::temp_dir().join(format!("distinct-lint-graph-{}", std::process::id()));
        let _ = fs::remove_dir_all(&scratch);
        fs::create_dir_all(scratch.join("crates/ghost/src")).expect("mkdir");
        fs::write(scratch.join("Cargo.toml"), "[workspace]\n").expect("manifest");
        fs::write(scratch.join("crates/ghost/src/lib.rs"), "").expect("lib");
        let err = CrateGraph::load(&scratch).expect_err("must fail");
        assert_eq!(
            err,
            GraphError::MissingManifest {
                dir: "ghost".into()
            }
        );
        assert!(err.to_string().contains("ghost"));
        let _ = fs::remove_dir_all(&scratch);
    }
}

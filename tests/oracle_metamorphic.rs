//! Metamorphic invariants of the resolution pipeline.
//!
//! Each property transforms an input in a way that must not change the
//! answer (or must change it in a predictable direction) and asserts the
//! pipeline honors the relation:
//!
//! 1. **Reference-order permutation invariance** — permuting the `refs`
//!    slice permutes labels and pairwise tables, nothing else.
//! 2. **Tuple-order permutation invariance** — physically reordering a
//!    relation's rows leaves every propagation probability unchanged
//!    (modulo the key-preserving tuple-id relabeling) within `1e-9`.
//! 3. **Duplicate-constraint idempotence** — repeating `must_link` /
//!    `cannot_link` pairs changes nothing: constraints are a set.
//! 4. **Similarity symmetry** — `sim(a, b) = sim(b, a)` at every stage,
//!    on both the production probe and the oracle.
//! 5. **Min-sim monotonicity** — raising the threshold only splits
//!    clusters: the higher-threshold clustering refines the lower one.
//! 6. **Resume-after-kill equivalence** — crashing a durable run at an
//!    arbitrary write and resuming it on a cold engine yields exactly the
//!    partition of an uninterrupted resolve: durability is invisible in
//!    the answer.
//!
//! Property tests run on the vendored `proptest` (deterministic per-test
//! seeding, no shrinking); the worlds are small so each case is cheap.

use datagen::{AmbiguousSpec, DblpDataset, World, WorldConfig};
use distinct::{
    Distinct, DistinctConfig, DistinctError, ResolveRequest, RunOptions, TrainingConfig,
    WeightingMode,
};
use oracle::{Composite, Measure, OracleEngine};
use proptest::prelude::*;
use relgraph::LinkGraph;
use relstore::{
    AttrType, Catalog, FaultKind, FaultPlan, FaultyVfs, JoinPath, JoinStep, SchemaBuilder, StdVfs,
    Tuple, TupleRef, Value,
};
use std::sync::OnceLock;

// ---------------------------------------------------------------------------
// Shared fixture
// ---------------------------------------------------------------------------

fn fixture() -> &'static DblpDataset {
    static DATA: OnceLock<DblpDataset> = OnceLock::new();
    DATA.get_or_init(|| {
        let mut config = WorldConfig::tiny(47);
        config.n_authors = 120;
        config.n_venues = 12;
        config.n_communities = 5;
        config.ambiguous = vec![AmbiguousSpec::new("Wei Wang", vec![5, 4])];
        datagen::to_catalog(&World::generate(config)).unwrap()
    })
}

fn engine() -> Distinct {
    let config = DistinctConfig {
        max_path_len: 3,
        min_sim: 1e-4,
        weighting: WeightingMode::Uniform,
        training: TrainingConfig {
            positives: 60,
            negatives: 60,
            ..Default::default()
        },
        ..Default::default()
    };
    Distinct::prepare(&fixture().catalog, "Publish", "author", config).unwrap()
}

/// Deterministic Fisher–Yates permutation of `0..n` from a seed.
fn permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        perm.swap(i, j);
    }
    perm
}

/// `true` iff `fine` refines `coarse`: items sharing a `fine` cluster
/// always share a `coarse` cluster.
fn refines(fine: &[usize], coarse: &[usize]) -> bool {
    for i in 0..fine.len() {
        for j in i + 1..fine.len() {
            if fine[i] == fine[j] && coarse[i] != coarse[j] {
                return false;
            }
        }
    }
    true
}

// ---------------------------------------------------------------------------
// Invariant 2's two-relation catalog (row order is the variable)
// ---------------------------------------------------------------------------

/// `Child(key, parent -> Parent)` with children inserted in `order`;
/// returns the catalog and each logical child's [`TupleRef`] indexed by
/// its key.
fn ordered_catalog(
    parents: usize,
    assignment: &[usize],
    order: &[usize],
) -> (Catalog, Vec<TupleRef>) {
    let mut c = Catalog::new();
    c.add_relation(
        SchemaBuilder::new("Parent")
            .key("key", AttrType::Int)
            .build()
            .unwrap(),
    )
    .unwrap();
    c.add_relation(
        SchemaBuilder::new("Child")
            .key("key", AttrType::Int)
            .fk("parent", AttrType::Int, "Parent")
            .build()
            .unwrap(),
    )
    .unwrap();
    for p in 0..parents {
        c.insert("Parent", Tuple::new(vec![Value::Int(p as i64)]))
            .unwrap();
    }
    let child_rel = c.relation_id("Child").unwrap();
    let mut by_key = vec![TupleRef::new(child_rel, relstore::TupleId(0)); assignment.len()];
    for &k in order {
        by_key[k] = c
            .insert(
                "Child",
                Tuple::new(vec![
                    Value::Int(k as i64),
                    Value::Int((assignment[k] % parents) as i64),
                ]),
            )
            .unwrap();
    }
    c.finalize(false).unwrap();
    (c, by_key)
}

/// The `Child → Parent → Child` round-trip path.
fn round_trip_path(c: &Catalog) -> JoinPath {
    let fk = c.fk_edges()[0].clone();
    JoinPath::new(
        fk.from,
        vec![JoinStep::forward(fk.id), JoinStep::backward(fk.id)],
        c,
    )
    .unwrap()
}

// ---------------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // 1. Permuting the reference slice permutes the output, nothing else.
    #[test]
    fn reference_order_permutation_invariance(seed in 1u64..1_000_000) {
        let engine = engine();
        let refs = &fixture().truths[0].refs;
        let n = refs.len();
        let perm = permutation(n, seed);
        let permuted: Vec<TupleRef> = perm.iter().map(|&i| refs[i]).collect();

        let base = engine.resolve(&ResolveRequest::new(refs));
        let shuffled = engine.resolve(&ResolveRequest::new(&permuted));
        let lb = &base.clustering.labels;
        let ls = &shuffled.clustering.labels;
        for a in 0..n {
            for b in 0..n {
                // permuted[a] is refs[perm[a]]: co-membership must carry over.
                prop_assert_eq!(ls[a] == ls[b], lb[perm[a]] == lb[perm[b]]);
            }
        }

        let probe = engine.stage_probe(refs);
        let probe_shuffled = engine.stage_probe(&permuted);
        for a in 0..n {
            for b in 0..n {
                let d = (probe_shuffled.similarity[a][b]
                    - probe.similarity[perm[a]][perm[b]])
                    .abs();
                prop_assert!(d <= 1e-9, "similarity moved by {} under permutation", d);
            }
        }
    }

    // 2. Physical row order of a relation never changes propagation.
    #[test]
    fn tuple_order_permutation_invariance(
        seed in 1u64..1_000_000,
        parents in 2usize..6,
        children in 4usize..12,
    ) {
        let assignment: Vec<usize> = (0..children)
            .map(|i| (i.wrapping_mul(7).wrapping_add(seed as usize)) % parents)
            .collect();
        let identity: Vec<usize> = (0..children).collect();
        let shuffled = permutation(children, seed);

        let (cat_a, refs_a) = ordered_catalog(parents, &assignment, &identity);
        let (cat_b, refs_b) = ordered_catalog(parents, &assignment, &shuffled);
        let graph_a = LinkGraph::build(&cat_a);
        let graph_b = LinkGraph::build(&cat_b);
        let path_a = round_trip_path(&cat_a);
        let path_b = round_trip_path(&cat_b);

        for k in 0..children {
            let prop_a = relgraph::propagate(&graph_a, &cat_a, &path_a, refs_a[k]);
            let prop_b = relgraph::propagate(&graph_b, &cat_b, &path_b, refs_b[k]);
            prop_assert_eq!(prop_a.forward.len(), prop_b.forward.len());
            for (&node, &mass) in &prop_a.forward {
                // Identify end tuples by their logical key, not tuple id.
                let t = graph_a.tuple(node);
                let key = cat_a.relation(t.rel).tuple(t.tid).values()[0].clone();
                let matched = prop_b.forward.iter().find(|(&nb, _)| {
                    let tb = graph_b.tuple(nb);
                    cat_b.relation(tb.rel).tuple(tb.tid).values()[0] == key
                });
                let (_, &mass_b) = matched.expect("same support under row permutation");
                prop_assert!((mass - mass_b).abs() <= 1e-9);
            }
        }
    }

    // 3. Constraints are a set: duplicating them changes nothing.
    #[test]
    fn duplicate_constraint_idempotence(
        a in 0usize..9,
        b in 0usize..9,
        c in 0usize..9,
        d in 0usize..9,
    ) {
        prop_assume!(a != b && c != d && (a, b) != (c, d) && (a, b) != (d, c));
        let engine = engine();
        let refs = &fixture().truths[0].refs;
        let must = [(a, b)];
        let cannot = [(c, d)];
        let once = engine.resolve(
            &ResolveRequest::new(refs).must_link(&must).cannot_link(&cannot),
        );
        let twice = engine.resolve(
            &ResolveRequest::new(refs)
                .must_link(&must)
                .must_link(&must)
                .cannot_link(&cannot)
                .cannot_link(&cannot),
        );
        prop_assert_eq!(&once.clustering.labels, &twice.clustering.labels);
        prop_assert_eq!(
            once.clustering.dendrogram.merges(),
            twice.clustering.dendrogram.merges()
        );
    }

    // 4. Similarity is symmetric at every stage, on both implementations.
    #[test]
    fn similarity_symmetry(seed in 1u64..1_000_000) {
        let engine = engine();
        let refs = &fixture().truths[0].refs;
        let n = refs.len();
        // Probe a permuted slice so symmetry is not an artifact of one
        // fixed pair orientation.
        let perm = permutation(n, seed);
        let permuted: Vec<TupleRef> = perm.iter().map(|&i| refs[i]).collect();
        let probe = engine.stage_probe(&permuted);

        let (paths, ref_fk) =
            oracle::select_paths(engine.catalog(), "Publish", "author", 3).unwrap();
        let uniform = vec![1.0 / paths.len() as f64; paths.len()];
        let orc = OracleEngine::new(
            engine.catalog(),
            paths,
            ref_fk,
            uniform.clone(),
            uniform,
            Measure::Combined,
            Composite::Geometric,
        );
        let tables = orc.pairwise(&permuted);
        for i in 0..n {
            for j in 0..n {
                prop_assert_eq!(probe.resemblance[i][j], probe.resemblance[j][i]);
                prop_assert_eq!(probe.walk[i][j], probe.walk[j][i]);
                prop_assert_eq!(probe.similarity[i][j], probe.similarity[j][i]);
                prop_assert_eq!(tables.resemblance[i][j], tables.resemblance[j][i]);
                prop_assert_eq!(tables.walk[i][j], tables.walk[j][i]);
                prop_assert_eq!(tables.similarity[i][j], tables.similarity[j][i]);
            }
        }
    }

    // 5. Raising min-sim only splits clusters, never re-mixes them.
    #[test]
    fn min_sim_monotonicity(lo_bits in 1u32..500, hi_bits in 1u32..500) {
        let lo = f64::from(lo_bits.min(hi_bits)) * 1e-5;
        let hi = f64::from(lo_bits.max(hi_bits)) * 1e-5;
        let engine = engine();
        let refs = &fixture().truths[0].refs;
        let coarse = engine.resolve(&ResolveRequest::new(refs).min_sim(lo));
        let fine = engine.resolve(&ResolveRequest::new(refs).min_sim(hi));
        prop_assert!(
            refines(&fine.clustering.labels, &coarse.clustering.labels),
            "threshold {} does not refine {}: {:?} vs {:?}",
            hi,
            lo,
            fine.clustering.labels,
            coarse.clustering.labels
        );
        // And the merge sequence at `hi` is a prefix of the one at `lo`.
        let fm = fine.clustering.dendrogram.merges();
        let cm = coarse.clustering.dendrogram.merges();
        prop_assert!(fm.len() <= cm.len());
        prop_assert_eq!(fm, &cm[..fm.len()]);
    }

    // 6. Durability is invisible: kill anywhere, resume cold, same answer.
    #[test]
    fn resume_after_kill_equals_cold_resolve(
        kill_point in 1u64..=6,
        torn in proptest::bool::ANY,
    ) {
        let eng = engine();
        let refs = &fixture().truths[0].refs;
        let cold = eng.resolve(&ResolveRequest::new(refs)).clustering;

        let dir = std::env::temp_dir().join(format!(
            "distinct_meta_resume_{}_{kill_point}_{torn}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = RunOptions {
            chunk_size: 4,
            ..Default::default()
        };
        let req = ResolveRequest::new(refs).resume(&dir);

        // Crash the durable run at the swept write (9 refs / chunks of 4:
        // manifest, three chunks, similarity, clustering — 6 writes).
        let kind = if torn { FaultKind::Torn } else { FaultKind::Fail };
        let mut vfs = FaultyVfs::new(
            FaultPlan::new(kill_point.wrapping_mul(0x9e37)).with_fault(kill_point, kind),
        );
        let fatal = RunOptions { max_retries: 0, ..opts.clone() };
        let err = eng
            .resolve_durable_with(&req, &mut vfs, &fatal)
            .expect_err("the injected crash must surface");
        prop_assert!(matches!(err, DistinctError::Store(_)), "{}", err);

        // A cold engine resumes to the identical partition.
        let resumed = engine().resolve_durable_with(&req, &mut StdVfs, &opts);
        let _ = std::fs::remove_dir_all(&dir);
        prop_assert!(resumed.is_ok(), "resume failed: {:?}", resumed.err());
        let resumed = resumed.unwrap();
        prop_assert!(resumed.outcome.is_complete());
        prop_assert_eq!(&resumed.outcome.clustering.labels, &cold.labels);
        prop_assert_eq!(
            resumed.outcome.clustering.dendrogram.merges(),
            cold.dendrogram.merges()
        );
    }
}

//! `#[derive(Serialize, Deserialize)]` for the vendored serde subset.
//!
//! No `syn`/`quote` (the build is offline): the item is parsed directly
//! from its `proc_macro::TokenStream`. Supported shapes — exactly the ones
//! the workspace uses — are non-generic structs (named, tuple, unit) and
//! enums whose variants are unit, tuple, or struct-like. Serde field/type
//! attributes are not supported and `#[serde(...)]` is rejected loudly
//! rather than silently ignored.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Which::Serialize)
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Which::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Which {
    Serialize,
    Deserialize,
}

fn expand(input: TokenStream, which: Which) -> TokenStream {
    match parse_item(input) {
        Ok(item) => {
            let code = match which {
                Which::Serialize => gen_serialize(&item),
                Which::Deserialize => gen_deserialize(&item),
            };
            code.parse().expect("serde_derive generated invalid Rust")
        }
        Err(msg) => format!("::core::compile_error!({msg:?});")
            .parse()
            .expect("compile_error tokens parse"),
    }
}

// ------------------------------------------------------------------ model

enum Fields {
    /// Named fields, in declaration order.
    Named(Vec<String>),
    /// Tuple fields (arity).
    Tuple(usize),
    /// No fields.
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Shape {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    shape: Shape,
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0usize;

    skip_attrs_and_vis(&toks, &mut pos)?;

    let kw = match toks.get(pos) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("serde_derive: expected `struct` or `enum`".into()),
    };
    pos += 1;
    let name = match toks.get(pos) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("serde_derive: expected item name".into()),
    };
    pos += 1;

    if matches!(toks.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde_derive: generic type `{name}` is not supported by the vendored serde"
        ));
    }

    let shape = match (kw.as_str(), toks.get(pos)) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Shape::Struct(Fields::Named(parse_named_fields(g.stream())?))
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            Shape::Struct(Fields::Tuple(count_top_level_items(g.stream())))
        }
        ("struct", Some(TokenTree::Punct(p))) if p.as_char() == ';' => Shape::Struct(Fields::Unit),
        ("struct", None) => Shape::Struct(Fields::Unit),
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Shape::Enum(parse_variants(g.stream())?)
        }
        _ => {
            return Err(format!(
                "serde_derive: unsupported item shape for `{name}` (expected plain struct or enum)"
            ))
        }
    };
    Ok(Item { name, shape })
}

/// Skip leading attributes (`#[...]`, including doc comments) and a
/// `pub` / `pub(...)` visibility. Rejects `#[serde(...)]`, which the
/// vendored serde cannot honor.
fn skip_attrs_and_vis(toks: &[TokenTree], pos: &mut usize) -> Result<(), String> {
    loop {
        match toks.get(*pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = toks.get(*pos + 1) {
                    let body = g.stream().to_string();
                    if body.starts_with("serde") {
                        return Err(format!(
                            "serde_derive: `#[{body}]` attributes are not supported by the vendored serde"
                        ));
                    }
                    *pos += 2;
                } else {
                    return Err("serde_derive: stray `#`".into());
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *pos += 1;
                if matches!(toks.get(*pos), Some(TokenTree::Group(g))
                    if g.delimiter() == Delimiter::Parenthesis)
                {
                    *pos += 1;
                }
            }
            _ => return Ok(()),
        }
    }
}

/// Split a token stream at top-level commas, treating `<...>` nesting as
/// opaque (bracketed groups already are). Returns non-empty chunks.
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth = 0i32;
    for t in stream {
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' && angle_depth > 0 => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                if !current.is_empty() {
                    chunks.push(std::mem::take(&mut current));
                }
                continue;
            }
            _ => {}
        }
        current.push(t);
    }
    if !current.is_empty() {
        chunks.push(current);
    }
    chunks
}

fn count_top_level_items(stream: TokenStream) -> usize {
    split_top_level(stream).len()
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut names = Vec::new();
    for chunk in split_top_level(stream) {
        let mut pos = 0usize;
        skip_attrs_and_vis(&chunk, &mut pos)?;
        match (chunk.get(pos), chunk.get(pos + 1)) {
            (Some(TokenTree::Ident(id)), Some(TokenTree::Punct(p))) if p.as_char() == ':' => {
                names.push(id.to_string());
            }
            _ => return Err("serde_derive: could not parse a struct field".into()),
        }
    }
    Ok(names)
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    for chunk in split_top_level(stream) {
        let mut pos = 0usize;
        skip_attrs_and_vis(&chunk, &mut pos)?;
        let name = match chunk.get(pos) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            _ => return Err("serde_derive: could not parse an enum variant".into()),
        };
        pos += 1;
        let fields = match chunk.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Fields::Tuple(count_top_level_items(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Fields::Named(parse_named_fields(g.stream())?)
            }
            None => Fields::Unit,
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                return Err(format!(
                    "serde_derive: explicit discriminant on variant `{name}` is not supported"
                ));
            }
            _ => return Err(format!("serde_derive: unsupported variant `{name}`")),
        };
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

// ---------------------------------------------------------------- codegen

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(Fields::Named(fields)) => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_content(&self.{f})),"
                    )
                })
                .collect();
            format!("::serde::Content::Map(::std::vec![{entries}])")
        }
        Shape::Struct(Fields::Tuple(1)) => {
            // Newtype structs are transparent, like upstream serde.
            "::serde::Serialize::to_content(&self.0)".to_string()
        }
        Shape::Struct(Fields::Tuple(n)) => {
            let elems: String = (0..*n)
                .map(|i| format!("::serde::Serialize::to_content(&self.{i}),"))
                .collect();
            format!("::serde::Content::Seq(::std::vec![{elems}])")
        }
        Shape::Struct(Fields::Unit) => "::serde::Content::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: String = variants.iter().map(|v| serialize_arm(name, v)).collect();
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_content(&self) -> ::serde::Content {{ {body} }}\n\
         }}"
    )
}

fn serialize_arm(name: &str, v: &Variant) -> String {
    let vname = &v.name;
    match &v.fields {
        Fields::Unit => format!(
            "{name}::{vname} => \
             ::serde::Content::Str(::std::string::String::from({vname:?})),"
        ),
        Fields::Tuple(1) => format!(
            "{name}::{vname}(__f0) => ::serde::Content::Map(::std::vec![(\
             ::std::string::String::from({vname:?}), \
             ::serde::Serialize::to_content(__f0))]),"
        ),
        Fields::Tuple(n) => {
            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
            let elems: String = binds
                .iter()
                .map(|b| format!("::serde::Serialize::to_content({b}),"))
                .collect();
            format!(
                "{name}::{vname}({}) => ::serde::Content::Map(::std::vec![(\
                 ::std::string::String::from({vname:?}), \
                 ::serde::Content::Seq(::std::vec![{elems}]))]),",
                binds.join(", ")
            )
        }
        Fields::Named(fields) => {
            let binds = fields.join(", ");
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_content({f})),"
                    )
                })
                .collect();
            format!(
                "{name}::{vname} {{ {binds} }} => ::serde::Content::Map(::std::vec![(\
                 ::std::string::String::from({vname:?}), \
                 ::serde::Content::Map(::std::vec![{entries}]))]),"
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(Fields::Named(fields)) => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::__private::field(__m, {name:?}, {f:?})?,"))
                .collect();
            format!(
                "let __m = ::serde::__private::map_payload(\
                 ::std::option::Option::Some(c), {name:?})?;\n\
                 ::std::result::Result::Ok({name} {{ {inits} }})"
            )
        }
        Shape::Struct(Fields::Tuple(1)) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_content(c)?))")
        }
        Shape::Struct(Fields::Tuple(n)) => {
            let inits: String = (0..*n)
                .map(|i| format!("::serde::__private::elem(__s, {name:?}, {i})?,"))
                .collect();
            format!(
                "let __s = ::serde::__private::tuple_payload(\
                 ::std::option::Option::Some(c), {name:?})?;\n\
                 ::std::result::Result::Ok({name}({inits}))"
            )
        }
        Shape::Struct(Fields::Unit) => {
            format!("::std::result::Result::Ok({name})")
        }
        Shape::Enum(variants) => {
            let arms: String = variants.iter().map(|v| deserialize_arm(name, v)).collect();
            format!(
                "let (__tag, __payload) = ::serde::__private::variant(c, {name:?})?;\n\
                 match __tag {{\n\
                     {arms}\n\
                     __other => ::std::result::Result::Err(::serde::Error::custom(\
                         ::std::format!(\"unknown variant `{{__other}}` of `{name}`\"))),\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_content(c: &::serde::Content) \
                 -> ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n\
         }}"
    )
}

fn deserialize_arm(name: &str, v: &Variant) -> String {
    let vname = &v.name;
    let owner = format!("{name}::{vname}");
    match &v.fields {
        Fields::Unit => format!(
            "{vname:?} => if __payload.is_none() {{\
                 ::std::result::Result::Ok({name}::{vname})\
             }} else {{\
                 ::std::result::Result::Err(::serde::Error::custom(\
                     \"unexpected payload for unit variant `{owner}`\"))\
             }},"
        ),
        Fields::Tuple(1) => format!(
            "{vname:?} => {{\
                 let __p = __payload.ok_or_else(|| ::serde::Error::custom(\
                     \"missing payload for `{owner}`\"))?;\
                 ::std::result::Result::Ok({name}::{vname}(\
                     ::serde::Deserialize::from_content(__p)?))\
             }},"
        ),
        Fields::Tuple(n) => {
            let inits: String = (0..*n)
                .map(|i| format!("::serde::__private::elem(__s, {owner:?}, {i})?,"))
                .collect();
            format!(
                "{vname:?} => {{\
                     let __s = ::serde::__private::tuple_payload(__payload, {owner:?})?;\
                     ::std::result::Result::Ok({name}::{vname}({inits}))\
                 }},"
            )
        }
        Fields::Named(fields) => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::__private::field(__m, {owner:?}, {f:?})?,"))
                .collect();
            format!(
                "{vname:?} => {{\
                     let __m = ::serde::__private::map_payload(__payload, {owner:?})?;\
                     ::std::result::Result::Ok({name}::{vname} {{ {inits} }})\
                 }},"
            )
        }
    }
}

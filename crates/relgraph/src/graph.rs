//! Compact linkage graph over a finalized catalog.
//!
//! Probability propagation visits foreign-key neighborhoods millions of
//! times; hash lookups in the catalog's indexes would dominate. The
//! [`LinkGraph`] flattens every tuple into a dense `u32` node id and stores
//! each foreign-key edge's adjacency in CSR (compressed sparse row) form,
//! one forward table and one backward table per edge, so a traversal step
//! is a slice lookup.

use relstore::{Catalog, Direction, FkId, FxHashMap, JoinStep, RelId, TupleId, TupleRef};

/// Dense node id: a tuple's position in the flattened catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as an index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// CSR adjacency: `targets[offsets[i]..offsets[i+1]]` are node `i`'s
/// neighbors, where `i` is the tuple id *within the edge's source relation*.
#[derive(Debug, Clone, Default)]
struct Csr {
    offsets: Vec<u32>,
    targets: Vec<NodeId>,
}

impl Csr {
    fn neighbors(&self, local: usize) -> &[NodeId] {
        let lo = self.offsets[local] as usize;
        let hi = self.offsets[local + 1] as usize;
        &self.targets[lo..hi]
    }
}

/// Flattened linkage graph for fast join-path traversal.
///
/// The graph is built once over a finalized catalog and can then grow by
/// [`LinkGraph::append_tuple`]: appended tuples get node ids *after* every
/// build-time id (so existing ids — and anything keyed on them, such as
/// cached profiles — stay valid) and their adjacency lives in small
/// hash-map overlays consulted before the CSR tables. An overlay entry
/// always holds the *fully merged* neighbor list (build-time neighbors
/// followed by appended ones, which preserves tuple-id order because
/// appended tuples have larger ids), so a traversal step is still a single
/// slice borrow.
#[derive(Debug, Clone)]
pub struct LinkGraph {
    /// Offset of each relation's tuples in the global node id space; one
    /// extra entry holds the build-time total node count.
    base: Vec<u32>,
    /// Per FK edge: forward adjacency (source relation local id -> 0/1 target).
    forward: Vec<Csr>,
    /// Per FK edge: backward adjacency (target relation local id -> referrers).
    backward: Vec<Csr>,
    /// Appended tuples in append order; tuple `extra[k]` has node id
    /// `built_total + k`.
    extra: Vec<TupleRef>,
    /// Per relation: node ids of appended tuples, indexed by
    /// `tid - built_len(rel)` (tuple ids are dense and appends only grow
    /// them). Empty until the first append.
    extra_by_rel: Vec<Vec<NodeId>>,
    /// Per FK edge: forward overlay keyed by global node id.
    fwd_over: Vec<FxHashMap<NodeId, Vec<NodeId>>>,
    /// Per FK edge: backward overlay keyed by global node id.
    bwd_over: Vec<FxHashMap<NodeId, Vec<NodeId>>>,
    /// Fast path: skip every overlay lookup while the graph is untouched.
    has_overlay: bool,
}

impl LinkGraph {
    /// Build the graph from a finalized catalog.
    ///
    /// # Panics
    /// Panics if the catalog is not finalized (edges would be stale).
    pub fn build(catalog: &Catalog) -> Self {
        assert!(
            catalog.is_finalized(),
            "LinkGraph::build requires a finalized catalog"
        );
        let mut base = Vec::with_capacity(catalog.relation_count() + 1);
        let mut total = 0u32;
        for (_, rel) in catalog.relations() {
            base.push(total);
            total += rel.len() as u32;
        }
        base.push(total);

        let global = |t: TupleRef| NodeId(base[t.rel.index()] + t.tid.0);

        let mut forward = Vec::with_capacity(catalog.fk_edges().len());
        let mut backward = Vec::with_capacity(catalog.fk_edges().len());
        for edge in catalog.fk_edges() {
            // Forward: each tuple of `from` points to <= 1 tuple of `to`.
            let from_rel = catalog.relation(edge.from);
            let mut f = Csr {
                offsets: Vec::with_capacity(from_rel.len() + 1),
                targets: Vec::new(),
            };
            f.offsets.push(0);
            for (tid, _) in from_rel.iter() {
                if let Some(t) = catalog.follow_forward(edge.id, TupleRef::new(edge.from, tid)) {
                    f.targets.push(global(t));
                }
                f.offsets.push(f.targets.len() as u32);
            }
            // Backward: each tuple of `to` points to all referrers in `from`.
            let to_rel = catalog.relation(edge.to);
            let mut b = Csr {
                offsets: Vec::with_capacity(to_rel.len() + 1),
                targets: Vec::new(),
            };
            b.offsets.push(0);
            for (tid, _) in to_rel.iter() {
                for t in catalog.follow_backward(edge.id, TupleRef::new(edge.to, tid)) {
                    b.targets.push(global(t));
                }
                b.offsets.push(b.targets.len() as u32);
            }
            forward.push(f);
            backward.push(b);
        }
        LinkGraph {
            base,
            forward,
            backward,
            extra: Vec::new(),
            extra_by_rel: Vec::new(),
            fwd_over: Vec::new(),
            bwd_over: Vec::new(),
            has_overlay: false,
        }
    }

    /// Node count at build time (appended nodes get ids from here up).
    #[inline]
    fn built_total(&self) -> u32 {
        *self.base.last().unwrap_or(&0)
    }

    /// Build-time tuple count of one relation.
    #[inline]
    fn built_len(&self, rel: usize) -> u32 {
        self.base[rel + 1] - self.base[rel]
    }

    /// Whether `t` already has a node in this graph (build-time or
    /// appended). Catalog tuples inserted after the last
    /// [`LinkGraph::append_tuple`] call are not yet covered.
    pub fn covers(&self, t: TupleRef) -> bool {
        let rel = t.rel.index();
        let appended = if self.has_overlay {
            self.extra_by_rel[rel].len() as u32
        } else {
            0
        };
        t.tid.0 < self.built_len(rel) + appended
    }

    /// Append one catalog tuple to the graph, wiring its foreign-key
    /// adjacency into the overlays, and return its (new) node id.
    ///
    /// The catalog must be finalized and must already contain `t`. Forward
    /// targets of `t` must already be covered by the graph — append
    /// referenced tuples before referencing ones. Referrers of `t` that the
    /// graph does not cover yet are skipped; they wire themselves up when
    /// they are appended in turn.
    ///
    /// # Panics
    /// Panics if the catalog is not finalized (edges would be stale).
    pub fn append_tuple(&mut self, catalog: &Catalog, t: TupleRef) -> NodeId {
        assert!(
            catalog.is_finalized(),
            "LinkGraph::append_tuple requires a finalized catalog"
        );
        if !self.has_overlay {
            self.extra_by_rel = vec![Vec::new(); self.base.len().saturating_sub(1)];
            self.fwd_over = vec![FxHashMap::default(); self.forward.len()];
            self.bwd_over = vec![FxHashMap::default(); self.backward.len()];
            self.has_overlay = true;
        }
        let rel = t.rel.index();
        debug_assert_eq!(
            t.tid.0,
            self.built_len(rel) + self.extra_by_rel[rel].len() as u32,
            "tuples must be appended in catalog insertion order"
        );
        let id = NodeId(self.built_total() + self.extra.len() as u32);
        // distinct-lint: allow(D113, reason="the incremental overlay mirrors corpus growth: appended tuples stay addressable until the graph is rebuilt, which is the eviction point")
        self.extra.push(t);
        self.extra_by_rel[rel].push(id);

        // Out-edges: the new tuple's forward targets and its entry in each
        // target's backward list. A target inserted later in the same batch
        // is not covered yet — skip it; the in-edge fixup when the target
        // is appended wires this tuple's edge then.
        for &fk in catalog.out_edges(t.rel) {
            if let Some(target) = catalog.follow_forward(fk, t) {
                if !self.covers(target) {
                    continue;
                }
                let tn = self.node(target);
                self.fwd_over[fk.index()].insert(id, vec![tn]);
                if !self.bwd_over[fk.index()].contains_key(&tn) {
                    let seed = if tn.0 < self.built_total() {
                        let local = self.local(tn, target.rel);
                        self.backward[fk.index()].neighbors(local).to_vec()
                    } else {
                        Vec::new()
                    };
                    self.bwd_over[fk.index()].insert(tn, seed);
                }
                if let Some(list) = self.bwd_over[fk.index()].get_mut(&tn) {
                    list.push(id);
                }
            }
        }

        // In-edges: referrers that already exist (possible when the base
        // catalog was finalized without integrity checks, leaving dangling
        // foreign keys that the new tuple's key now resolves). Covered
        // referrers flip from no-target to the new node; uncovered ones are
        // future appends that handle themselves above.
        for &fk in catalog.in_edges(t.rel) {
            let mut backs: Vec<NodeId> = Vec::new();
            for r in catalog.follow_backward(fk, t) {
                if !self.covers(r) {
                    continue;
                }
                let rn = self.node(r);
                backs.push(rn);
                if rn != id {
                    self.fwd_over[fk.index()].insert(rn, vec![id]);
                }
            }
            if !backs.is_empty() {
                self.bwd_over[fk.index()].insert(id, backs);
            }
        }
        id
    }

    /// Total number of nodes (tuples across all relations).
    pub fn node_count(&self) -> usize {
        self.built_total() as usize + self.extra.len()
    }

    /// Map a tuple to its dense node id.
    #[inline]
    pub fn node(&self, t: TupleRef) -> NodeId {
        let rel = t.rel.index();
        if !self.has_overlay || t.tid.0 < self.built_len(rel) {
            NodeId(self.base[rel] + t.tid.0)
        } else {
            self.extra_by_rel[rel][(t.tid.0 - self.built_len(rel)) as usize]
        }
    }

    /// Map a node id back to its tuple.
    pub fn tuple(&self, n: NodeId) -> TupleRef {
        if n.0 >= self.built_total() {
            return self.extra[(n.0 - self.built_total()) as usize];
        }
        // base is sorted; partition_point finds the relation.
        let rel = self.base.partition_point(|&b| b <= n.0) - 1;
        TupleRef::new(RelId(rel as u32), TupleId(n.0 - self.base[rel]))
    }

    /// Local (within-relation) index of a node, given its relation.
    #[inline]
    fn local(&self, n: NodeId, rel: RelId) -> usize {
        (n.0 - self.base[rel.index()]) as usize
    }

    /// Neighbors of `n` along one join step. `src_rel` must be the step's
    /// source relation (i.e. the relation `n` belongs to).
    #[inline]
    pub fn step_neighbors(&self, step: JoinStep, n: NodeId, src_rel: RelId) -> &[NodeId] {
        if self.has_overlay {
            let over = match step.dir {
                Direction::Forward => &self.fwd_over[step.fk.index()],
                Direction::Backward => &self.bwd_over[step.fk.index()],
            };
            if let Some(list) = over.get(&n) {
                return list;
            }
            if n.0 >= self.built_total() {
                // Appended node with no overlay entry on this edge: no
                // neighbors (e.g. a null foreign key).
                return &[];
            }
        }
        let local = self.local(n, src_rel);
        match step.dir {
            Direction::Forward => self.forward[step.fk.index()].neighbors(local),
            Direction::Backward => self.backward[step.fk.index()].neighbors(local),
        }
    }

    /// Fanout of `n` along one join step.
    #[inline]
    pub fn step_fanout(&self, step: JoinStep, n: NodeId, src_rel: RelId) -> usize {
        self.step_neighbors(step, n, src_rel).len()
    }

    /// Memory the adjacency tables occupy, in bytes (diagnostics).
    pub fn adjacency_bytes(&self) -> usize {
        let csr = |c: &Csr| c.offsets.len() * 4 + c.targets.len() * 4;
        let over =
            |m: &FxHashMap<NodeId, Vec<NodeId>>| m.values().map(|v| 4 + 4 * v.len()).sum::<usize>(); // distinct-lint: allow(D001, D107, reason="integer byte count; usize addition is order-independent")
        self.forward.iter().map(csr).sum::<usize>()
            + self.backward.iter().map(csr).sum::<usize>()
            + self.fwd_over.iter().map(over).sum::<usize>()
            + self.bwd_over.iter().map(over).sum::<usize>()
    }

    /// Number of appended (post-build) tuples.
    pub fn appended_count(&self) -> usize {
        self.extra.len()
    }

    /// Check that an edge id is valid for this graph.
    pub fn edge_count(&self) -> usize {
        self.forward.len()
    }

    /// Does this graph know the given FK edge?
    pub fn has_edge(&self, fk: FkId) -> bool {
        fk.index() < self.forward.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relstore::{AttrType, SchemaBuilder, Value};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_relation(
            SchemaBuilder::new("Authors")
                .key("a", AttrType::Str)
                .build()
                .unwrap(),
        )
        .unwrap();
        c.add_relation(
            SchemaBuilder::new("Papers")
                .key("p", AttrType::Int)
                .build()
                .unwrap(),
        )
        .unwrap();
        c.add_relation(
            SchemaBuilder::new("Publish")
                .fk("a", AttrType::Str, "Authors")
                .fk("p", AttrType::Int, "Papers")
                .build()
                .unwrap(),
        )
        .unwrap();
        for a in ["x", "y"] {
            c.insert("Authors", [Value::str(a)].into()).unwrap();
        }
        for p in 1..=3 {
            c.insert("Papers", [Value::Int(p)].into()).unwrap();
        }
        c.insert("Publish", [Value::str("x"), Value::Int(1)].into())
            .unwrap();
        c.insert("Publish", [Value::str("y"), Value::Int(1)].into())
            .unwrap();
        c.insert("Publish", [Value::str("x"), Value::Int(2)].into())
            .unwrap();
        c.insert("Publish", [Value::str("x"), Value::Int(3)].into())
            .unwrap();
        c.finalize(true).unwrap();
        c
    }

    #[test]
    #[should_panic(expected = "finalized")]
    fn unfinalized_catalog_panics() {
        let mut c = catalog();
        c.insert("Papers", [Value::Int(9)].into()).unwrap();
        let _ = LinkGraph::build(&c);
    }

    #[test]
    fn node_ids_round_trip() {
        let c = catalog();
        let g = LinkGraph::build(&c);
        assert_eq!(g.node_count(), 2 + 3 + 4);
        for (rid, rel) in c.relations() {
            for (tid, _) in rel.iter() {
                let t = TupleRef::new(rid, tid);
                assert_eq!(g.tuple(g.node(t)), t);
            }
        }
    }

    #[test]
    fn adjacency_matches_catalog() {
        let c = catalog();
        let g = LinkGraph::build(&c);
        let publish = c.relation_id("Publish").unwrap();
        let papers = c.relation_id("Papers").unwrap();
        let fk_p = c
            .fk_edges()
            .iter()
            .find(|e| e.label == "Publish.p->Papers")
            .unwrap()
            .id;

        // Forward from each publish tuple: 1 paper.
        for (tid, _) in c.relation(publish).iter() {
            let t = TupleRef::new(publish, tid);
            let expected: Vec<NodeId> = c
                .follow_forward(fk_p, t)
                .into_iter()
                .map(|x| g.node(x))
                .collect();
            let got = g.step_neighbors(JoinStep::forward(fk_p), g.node(t), publish);
            assert_eq!(got, expected.as_slice());
        }
        // Backward from paper 1: two publish records.
        let p1 = TupleRef::new(papers, c.relation(papers).by_key(&Value::Int(1)).unwrap());
        let back = g.step_neighbors(JoinStep::backward(fk_p), g.node(p1), papers);
        assert_eq!(back.len(), 2);
        assert_eq!(
            g.step_fanout(JoinStep::backward(fk_p), g.node(p1), papers),
            2
        );
        // Paper 3 has one record, paper key space is dense.
        let p3 = TupleRef::new(papers, c.relation(papers).by_key(&Value::Int(3)).unwrap());
        assert_eq!(
            g.step_fanout(JoinStep::backward(fk_p), g.node(p3), papers),
            1
        );
    }

    /// Every (tuple, edge, direction) adjacency of `g`, expressed in
    /// tuple space so graphs with different node numbering compare equal.
    fn adjacency_in_tuple_space(c: &Catalog, g: &LinkGraph) -> Vec<Vec<TupleRef>> {
        let mut out = Vec::new();
        for edge in c.fk_edges() {
            for (rel, dir) in [
                (edge.from, Direction::Forward),
                (edge.to, Direction::Backward),
            ] {
                for (tid, _) in c.relation(rel).iter() {
                    let n = g.node(TupleRef::new(rel, tid));
                    let step = JoinStep { fk: edge.id, dir };
                    out.push(
                        g.step_neighbors(step, n, rel)
                            .iter()
                            .map(|&m| g.tuple(m))
                            .collect(),
                    );
                }
            }
        }
        out
    }

    #[test]
    fn append_matches_cold_rebuild_and_keeps_old_ids() {
        let mut c = catalog();
        let mut g = LinkGraph::build(&c);
        let old_ids: Vec<(TupleRef, NodeId)> = c
            .relations()
            .flat_map(|(rid, rel)| {
                rel.iter()
                    .map(|(tid, _)| TupleRef::new(rid, tid))
                    .collect::<Vec<_>>()
            })
            .map(|t| (t, g.node(t)))
            .collect();

        // Grow the catalog: one new paper, two new publish records (one by
        // an existing author). Referenced tuples are appended first.
        let updates = [
            ("Papers", vec![Value::Int(4)]),
            ("Authors", vec![Value::str("z")]),
            ("Publish", vec![Value::str("x"), Value::Int(4)]),
            ("Publish", vec![Value::str("z"), Value::Int(4)]),
        ];
        for (rel, tuple) in updates {
            let t = c.insert(rel, relstore::Tuple::new(tuple)).unwrap();
            assert!(!g.covers(t));
            c.finalize(false).unwrap();
            let id = g.append_tuple(&c, t);
            assert!(g.covers(t));
            assert_eq!(g.node(t), id);
            assert_eq!(g.tuple(id), t);
        }

        // Old node ids are untouched by the appends.
        for (t, id) in &old_ids {
            assert_eq!(g.node(*t), *id);
        }
        assert_eq!(g.node_count(), 2 + 3 + 4 + 4);
        assert_eq!(g.appended_count(), 4);

        // The grown graph's adjacency equals a cold rebuild over the
        // union catalog, tuple for tuple.
        let cold = LinkGraph::build(&c);
        assert_eq!(
            adjacency_in_tuple_space(&c, &g),
            adjacency_in_tuple_space(&c, &cold)
        );
        assert!(g.adjacency_bytes() > cold.adjacency_bytes());
    }

    #[test]
    fn append_resolves_dangling_foreign_keys() {
        // A catalog finalized without integrity checks may hold references
        // to keys that do not exist yet; appending the missing target must
        // wire the existing referrers to it.
        let mut c = catalog();
        let publish = c.relation_id("Publish").unwrap();
        let dangling = c
            .insert("Publish", [Value::str("x"), Value::Int(9)].into())
            .unwrap();
        c.finalize(false).unwrap();
        let mut g = LinkGraph::build(&c);
        let fk_p = c
            .fk_edges()
            .iter()
            .find(|e| e.label == "Publish.p->Papers")
            .unwrap()
            .id;
        assert!(g
            .step_neighbors(JoinStep::forward(fk_p), g.node(dangling), publish)
            .is_empty());

        let p9 = c.insert("Papers", [Value::Int(9)].into()).unwrap();
        c.finalize(false).unwrap();
        g.append_tuple(&c, p9);
        assert_eq!(
            g.step_neighbors(JoinStep::forward(fk_p), g.node(dangling), publish),
            &[g.node(p9)]
        );
        let papers = c.relation_id("Papers").unwrap();
        assert_eq!(
            g.step_neighbors(JoinStep::backward(fk_p), g.node(p9), papers),
            &[g.node(dangling)]
        );
    }

    #[test]
    fn edge_bookkeeping() {
        let c = catalog();
        let g = LinkGraph::build(&c);
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_edge(FkId(0)));
        assert!(g.has_edge(FkId(1)));
        assert!(!g.has_edge(FkId(2)));
        assert!(g.adjacency_bytes() > 0);
    }
}

//! The lint registry: every ID, its severity, and the invariant it guards.

use std::fmt;

/// Lint identifiers. `D000` is the meta-lint about the suppression
/// machinery itself; `D001`–`D007` and `D105` guard the project
/// invariants with per-file token scans, and `D101`–`D104` plus the
/// dataflow passes `D106`–`D109` and the allocation/copy-discipline
/// passes `D110`–`D113` are the interprocedural (call-graph-backed)
/// lints run by `check --semantic`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)] // the catalog below documents each variant
pub enum LintId {
    D000,
    D001,
    D002,
    D003,
    D004,
    D005,
    D006,
    D007,
    D101,
    D102,
    D103,
    D104,
    D105,
    D106,
    D107,
    D108,
    D109,
    D110,
    D111,
    D112,
    D113,
}

/// How bad a violation is. `Deny` findings fail the build outright (after
/// baseline resolution); `Warn` findings fail only when new.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Violates a correctness invariant.
    Deny,
    /// Violates a hygiene contract.
    Warn,
}

impl LintId {
    /// All registered lints, in ID order.
    pub const ALL: [LintId; 21] = [
        LintId::D000,
        LintId::D001,
        LintId::D002,
        LintId::D003,
        LintId::D004,
        LintId::D005,
        LintId::D006,
        LintId::D007,
        LintId::D101,
        LintId::D102,
        LintId::D103,
        LintId::D104,
        LintId::D105,
        LintId::D106,
        LintId::D107,
        LintId::D108,
        LintId::D109,
        LintId::D110,
        LintId::D111,
        LintId::D112,
        LintId::D113,
    ];

    /// Parse `"D001"` (case-insensitive) into an ID.
    pub fn parse(s: &str) -> Option<LintId> {
        let s = s.trim().to_ascii_uppercase();
        LintId::ALL.iter().copied().find(|id| id.name() == s)
    }

    /// The canonical `D00x` name.
    pub fn name(self) -> &'static str {
        match self {
            LintId::D000 => "D000",
            LintId::D001 => "D001",
            LintId::D002 => "D002",
            LintId::D003 => "D003",
            LintId::D004 => "D004",
            LintId::D005 => "D005",
            LintId::D006 => "D006",
            LintId::D007 => "D007",
            LintId::D101 => "D101",
            LintId::D102 => "D102",
            LintId::D103 => "D103",
            LintId::D104 => "D104",
            LintId::D105 => "D105",
            LintId::D106 => "D106",
            LintId::D107 => "D107",
            LintId::D108 => "D108",
            LintId::D109 => "D109",
            LintId::D110 => "D110",
            LintId::D111 => "D111",
            LintId::D112 => "D112",
            LintId::D113 => "D113",
        }
    }

    /// Severity class.
    pub fn severity(self) -> Severity {
        match self {
            LintId::D000 => Severity::Deny,
            LintId::D001 => Severity::Deny,
            LintId::D002 => Severity::Warn,
            LintId::D003 => Severity::Deny,
            LintId::D004 => Severity::Deny,
            LintId::D005 => Severity::Warn,
            LintId::D006 => Severity::Warn,
            LintId::D007 => Severity::Warn,
            LintId::D101 => Severity::Deny,
            LintId::D102 => Severity::Warn,
            LintId::D103 => Severity::Deny,
            LintId::D104 => Severity::Warn,
            LintId::D105 => Severity::Deny,
            LintId::D106 => Severity::Deny,
            LintId::D107 => Severity::Deny,
            LintId::D108 => Severity::Deny,
            LintId::D109 => Severity::Deny,
            LintId::D110 => Severity::Warn,
            LintId::D111 => Severity::Warn,
            LintId::D112 => Severity::Deny,
            LintId::D113 => Severity::Deny,
        }
    }

    /// One-line description (shown with each finding).
    pub fn title(self) -> &'static str {
        match self {
            LintId::D000 => "malformed, reason-less, or unused lint suppression",
            LintId::D001 => "hash-order iteration feeding float accumulation or ordered output",
            LintId::D002 => "panic path (unwrap/expect/panic!/literal index) in library code",
            LintId::D003 => "raw thread or channel construction outside crates/exec",
            LintId::D004 => "direct wall-clock read outside RunControl internals",
            LintId::D005 => "loop in a budget-scoped hot path without a guard",
            LintId::D006 => "lossy float cast or f32 reduction in numeric code",
            LintId::D007 => "public API item without a doc comment in crates/core",
            LintId::D101 => "panic path reachable from resolve()/train() on the call graph",
            LintId::D102 => "unsanitized probability arithmetic flowing to a cluster sink",
            LintId::D103 => "inconsistent lock order or lock held across a channel send",
            LintId::D104 => "loop on a charge-free call path from a pipeline entry point",
            LintId::D105 => "raw filesystem write bypassing the atomic temp+rename persist path",
            LintId::D106 => "lock guard live across an exec pool submit, channel op, or chunk closure",
            LintId::D107 => "nondeterministic value (hash order, thread count, arrival order) reaching a deterministic sink",
            LintId::D108 => "interior-mutability cell on the resolve/train/update spine without a shared(...) declaration",
            LintId::D109 => "chunk closure mutating captured state outside the ordered-commit protocol",
            LintId::D110 => "heap allocation inside a charge-guarded hot loop without a capacity or hoisted buffer",
            LintId::D111 => "clone whose result is only ever read on every CFG path; borrow instead",
            LintId::D112 => "scratch structure on the resolve/update spine without a scratch(...) declaration",
            LintId::D113 => "collection on the update/resolve spine that grows on some path but is cleared on none",
        }
    }

    /// Full rationale for `--explain`: which invariant, why it matters for
    /// DISTINCT, and what the sanctioned fix is.
    pub fn rationale(self) -> &'static str {
        match self {
            LintId::D000 => {
                "Suppressions are part of the audit trail: `// distinct-lint: \
                 allow(D00x, reason=\"...\")` must name at least one known lint \
                 and carry a non-empty reason, and must actually match a finding \
                 on its line (or the next line, for a comment standing alone). \
                 Anything else is noise that hides real debt, so the analyzer \
                 rejects it."
            }
            LintId::D001 => {
                "DISTINCT promises bit-identical output at any thread count. \
                 Iterating a HashMap/HashSet/FxHashMap while summing floats or \
                 appending to ordered output makes the result depend on hash \
                 iteration order — float addition is not associative, so the \
                 weighted-Jaccard and walk-probability pillars silently drift \
                 when the map's insertion history changes. Fix: iterate in \
                 sorted key order (collect + sort, or a BTreeMap), as \
                 crates/oracle does, or show the accumulation is order-free \
                 (integer counters, max/min) in an allow reason."
            }
            LintId::D002 => {
                "PR 1's graceful-degradation contract: library code reachable \
                 from resolve()/train_with() must surface failures as typed \
                 errors or Degraded reports, never panics. unwrap(), expect(), \
                 panic!(), unreachable!() and indexing by integer literal are \
                 all panic paths. Fix: propagate a DistinctError / StoreError, \
                 return Option, or document the proven invariant in an allow \
                 reason. Test code is exempt."
            }
            LintId::D003 => {
                "All parallelism goes through crates/exec's ordered-commit \
                 pool: it is the only code that knows how to keep output \
                 deterministic under any thread count and to honor RunControl \
                 at chunk boundaries. A raw std::thread::spawn or mpsc channel \
                 anywhere else bypasses both guarantees. Fix: use \
                 exec::Executor (par_map_guarded / par_chunks), or move the \
                 primitive into crates/exec."
            }
            LintId::D004 => {
                "Deadlines are RunControl's job: it amortizes clock reads and \
                 latches the first trip so every worker observes one coherent \
                 interruption cause. Scattered Instant::now()/SystemTime reads \
                 make timing-dependent control flow that no test can pin down. \
                 Reading the clock for *reporting* (ExecReport wall times, the \
                 eval timing harness) is fine — say so in an allow reason."
            }
            LintId::D005 => {
                "Every hot loop must charge the shared work budget, or a \
                 budget/deadline/cancellation can only trip between stages and \
                 the resilience contract (PR 1) silently weakens as code moves. \
                 In the designated hot-path files, a function that loops must \
                 either accept a guard parameter or call a guard/charge/status \
                 control hook. Bounded per-pair helpers charged by their \
                 caller at pair granularity should say so in an allow reason."
            }
            LintId::D006 => {
                "The numeric pillars accumulate in f64 end to end; an `as f32` \
                 narrowing (or an f32 sum) anywhere in core/cluster/svm/ \
                 relgraph/eval library code silently halves the mantissa and \
                 breaks the 1e-9 oracle-differential tolerance. Fix: stay in \
                 f64; cast only at presentation boundaries (and allow with a \
                 reason there)."
            }
            LintId::D007 => {
                "crates/core is the public API surface of the system; every \
                 public item there must carry a doc comment so the request/ \
                 outcome vocabulary (ResolveRequest, Degraded, ExecReport...) \
                 stays discoverable. rustc's missing_docs warning already \
                 guards rustdoc-visible items; this pass keeps the invariant \
                 in the same report as the rest and covers macro-generated \
                 gaps rustc misses."
            }
            LintId::D101 => {
                "The semantic refinement of D002: a panic site (unwrap/expect/\
                 panic!/literal index) in library code is only a defect when \
                 the workspace call graph can actually reach it from a public \
                 `Distinct::resolve*`/`train*` entry point — those are the \
                 paths PR 1's graceful-degradation contract protects. The \
                 resolver over-approximates (method calls match by name, \
                 constrained to the caller's normal-dependency closure), so a \
                 D101 finding means `no proof of unreachability`, and every \
                 finding names one concrete call chain from the entry point. \
                 Fix: return a typed error along that chain, or prove the \
                 invariant in an allow(D101) reason."
            }
            LintId::D102 => {
                "Definitions 2–3 of the paper require set-resemblance and \
                 walk probabilities to stay inside [0,1]; downstream, \
                 crates/cluster compares them against thresholds, so an \
                 out-of-range or NaN value silently corrupts clustering \
                 decisions. A function whose name or doc comment marks it as \
                 probability-valued, whose body does range-risky arithmetic \
                 (+, *, /, exp, powf, sum) with no in-body sanitizer \
                 (clamp / debug_assert! / min+max pair), and which the \
                 clustering engine transitively calls, is flagged at its \
                 definition. Fix: debug_assert! the range (cheap, checked in \
                 the overflow CI profile) or clamp at the boundary."
            }
            LintId::D103 => {
                "The 16-way sharded ProfileCache and the exec pool's channels \
                 mix locks with message passing; a cycle in the lock-\
                 acquisition order, or a lock held across a blocking \
                 `.send(...)`, is a deadlock that only manifests under \
                 contention. The pass extracts per-function lock acquisitions \
                 (`.lock()`/`.read()`/`.write()` with empty argument lists), \
                 propagates held-lock sets through calls (a `let`-bound guard \
                 is assumed held to end of function — an over-approximation), \
                 and flags ordering cycles and held-across-send sites. Fix: \
                 keep lock scopes single-statement (as ProfileCache does), \
                 impose one global acquisition order, or drop guards before \
                 sending."
            }
            LintId::D104 => {
                "The semantic refinement of D005: a loop only starves \
                 cancellation if some call path from a public resolve*/train* \
                 entry point reaches it without ever passing a budget charge \
                 (a guard parameter, or a guard/shared_guard/charge/status \
                 call). Leaf helpers whose every caller charges per item are \
                 proven safe by the graph instead of needing a syntactic \
                 allow. A finding names the charge-free chain. Fix: charge \
                 the budget somewhere on that chain, or allow(D104) with the \
                 proof if the path is infeasible."
            }
            LintId::D105 => {
                "Durable runs promise that a crash at any write leaves either \
                 the old artifact or the new one, never a torn half — the \
                 resume chaos sweep (tests/resume_chaos.rs) kills a run at \
                 every write index and relies on it. That only holds if every \
                 checkpoint/snapshot byte flows through \
                 relstore::write_atomic (write `.tmp`, then rename), which \
                 also routes I/O through the fault-injectable Vfs seam. A \
                 direct `std::fs::write`, `File::create`, or \
                 `OpenOptions::new` in library code outside the persistence \
                 modules escapes both. Fix: take a `&mut dyn Vfs` and call \
                 write_atomic, or allow(D105) with a reason for genuinely \
                 non-durable output (e.g. the lint baseline itself)."
            }
            LintId::D106 => {
                "PR 8's hand-maintained rule, formalized: a `Mutex`/`RwLock` \
                 guard (including the sharded ProfileCache and the NameCache \
                 in crates/core) must never be live across an exec pool \
                 boundary — a `par_map_guarded`/`par_map_indexed`/`par_chunks` \
                 submit, a channel `send`/`recv`, or a call that transitively \
                 reaches one. The pool's workers rendezvous on channels; a \
                 guard held by the submitting thread while they run turns any \
                 worker that needs the same lock into a deadlock that only \
                 manifests under contention, and blocks the ordered commit. \
                 The pass runs a forward may-liveness dataflow over each \
                 function's statement CFG (guard born at the `.lock()`/\
                 `.read()`/`.write()` call, killed by `drop(guard)` or scope \
                 exit) and flags the first live statement that hits a pool \
                 boundary, naming the guard binding, the blocking call, and \
                 the call chain. Fix: make the lock scope self-contained \
                 before the boundary (take the value out, as \
                 `take_name_entry` does), or `drop(guard)` first. The dynamic \
                 twin of this rule is the `name_cache_guard_is_never_held_\
                 across_the_pool_boundary` regression test in \
                 crates/core/src/update.rs."
            }
            LintId::D107 => {
                "The semantic refinement of D001 (which it retires under \
                 --semantic): bit-identical output at any thread count dies \
                 the moment a value derived from an unordered source — \
                 HashMap/HashSet iteration with no sort or ordered-commit \
                 sink, a thread-count read (`auto_threads`, \
                 `available_parallelism`, `.threads()`), or chunk-arrival \
                 order (`recv()` results) — flows into f64 accumulation, an \
                 ExecReport counter, a checkpoint write, or a clustering \
                 input. Float addition is not associative and counters must \
                 not depend on scheduling, so any such flow makes the result \
                 depend on hash history or the machine's core count. The \
                 pass seeds taint at the unordered sources, propagates it \
                 through `let` bindings along the statement CFG (a `sort`/\
                 `sort_unstable` on the binding kills the taint — that is \
                 the ordered-commit sink), and flags tainted values reaching \
                 an accumulation, counter, persist, or clustering sink. Fix: \
                 sort before consuming, route results through the exec \
                 pool's ordered commit, or show the merge is commutative \
                 (integer counters, max/min) in an allow(D107) reason."
            }
            LintId::D108 => {
                "Every interior-mutability cell (`Mutex`, `RwLock`, \
                 `Atomic*`, `Cell`/`RefCell`) that the resolve/train/\
                 apply_updates spines can reach is a place where concurrent \
                 writers could destroy determinism, so each one must carry a \
                 `// distinct-lint: shared(<merge-discipline>)` declaration \
                 on its field or static, naming its ordered-commit or \
                 commutative-merge story (e.g. `shared(first-insert-wins: \
                 profiles are bit-identical, so racing inserts commute)`). \
                 The registry is exported by `distinct-lint facts --emit \
                 json` and cross-checked by tests/determinism_facts.rs \
                 against the 1/2/8-thread determinism suite, so the static \
                 declaration and the dynamic evidence gate each other. An \
                 undeclared cell cannot be baselined (like D000): the whole \
                 point is that the discipline is written down where the cell \
                 lives. Fix: add the shared(...) declaration with a real \
                 merge story, or remove the interior mutability."
            }
            LintId::D110 => {
                "The similarity and update hot paths charge a work budget per \
                 kernel unit precisely because they run millions of \
                 iterations at paper scale (127K authors, 1.29M references); \
                 a fresh heap allocation inside such a charge-guarded loop — \
                 a `Vec::new`/`vec![]` that grows by push, `format!`, \
                 `String::new` + push_str, `.collect()`, `.to_vec()`, or \
                 `.to_string()` — multiplies allocator traffic by the \
                 iteration count and turns the planned serving layer's \
                 per-request cost into sustained QPS loss. The pass flags \
                 allocation sites inside loops of budget-charging functions \
                 unless the buffer was created with `with_capacity` before \
                 the loop or is a hoisted buffer `.clear()`ed per iteration. \
                 Fix: hoist the buffer out of the loop and clear it per \
                 iteration, size it once with `with_capacity`, or justify a \
                 genuinely per-item allocation in an allow(D110) reason."
            }
            LintId::D111 => {
                "A `.clone()` exists to hand out an owned copy that will be \
                 mutated, moved, or outlive the source; when dataflow over \
                 the function's CFG shows the clone's binding is only ever \
                 *read* on every path — no reassignment, no `&mut` borrow, \
                 no in-place mutator call, no move into a struct, return, or \
                 call that takes it by value — the copy is pure allocator \
                 churn and a borrow of the original would have type-checked. \
                 On profile and neighbor-set values (weighted sets run to \
                 thousands of entries) such copies dominate resolve-time \
                 allocation. Fix: borrow the original (`&x`), or, when the \
                 clone feeds an API that genuinely needs ownership the pass \
                 cannot see, say so in an allow(D111) reason."
            }
            LintId::D112 => {
                "The ROADMAP names arenas-rebuilt-per-call as the remaining \
                 hot-path debt: every reusable arena, cache, pool, or \
                 scratch buffer constructed on the resolve/apply_updates \
                 spine must carry a `// distinct-lint: scratch(<reuse-\
                 discipline>)` declaration on its construction or field, \
                 naming how the structure is reused across calls and why \
                 reuse preserves bit-identical output (e.g. `scratch(pooled \
                 per-worker: rebuilt in place with identical inputs, so \
                 interning order is unchanged)`). The registry is exported \
                 by `distinct-lint facts --emit json`, and an undeclared \
                 scratch structure cannot be baselined (like D000/D108): \
                 the reuse story must be written down where the structure \
                 lives, or deliberately rejected there. Fix: add the \
                 scratch(...) declaration with a real reuse discipline — or \
                 make the structure actually reusable first."
            }
            LintId::D113 => {
                "A long-lived engine serving incremental updates must not \
                 grow without bound: a collection field reachable from the \
                 update/resolve spine that gains entries on some path \
                 (`push`/`insert`/`extend`/`append`) while *no* path in the \
                 workspace ever clears, evicts, truncates, drains, or \
                 removes from it is a memory leak with a QPS fuse — the \
                 profile cache and name cache only stay bounded because \
                 eviction is wired into the update path. The pass collects \
                 growth sites on `self.<field>` in spine-reachable library \
                 code and flags fields with growth but no shrink site \
                 anywhere in non-test code. Fix: wire eviction/clearing into \
                 the maintenance path, or document why growth is bounded by \
                 the input catalog in an allow(D113) reason."
            }
            LintId::D109 => {
                "crates/exec's determinism story is: workers compute into \
                 thread-local buffers, send `(chunk_lo, result)` down a \
                 channel, and the submitting thread commits the buffered \
                 results in ascending chunk order. A chunk closure (an \
                 argument to `spawn`, `par_map_guarded`, `par_map_indexed`, \
                 or `par_chunks`) that instead mutates captured state \
                 directly — `push`/`insert`/`extend`/indexed assignment/`+=` \
                 on a binding it did not declare — commits in scheduling \
                 order, which varies with thread count and timing. Atomic \
                 ops (`store`/`fetch_add`/`compare_exchange`) and channel \
                 `send`s are the sanctioned escape hatches (commutative or \
                 ordered by the committing side). Fix: accumulate into a \
                 closure-local value and send it, or declare the cell's \
                 commutative-merge story via shared(...) and an allow(D109) \
                 reason."
            }
        }
    }
}

impl fmt::Display for LintId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Which lint fired.
    pub id: LintId,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// What was seen (short, single line).
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {}:{}: {} — {}",
            self.id,
            self.file,
            self.line,
            self.id.title(),
            self.message
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        for id in LintId::ALL {
            assert_eq!(LintId::parse(id.name()), Some(id));
            assert_eq!(LintId::parse(&id.name().to_lowercase()), Some(id));
        }
        assert_eq!(LintId::parse("D999"), None);
        assert_eq!(LintId::parse(""), None);
    }

    #[test]
    fn every_lint_has_title_and_rationale() {
        for id in LintId::ALL {
            assert!(!id.title().is_empty());
            assert!(id.rationale().len() > 80, "{id} rationale too thin");
        }
    }
}

//! Compact linkage graph over a finalized catalog.
//!
//! Probability propagation visits foreign-key neighborhoods millions of
//! times; hash lookups in the catalog's indexes would dominate. The
//! [`LinkGraph`] flattens every tuple into a dense `u32` node id and stores
//! each foreign-key edge's adjacency in CSR (compressed sparse row) form,
//! one forward table and one backward table per edge, so a traversal step
//! is a slice lookup.

use relstore::{Catalog, Direction, FkId, JoinStep, RelId, TupleId, TupleRef};

/// Dense node id: a tuple's position in the flattened catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as an index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// CSR adjacency: `targets[offsets[i]..offsets[i+1]]` are node `i`'s
/// neighbors, where `i` is the tuple id *within the edge's source relation*.
#[derive(Debug, Clone, Default)]
struct Csr {
    offsets: Vec<u32>,
    targets: Vec<NodeId>,
}

impl Csr {
    fn neighbors(&self, local: usize) -> &[NodeId] {
        let lo = self.offsets[local] as usize;
        let hi = self.offsets[local + 1] as usize;
        &self.targets[lo..hi]
    }
}

/// Flattened, immutable linkage graph for fast join-path traversal.
#[derive(Debug, Clone)]
pub struct LinkGraph {
    /// Offset of each relation's tuples in the global node id space; one
    /// extra entry holds the total node count.
    base: Vec<u32>,
    /// Per FK edge: forward adjacency (source relation local id -> 0/1 target).
    forward: Vec<Csr>,
    /// Per FK edge: backward adjacency (target relation local id -> referrers).
    backward: Vec<Csr>,
}

impl LinkGraph {
    /// Build the graph from a finalized catalog.
    ///
    /// # Panics
    /// Panics if the catalog is not finalized (edges would be stale).
    pub fn build(catalog: &Catalog) -> Self {
        assert!(
            catalog.is_finalized(),
            "LinkGraph::build requires a finalized catalog"
        );
        let mut base = Vec::with_capacity(catalog.relation_count() + 1);
        let mut total = 0u32;
        for (_, rel) in catalog.relations() {
            base.push(total);
            total += rel.len() as u32;
        }
        base.push(total);

        let global = |t: TupleRef| NodeId(base[t.rel.index()] + t.tid.0);

        let mut forward = Vec::with_capacity(catalog.fk_edges().len());
        let mut backward = Vec::with_capacity(catalog.fk_edges().len());
        for edge in catalog.fk_edges() {
            // Forward: each tuple of `from` points to <= 1 tuple of `to`.
            let from_rel = catalog.relation(edge.from);
            let mut f = Csr {
                offsets: Vec::with_capacity(from_rel.len() + 1),
                targets: Vec::new(),
            };
            f.offsets.push(0);
            for (tid, _) in from_rel.iter() {
                if let Some(t) = catalog.follow_forward(edge.id, TupleRef::new(edge.from, tid)) {
                    f.targets.push(global(t));
                }
                f.offsets.push(f.targets.len() as u32);
            }
            // Backward: each tuple of `to` points to all referrers in `from`.
            let to_rel = catalog.relation(edge.to);
            let mut b = Csr {
                offsets: Vec::with_capacity(to_rel.len() + 1),
                targets: Vec::new(),
            };
            b.offsets.push(0);
            for (tid, _) in to_rel.iter() {
                for t in catalog.follow_backward(edge.id, TupleRef::new(edge.to, tid)) {
                    b.targets.push(global(t));
                }
                b.offsets.push(b.targets.len() as u32);
            }
            forward.push(f);
            backward.push(b);
        }
        LinkGraph {
            base,
            forward,
            backward,
        }
    }

    /// Total number of nodes (tuples across all relations).
    pub fn node_count(&self) -> usize {
        *self.base.last().unwrap_or(&0) as usize
    }

    /// Map a tuple to its dense node id.
    #[inline]
    pub fn node(&self, t: TupleRef) -> NodeId {
        NodeId(self.base[t.rel.index()] + t.tid.0)
    }

    /// Map a node id back to its tuple.
    pub fn tuple(&self, n: NodeId) -> TupleRef {
        // base is sorted; partition_point finds the relation.
        let rel = self.base.partition_point(|&b| b <= n.0) - 1;
        TupleRef::new(RelId(rel as u32), TupleId(n.0 - self.base[rel]))
    }

    /// Local (within-relation) index of a node, given its relation.
    #[inline]
    fn local(&self, n: NodeId, rel: RelId) -> usize {
        (n.0 - self.base[rel.index()]) as usize
    }

    /// Neighbors of `n` along one join step. `src_rel` must be the step's
    /// source relation (i.e. the relation `n` belongs to).
    #[inline]
    pub fn step_neighbors(&self, step: JoinStep, n: NodeId, src_rel: RelId) -> &[NodeId] {
        let local = self.local(n, src_rel);
        match step.dir {
            Direction::Forward => self.forward[step.fk.index()].neighbors(local),
            Direction::Backward => self.backward[step.fk.index()].neighbors(local),
        }
    }

    /// Fanout of `n` along one join step.
    #[inline]
    pub fn step_fanout(&self, step: JoinStep, n: NodeId, src_rel: RelId) -> usize {
        self.step_neighbors(step, n, src_rel).len()
    }

    /// Memory the adjacency tables occupy, in bytes (diagnostics).
    pub fn adjacency_bytes(&self) -> usize {
        let csr = |c: &Csr| c.offsets.len() * 4 + c.targets.len() * 4;
        self.forward.iter().map(csr).sum::<usize>() + self.backward.iter().map(csr).sum::<usize>()
    }

    /// Check that an edge id is valid for this graph.
    pub fn edge_count(&self) -> usize {
        self.forward.len()
    }

    /// Does this graph know the given FK edge?
    pub fn has_edge(&self, fk: FkId) -> bool {
        fk.index() < self.forward.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relstore::{AttrType, SchemaBuilder, Value};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_relation(
            SchemaBuilder::new("Authors")
                .key("a", AttrType::Str)
                .build()
                .unwrap(),
        )
        .unwrap();
        c.add_relation(
            SchemaBuilder::new("Papers")
                .key("p", AttrType::Int)
                .build()
                .unwrap(),
        )
        .unwrap();
        c.add_relation(
            SchemaBuilder::new("Publish")
                .fk("a", AttrType::Str, "Authors")
                .fk("p", AttrType::Int, "Papers")
                .build()
                .unwrap(),
        )
        .unwrap();
        for a in ["x", "y"] {
            c.insert("Authors", [Value::str(a)].into()).unwrap();
        }
        for p in 1..=3 {
            c.insert("Papers", [Value::Int(p)].into()).unwrap();
        }
        c.insert("Publish", [Value::str("x"), Value::Int(1)].into())
            .unwrap();
        c.insert("Publish", [Value::str("y"), Value::Int(1)].into())
            .unwrap();
        c.insert("Publish", [Value::str("x"), Value::Int(2)].into())
            .unwrap();
        c.insert("Publish", [Value::str("x"), Value::Int(3)].into())
            .unwrap();
        c.finalize(true).unwrap();
        c
    }

    #[test]
    #[should_panic(expected = "finalized")]
    fn unfinalized_catalog_panics() {
        let mut c = catalog();
        c.insert("Papers", [Value::Int(9)].into()).unwrap();
        let _ = LinkGraph::build(&c);
    }

    #[test]
    fn node_ids_round_trip() {
        let c = catalog();
        let g = LinkGraph::build(&c);
        assert_eq!(g.node_count(), 2 + 3 + 4);
        for (rid, rel) in c.relations() {
            for (tid, _) in rel.iter() {
                let t = TupleRef::new(rid, tid);
                assert_eq!(g.tuple(g.node(t)), t);
            }
        }
    }

    #[test]
    fn adjacency_matches_catalog() {
        let c = catalog();
        let g = LinkGraph::build(&c);
        let publish = c.relation_id("Publish").unwrap();
        let papers = c.relation_id("Papers").unwrap();
        let fk_p = c
            .fk_edges()
            .iter()
            .find(|e| e.label == "Publish.p->Papers")
            .unwrap()
            .id;

        // Forward from each publish tuple: 1 paper.
        for (tid, _) in c.relation(publish).iter() {
            let t = TupleRef::new(publish, tid);
            let expected: Vec<NodeId> = c
                .follow_forward(fk_p, t)
                .into_iter()
                .map(|x| g.node(x))
                .collect();
            let got = g.step_neighbors(JoinStep::forward(fk_p), g.node(t), publish);
            assert_eq!(got, expected.as_slice());
        }
        // Backward from paper 1: two publish records.
        let p1 = TupleRef::new(papers, c.relation(papers).by_key(&Value::Int(1)).unwrap());
        let back = g.step_neighbors(JoinStep::backward(fk_p), g.node(p1), papers);
        assert_eq!(back.len(), 2);
        assert_eq!(
            g.step_fanout(JoinStep::backward(fk_p), g.node(p1), papers),
            2
        );
        // Paper 3 has one record, paper key space is dense.
        let p3 = TupleRef::new(papers, c.relation(papers).by_key(&Value::Int(3)).unwrap());
        assert_eq!(
            g.step_fanout(JoinStep::backward(fk_p), g.node(p3), papers),
            1
        );
    }

    #[test]
    fn edge_bookkeeping() {
        let c = catalog();
        let g = LinkGraph::build(&c);
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_edge(FkId(0)));
        assert!(g.has_edge(FkId(1)));
        assert!(!g.has_edge(FkId(2)));
        assert!(g.adjacency_bytes() > 0);
    }
}

//! Shared experiment plumbing: the standard synthetic world, per-name
//! evaluation, threshold sweeps, and the paper's reference numbers.

use datagen::{to_catalog, DblpDataset, World, WorldConfig};
use distinct::{Distinct, Variant};
use eval::{PairCounts, PrfScores};

/// Seed of the standard experiment world (all experiments share it so
/// tables are mutually consistent).
pub const STANDARD_SEED: u64 = 2007;

/// The standard experiment world: default scale plus the ten ambiguous
/// names of Table 1.
pub fn standard_world_config(seed: u64) -> WorldConfig {
    WorldConfig {
        seed,
        ambiguous: WorldConfig::table1_ambiguous(),
        ..Default::default()
    }
}

/// Generate the standard dataset.
pub fn build_dataset(seed: u64) -> DblpDataset {
    to_catalog(&World::generate(standard_world_config(seed))).expect("standard world is valid")
}

/// Evaluation of one name at one threshold.
#[derive(Debug, Clone)]
pub struct NameResult {
    /// The ambiguous name.
    pub name: String,
    /// True number of entities.
    pub entities: usize,
    /// Number of references.
    pub refs: usize,
    /// Predicted number of clusters.
    pub clusters: usize,
    /// Pairwise precision / recall / f-measure.
    pub scores: PrfScores,
    /// Pairwise accuracy.
    pub accuracy: f64,
    /// Predicted labels (for reports).
    pub labels: Vec<usize>,
}

/// Resolve one name and score it against ground truth.
pub fn evaluate_name(
    engine: &Distinct,
    truth: &datagen::NameGroundTruth,
    min_sim: f64,
) -> NameResult {
    let clustering = engine
        .resolve(&distinct::ResolveRequest::new(&truth.refs).min_sim(min_sim))
        .clustering;
    let counts = PairCounts::from_labels(&truth.labels, &clustering.labels);
    NameResult {
        name: truth.name.clone(),
        entities: truth.entity_count(),
        refs: truth.refs.len(),
        clusters: clustering.cluster_count(),
        scores: counts.scores(),
        accuracy: counts.accuracy(),
        labels: clustering.labels,
    }
}

/// Mean f-measure over results.
pub fn mean_f(results: &[NameResult]) -> f64 {
    results.iter().map(|r| r.scores.f_measure).sum::<f64>() / results.len().max(1) as f64
}

/// Mean pairwise accuracy over results.
pub fn mean_accuracy(results: &[NameResult]) -> f64 {
    results.iter().map(|r| r.accuracy).sum::<f64>() / results.len().max(1) as f64
}

/// Sweep `min-sim` over the grid and return `(best_min_sim, results)`
/// maximizing mean accuracy (the paper's per-baseline protocol); ties
/// break toward the higher f-measure.
pub fn sweep_best_min_sim(
    engine: &Distinct,
    truths: &[datagen::NameGroundTruth],
    grid: &[f64],
) -> (f64, Vec<NameResult>) {
    let mut best: Option<(f64, f64, f64, Vec<NameResult>)> = None;
    for &min_sim in grid {
        let results: Vec<NameResult> = truths
            .iter()
            .map(|t| evaluate_name(engine, t, min_sim))
            .collect();
        let acc = mean_accuracy(&results);
        let f = mean_f(&results);
        let better = match &best {
            None => true,
            Some((_, ba, bf, _)) => acc > *ba + 1e-12 || (acc > *ba - 1e-12 && f > *bf),
        };
        if better {
            best = Some((min_sim, acc, f, results));
        }
    }
    let (min_sim, _, _, results) = best.expect("non-empty grid");
    (min_sim, results)
}

/// Build and (if the variant is supervised) train an engine for a Fig. 4
/// variant.
pub fn variant_engine(
    dataset: &DblpDataset,
    variant: Variant,
    base: &distinct::DistinctConfig,
) -> Distinct {
    let config = variant.config(base);
    let mut engine = Distinct::prepare(&dataset.catalog, "Publish", "author", config)
        .expect("standard dataset prepares");
    if variant.supervised() {
        engine.train().expect("standard dataset trains");
    }
    engine
}

/// One row of the paper's Table 2 (reference values).
#[derive(Debug, Clone, Copy)]
pub struct PaperRow {
    /// Ambiguous name.
    pub name: &'static str,
    /// Precision reported by the paper.
    pub precision: f64,
    /// Recall reported by the paper.
    pub recall: f64,
    /// F-measure reported by the paper.
    pub f_measure: f64,
}

/// Table 2 of the paper.
///
/// The source text of the table is partially garbled; rows marked in
/// EXPERIMENTS.md as *reconstructed* are best-effort values consistent
/// with the paper's stated anchors: average recall 83.6%, zero false
/// positives for 7 of 10 names, and the Michael Wagner split example.
pub const PAPER_TABLE2: &[PaperRow] = &[
    PaperRow {
        name: "Hui Fang",
        precision: 1.0,
        recall: 1.0,
        f_measure: 1.0,
    },
    PaperRow {
        name: "Ajay Gupta",
        precision: 1.0,
        recall: 1.0,
        f_measure: 1.0,
    },
    PaperRow {
        name: "Joseph Hellerstein",
        precision: 1.0,
        recall: 0.810,
        f_measure: 0.895,
    },
    PaperRow {
        name: "Rakesh Kumar",
        precision: 1.0,
        recall: 1.0,
        f_measure: 1.0,
    },
    PaperRow {
        name: "Michael Wagner",
        precision: 1.0,
        recall: 0.395,
        f_measure: 0.566,
    },
    PaperRow {
        name: "Bing Liu",
        precision: 1.0,
        recall: 0.825,
        f_measure: 0.904,
    },
    PaperRow {
        name: "Jim Smith",
        precision: 0.888,
        recall: 0.926,
        f_measure: 0.906,
    },
    PaperRow {
        name: "Lei Wang",
        precision: 0.920,
        recall: 0.818,
        f_measure: 0.866,
    },
    PaperRow {
        name: "Wei Wang",
        precision: 0.855,
        recall: 0.782,
        f_measure: 0.817,
    },
    PaperRow {
        name: "Bin Yu",
        precision: 1.0,
        recall: 0.658,
        f_measure: 0.794,
    },
];

/// Fig. 4 of the paper: `(variant label, accuracy, f-measure)` reference
/// series, read off the figure (bar heights are approximate).
pub const PAPER_FIG4: &[(&str, f64, f64)] = &[
    ("DISTINCT", 0.97, 0.87),
    ("Unsupervised combined measure", 0.95, 0.76),
    ("Supervised set resemblance", 0.96, 0.84),
    ("Supervised random walk", 0.96, 0.83),
    ("Unsupervised set resemblance", 0.94, 0.72),
    ("Unsupervised random walk", 0.94, 0.71),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_table2_matches_stated_anchors() {
        // Average recall 83.6% (paper §5).
        let avg_recall: f64 =
            PAPER_TABLE2.iter().map(|r| r.recall).sum::<f64>() / PAPER_TABLE2.len() as f64;
        assert!(
            (avg_recall - 0.836).abs() < 0.015,
            "avg recall {avg_recall}"
        );
        // Zero false positives (precision 1.0) for exactly 7 of 10 names.
        let perfect = PAPER_TABLE2.iter().filter(|r| r.precision == 1.0).count();
        assert_eq!(perfect, 7);
        // F-measures are the harmonic means of their rows.
        for r in PAPER_TABLE2 {
            let f = 2.0 * r.precision * r.recall / (r.precision + r.recall);
            assert!(
                (f - r.f_measure).abs() < 0.01,
                "{}: {f} vs {}",
                r.name,
                r.f_measure
            );
        }
    }

    #[test]
    fn paper_fig4_ordering_matches_claims() {
        let f = |label: &str| {
            PAPER_FIG4
                .iter()
                .find(|(l, _, _)| *l == label)
                .expect("label")
                .2
        };
        let distinct = f("DISTINCT");
        // DISTINCT leads the unsupervised single-measure baselines by ~15%.
        assert!(distinct - f("Unsupervised set resemblance") >= 0.10);
        assert!(distinct - f("Unsupervised random walk") >= 0.10);
        // Supervision gains >10%.
        assert!(f("Supervised set resemblance") - f("Unsupervised set resemblance") >= 0.10);
        // Combined measure gains ~3% over single supervised measures.
        assert!(distinct - f("Supervised set resemblance") >= 0.02);
    }

    #[test]
    fn standard_world_is_buildable() {
        // A smaller seed-varied sanity check would regenerate the full
        // world; just validate the config here (the binaries build it).
        standard_world_config(STANDARD_SEED).validate().unwrap();
        let specs = &standard_world_config(STANDARD_SEED).ambiguous;
        assert_eq!(specs.len(), 10);
    }

    #[test]
    fn sweep_picks_accuracy_maximum() {
        // Degenerate smoke test on a tiny world (full pipeline tested in
        // integration tests).
        let mut config = WorldConfig::tiny(3);
        config.ambiguous = vec![datagen::AmbiguousSpec::new("Wei Wang", vec![4, 3])];
        let d = to_catalog(&World::generate(config)).unwrap();
        let engine = Distinct::prepare(
            &d.catalog,
            "Publish",
            "author",
            distinct::DistinctConfig::default(),
        )
        .unwrap();
        let (best, results) = sweep_best_min_sim(&engine, &d.truths, &[1e-4, 1e-2, 1.0]);
        assert!([1e-4, 1e-2, 1.0].contains(&best));
        assert_eq!(results.len(), 1);
    }
}

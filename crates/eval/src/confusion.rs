//! Cluster-vs-gold confusion analysis, used by the Fig. 5 style report:
//! which predicted clusters map to which real entities, and where are the
//! splits and merges?

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The contingency table between a gold clustering and a prediction.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Confusion {
    /// `counts[(gold, pred)]` = number of items with that label pair.
    counts: BTreeMap<(usize, usize), usize>,
    gold_sizes: BTreeMap<usize, usize>,
    pred_sizes: BTreeMap<usize, usize>,
}

impl Confusion {
    /// Build from parallel label vectors.
    ///
    /// # Panics
    /// Panics if the vectors differ in length.
    pub fn from_labels(gold: &[usize], pred: &[usize]) -> Self {
        assert_eq!(gold.len(), pred.len(), "label vectors must be parallel");
        let mut c = Confusion::default();
        for (&g, &p) in gold.iter().zip(pred) {
            *c.counts.entry((g, p)).or_insert(0) += 1;
            *c.gold_sizes.entry(g).or_insert(0) += 1;
            *c.pred_sizes.entry(p).or_insert(0) += 1;
        }
        c
    }

    /// Number of items with gold label `g` and predicted label `p`.
    pub fn count(&self, g: usize, p: usize) -> usize {
        self.counts.get(&(g, p)).copied().unwrap_or(0)
    }

    /// Size of gold cluster `g`.
    pub fn gold_size(&self, g: usize) -> usize {
        self.gold_sizes.get(&g).copied().unwrap_or(0)
    }

    /// Size of predicted cluster `p`.
    pub fn pred_size(&self, p: usize) -> usize {
        self.pred_sizes.get(&p).copied().unwrap_or(0)
    }

    /// Gold labels present.
    pub fn gold_labels(&self) -> Vec<usize> {
        self.gold_sizes.keys().copied().collect()
    }

    /// Predicted labels present.
    pub fn pred_labels(&self) -> Vec<usize> {
        self.pred_sizes.keys().copied().collect()
    }

    /// Gold clusters split across more than one predicted cluster, with
    /// the list of `(pred label, count)` fragments, largest first.
    pub fn splits(&self) -> Vec<(usize, Vec<(usize, usize)>)> {
        let mut out = Vec::new();
        for &g in self.gold_sizes.keys() {
            let mut frags: Vec<(usize, usize)> = self
                .counts
                .iter()
                .filter(|((gg, _), _)| *gg == g)
                .map(|((_, p), &n)| (*p, n))
                .collect();
            if frags.len() > 1 {
                frags.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
                out.push((g, frags));
            }
        }
        out
    }

    /// Predicted clusters containing more than one gold entity, with the
    /// list of `(gold label, count)` constituents, largest first.
    pub fn merges(&self) -> Vec<(usize, Vec<(usize, usize)>)> {
        let mut out = Vec::new();
        for &p in self.pred_sizes.keys() {
            let mut parts: Vec<(usize, usize)> = self
                .counts
                .iter()
                .filter(|((_, pp), _)| *pp == p)
                .map(|((g, _), &n)| (*g, n))
                .collect();
            if parts.len() > 1 {
                parts.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
                out.push((p, parts));
            }
        }
        out
    }

    /// Purity: fraction of items whose predicted cluster's majority gold
    /// label matches their own.
    pub fn purity(&self) -> f64 {
        let total: usize = self.gold_sizes.values().sum();
        if total == 0 {
            return 1.0;
        }
        let mut majority_sum = 0usize;
        for &p in self.pred_sizes.keys() {
            let best = self
                .counts
                .iter()
                .filter(|((_, pp), _)| *pp == p)
                .map(|(_, &n)| n)
                .max()
                .unwrap_or(0);
            majority_sum += best;
        }
        majority_sum as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_sizes() {
        let c = Confusion::from_labels(&[0, 0, 1, 1, 1], &[0, 1, 1, 1, 1]);
        assert_eq!(c.count(0, 0), 1);
        assert_eq!(c.count(0, 1), 1);
        assert_eq!(c.count(1, 1), 3);
        assert_eq!(c.gold_size(0), 2);
        assert_eq!(c.gold_size(1), 3);
        assert_eq!(c.pred_size(1), 4);
        assert_eq!(c.gold_labels(), vec![0, 1]);
        assert_eq!(c.pred_labels(), vec![0, 1]);
    }

    #[test]
    fn splits_detected() {
        // Gold 0 split across pred 0 (2 items) and pred 1 (1 item).
        let c = Confusion::from_labels(&[0, 0, 0, 1], &[0, 0, 1, 2]);
        let splits = c.splits();
        assert_eq!(splits.len(), 1);
        assert_eq!(splits[0].0, 0);
        assert_eq!(splits[0].1, vec![(0, 2), (1, 1)]);
    }

    #[test]
    fn merges_detected() {
        // Pred 0 contains gold 0 (2) and gold 1 (1).
        let c = Confusion::from_labels(&[0, 0, 1, 1], &[0, 0, 0, 1]);
        let merges = c.merges();
        assert_eq!(merges.len(), 1);
        assert_eq!(merges[0].0, 0);
        assert_eq!(merges[0].1, vec![(0, 2), (1, 1)]);
    }

    #[test]
    fn perfect_prediction_has_no_splits_or_merges() {
        let gold = vec![0, 0, 1, 2, 2];
        let c = Confusion::from_labels(&gold, &gold);
        assert!(c.splits().is_empty());
        assert!(c.merges().is_empty());
        assert_eq!(c.purity(), 1.0);
    }

    #[test]
    fn purity_hand_computed() {
        // pred 0 = {g0, g0, g1} majority 2; pred 1 = {g1} majority 1 => 3/4.
        let c = Confusion::from_labels(&[0, 0, 1, 1], &[0, 0, 0, 1]);
        assert!((c.purity() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_input() {
        let c = Confusion::from_labels(&[], &[]);
        assert_eq!(c.purity(), 1.0);
        assert!(c.splits().is_empty());
        assert!(c.merges().is_empty());
    }
}

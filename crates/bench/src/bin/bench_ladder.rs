//! Experiment S2 — the recovery-aware benchmark ladder.
//!
//! Three rungs of increasing scale, each resolving the paper's hardest
//! name ("Wei Wang", 141 references / 14 entities) through the durable
//! run manager and then measuring crash recovery: the run is killed at
//! its final checkpoint write and resumed cold, so the rung reports both
//! the uninterrupted cost and how much of it a resume actually pays.
//!
//! * `laptop` — the standard evaluation world (2K authors), seconds.
//! * `mid`    — 4× the standard world (8K authors), tens of seconds.
//! * `paper`  — [`WorldConfig::paper_scale`]: the DBLP snapshot profile
//!   (127K authors, ~1.29M references), generated via the streaming
//!   emitter so the catalog is built without a resident `World`.
//!
//! Each rung writes `benchmarks/BENCH_<scenario>.json`; the checked-in
//! files are the reference points for the CI bench-smoke job.
//!
//! Run: `cargo run --release -p distinct-bench --bin bench_ladder -- \
//!       [laptop|mid|paper|all]` (default: `laptop mid` — the paper rung
//! is minutes of single-core work and is opted into explicitly).

use datagen::{stream_to_catalog, DblpDataset, WorldConfig};
use distinct::{Distinct, DistinctConfig, ResolveRequest, RunOptions};
use distinct_bench::{AllocSnapshot, BenchError, StageContext};
use relstore::{FaultPlan, FaultyVfs, StdVfs};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Stage context for this binary.
const BIN: &str = "bench_ladder";

/// The name every rung resolves: the largest Table 1 group.
const NAME: &str = "Wei Wang";

struct Rung {
    scenario: &'static str,
    config: WorldConfig,
}

fn rungs(which: &str) -> Vec<Rung> {
    let laptop = Rung {
        scenario: "laptop",
        config: WorldConfig {
            seed: 7,
            ambiguous: WorldConfig::table1_ambiguous(),
            ..Default::default()
        },
    };
    let mid = Rung {
        scenario: "mid",
        config: WorldConfig {
            seed: 7,
            n_authors: 8_000,
            n_venues: 160,
            n_communities: 64,
            first_name_pool: 1_600,
            last_name_pool: 3_600,
            ambiguous: WorldConfig::table1_ambiguous(),
            ..Default::default()
        },
    };
    let paper = Rung {
        scenario: "paper",
        config: WorldConfig::paper_scale(2007),
    };
    match which {
        "laptop" => vec![laptop],
        "mid" => vec![mid],
        "paper" => vec![paper],
        "all" => vec![laptop, mid, paper],
        "default" => vec![laptop, mid],
        other => {
            eprintln!("unknown rung `{other}` (want laptop|mid|paper|all)");
            std::process::exit(2);
        }
    }
}

fn out_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../benchmarks")
}

fn ms(d: std::time::Duration) -> u64 {
    d.as_millis() as u64
}

/// Stage timers are emitted with fractional precision: `as_millis`
/// truncation rounded every sub-millisecond stage (clustering on the
/// laptop rung, similarity once pruning landed) down to a flat `0`,
/// hiding real stage-over-stage deltas from the smoke gate.
fn ms_frac(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn run_rung(r: &Rung) -> Result<(), BenchError> {
    eprintln!(
        "[{}] generating world ({} authors)...",
        r.scenario, r.config.n_authors
    );
    let a0 = AllocSnapshot::now();
    let t0 = Instant::now();
    let dataset: DblpDataset =
        stream_to_catalog(&r.config).stage(BIN, "generate the streamed world")?;
    let generate_ms = ms(t0.elapsed());
    let generate_alloc = a0.delta();
    let papers = dataset
        .catalog
        .relation(
            dataset
                .catalog
                .relation_id("Publications")
                .stage(BIN, "locate the Publications relation")?,
        )
        .len();
    let references = dataset.catalog.relation(dataset.publish).len();
    eprintln!(
        "[{}] {papers} papers / {references} references in {generate_ms} ms; preparing engine...",
        r.scenario
    );

    let a1 = AllocSnapshot::now();
    let t1 = Instant::now();
    let engine = Distinct::prepare(
        &dataset.catalog,
        "Publish",
        "author",
        DistinctConfig::default(),
    )
    .stage(BIN, "prepare the engine")?;
    let prepare_ms = ms(t1.elapsed());
    let prepare_alloc = a1.delta();

    let refs = engine.references_of(NAME);
    let opts = RunOptions {
        chunk_size: 64,
        ..Default::default()
    };

    // Cold durable run through a counting Vfs: the uninterrupted cost and
    // the length of the write schedule (the sweep space for recovery).
    let run_dir = std::env::temp_dir().join(format!(
        "distinct_bench_{}_{}",
        r.scenario,
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&run_dir);
    let req = ResolveRequest::new(&refs).resume(&run_dir);
    let mut counting = FaultyVfs::new(FaultPlan::new(0));
    let a2 = AllocSnapshot::now();
    let t2 = Instant::now();
    let cold = engine
        .resolve_durable_with(&req, &mut counting, &opts)
        .stage(BIN, "run the cold durable resolve")?;
    let cold_ms = ms(t2.elapsed());
    let resolve_alloc = a2.delta();
    let total_writes = counting.writes_attempted();
    assert!(cold.outcome.is_complete(), "cold run degraded");

    // Recovery: a fresh run killed at its final write (the clustering
    // checkpoint), then resumed cold. The resume restores profiles and
    // similarity from disk and recomputes only the clustering stage.
    let _ = std::fs::remove_dir_all(&run_dir);
    let fatal = RunOptions {
        max_retries: 0,
        ..opts.clone()
    };
    let mut killer = FaultyVfs::new(FaultPlan::fail_nth_write(total_writes));
    engine
        .resolve_durable_with(&req, &mut killer, &fatal)
        .expect_err("the injected crash must surface");
    let t3 = Instant::now();
    let resumed = engine
        .resolve_durable_with(&req, &mut StdVfs, &opts)
        .stage(BIN, "resume the killed run")?;
    let resume_ms = ms(t3.elapsed());
    let _ = std::fs::remove_dir_all(&run_dir);
    assert_eq!(
        resumed.outcome.clustering.labels, cold.outcome.clustering.labels,
        "resume diverged from the uninterrupted run"
    );

    let exec = &cold.outcome.exec;
    let json = format!(
        "{{\n  \"scenario\": \"{}\",\n  \"format\": 1,\n  \"resolved_name\": \"{NAME}\",\n  \
         \"weights\": \"uniform\",\n  \"world\": {{\n    \"authors\": {},\n    \"papers\": {papers},\n    \
         \"references\": {references},\n    \"name_references\": {}\n  }},\n  \
         \"threads\": {},\n  \"generate_ms\": {generate_ms},\n  \"prepare_ms\": {prepare_ms},\n  \
         \"wall_ms\": {cold_ms},\n  \"logical\": {},\n  \"peak_rss_bytes\": {},\n  \
         \"pairs_total\": {},\n  \"pairs_pruned\": {},\n  \"pairs_exact\": {},\n  \"pairs_cached\": {},\n  \
         \"stages\": {{\n    \"profiles_ms\": {:.3},\n    \"similarity_ms\": {:.3},\n    \"clustering_ms\": {:.3}\n  }},\n  \
         \"alloc\": {{\n    \"metered\": {},\n    \
         \"generate\": {{ \"allocs\": {}, \"bytes_alloc\": {} }},\n    \
         \"prepare\": {{ \"allocs\": {}, \"bytes_alloc\": {} }},\n    \
         \"resolve\": {{ \"allocs\": {}, \"bytes_alloc\": {} }}\n  }},\n  \
         \"recovery\": {{\n    \"total_writes\": {total_writes},\n    \"killed_at_write\": {total_writes},\n    \
         \"chunks_committed\": {},\n    \"profiles_restored\": {},\n    \"similarity_restored\": {},\n    \
         \"resume_ms\": {resume_ms},\n    \"resume_fraction\": {:.4}\n  }}\n}}\n",
        r.scenario,
        r.config.n_authors,
        refs.len(),
        exec.max_threads(),
        exec.total_logical(),
        exec.peak_rss_bytes,
        exec.pairs_total,
        exec.pairs_pruned,
        exec.pairs_exact,
        exec.pairs_cached,
        ms_frac(exec.profiles.wall),
        ms_frac(exec.similarity.wall),
        ms_frac(exec.clustering.wall),
        distinct_bench::metering_enabled(),
        generate_alloc.allocs,
        generate_alloc.bytes_alloc,
        prepare_alloc.allocs,
        prepare_alloc.bytes_alloc,
        resolve_alloc.allocs,
        resolve_alloc.bytes_alloc,
        cold.run.chunks_committed,
        resumed.run.profiles_restored,
        resumed.run.similarity_restored,
        resume_ms as f64 / cold_ms.max(1) as f64,
    );

    let dir = out_dir();
    std::fs::create_dir_all(&dir).stage(BIN, "create the benchmarks/ directory")?;
    let path = dir.join(format!("BENCH_{}.json", r.scenario));
    std::fs::write(&path, &json).stage(BIN, "write the rung JSON")?;
    eprintln!(
        "[{}] cold {cold_ms} ms, resume {resume_ms} ms ({:.1}% of cold) -> {}",
        r.scenario,
        100.0 * resume_ms as f64 / cold_ms.max(1) as f64,
        path.display()
    );
    Ok(())
}

fn main() -> Result<(), BenchError> {
    let which = std::env::args().nth(1).unwrap_or_else(|| "default".into());
    for rung in rungs(&which) {
        run_rung(&rung)?;
    }
    Ok(())
}

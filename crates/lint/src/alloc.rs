//! Allocation & copy-discipline dataflow passes (D110–D113) plus the
//! scratch-structure registry exported by `distinct-lint facts`.
//!
//! These run on the same substrate as the D106–D109 passes — statement
//! CFGs ([`crate::cfg`]), the forward framework ([`crate::dataflow`]'s
//! join semantics, applied here as whole-body universal-use scans whose
//! verdicts hold on every CFG path by construction), and the workspace
//! call graph — but reason about the *memory* discipline of the resolve
//! and update hot paths rather than their ordering discipline:
//!
//! - **D110 hot-loop allocation** — inside a loop of a charge-guarded
//!   function (one that charges the budget or carries a guard parameter),
//!   a fresh heap buffer per iteration (`collect`/`to_vec`/`to_owned`/
//!   `to_string`, a `format!`/`vec!` macro, or a `Vec::new()`-born
//!   growth-by-push buffer) is churn the budget already paid to avoid.
//!   Kills: `with_capacity` at the allocation site, or a hoisted buffer
//!   that is `.clear()`ed instead of rebuilt.
//! - **D111 read-only clone** — a `let x = place.clone()` whose binding
//!   is only ever *read* afterwards (borrowed, compared, or handed to a
//!   non-mutating method on every CFG path) should be a borrow. Any
//!   write, move, or mutating call on any path justifies the clone, so
//!   the pass never fires on a clone that earns its keep.
//! - **D112 scratch registry** — à la D108: every reusable arena/cache/
//!   pool/scratch structure *constructed* in a function reachable from
//!   the resolve/train/apply_updates spine must carry a
//!   `// distinct-lint: scratch(<reuse-discipline>)` declaration naming
//!   how the structure is reused across calls and why reuse preserves
//!   bit-identical output. Findings are unbaselineable
//!   ([`crate::fix_baseline_mode`] refuses them) and the registry is
//!   exported by `distinct-lint facts --emit json`.
//! - **D113 unbounded growth** — a `self.<field>` collection grown
//!   (`push`/`insert`/`extend`/...) on the spine while *no* library code
//!   path ever clears, evicts, drains, or replaces that field is a slow
//!   leak the planned serving layer would turn into sustained memory
//!   growth. One shrink site anywhere in library code discharges the
//!   field.

use crate::callgraph::CallGraph;
use crate::catalog::{Finding, LintId};
use crate::cfg::Cfg;
use crate::concur::{bound_vars, receiver_chain, site, spine_roots, MUTATORS};
use crate::lexer::TokKind;
use crate::model::{FileCtx, FnSpan};
use crate::parse::is_keyword;
use crate::suppress;
use std::collections::{BTreeMap, BTreeSet};

/// Methods that hand back a freshly allocated buffer on every call.
const ALLOC_METHODS: [&str; 4] = ["collect", "to_vec", "to_owned", "to_string"];

/// Growing mutators for D110/D113 (the subset of [`MUTATORS`] that adds
/// elements rather than removing them).
const GROWERS: [&str; 5] = ["push", "insert", "extend", "append", "push_str"];

/// Methods that shrink, drain, or recycle a collection — any one of
/// these on a field anywhere in library code discharges D113.
const SHRINKERS: [&str; 10] = [
    "clear",
    "remove",
    "swap_remove",
    "truncate",
    "drain",
    "pop",
    "retain",
    "take",
    "replace",
    "remove_entry",
];

/// Run every allocation pass. Called from [`crate::callgraph::run_semantic`].
pub fn run(graph: &CallGraph, ctxs: &[FileCtx]) -> Vec<Finding> {
    let by_path: BTreeMap<&str, &FileCtx> = ctxs.iter().map(|c| (c.path.as_str(), c)).collect();
    let mut out = Vec::new();
    out.extend(d110_hot_loop_alloc(graph, &by_path));
    out.extend(d111_read_only_clone(graph, &by_path));
    out.extend(d112_scratch_registry(graph, ctxs));
    out.extend(d113_unbounded_growth(graph, &by_path));
    out
}

// ------------------------------------------------------------ D110 --

/// Token ranges `(open+1, close)` of every loop body in the function.
/// Nested loops each contribute their own range; membership tests treat
/// the union as "inside some loop".
fn loop_bodies(ctx: &FileCtx, span: &FnSpan) -> Vec<(usize, usize)> {
    let hi = span.end.min(ctx.toks.len());
    let mut out = Vec::new();
    let mut k = span.body_start;
    while k < hi {
        let t = &ctx.toks[k];
        let header = t.kind == TokKind::Ident
            && (t.is_ident("for") || t.is_ident("while") || {
                t.is_ident("loop") && {
                    let nx = ctx.next_code(k);
                    nx < hi && ctx.toks[nx].is_punct('{')
                }
            });
        if header {
            // The body `{` sits at bracket depth 0 relative to the header.
            let mut depth = 0i32;
            let mut j = ctx.next_code(k);
            let mut open = None;
            while j < hi {
                let u = &ctx.toks[j];
                if u.is_punct('(') || u.is_punct('[') {
                    depth += 1;
                } else if u.is_punct(')') || u.is_punct(']') {
                    depth -= 1;
                } else if depth == 0 && u.is_punct('{') {
                    open = Some(j);
                    break;
                } else if depth == 0 && u.is_punct(';') {
                    break;
                }
                j = ctx.next_code(j);
            }
            if let Some(open) = open {
                out.push((open + 1, crate::cfg::match_brace_from(ctx, open, hi)));
            }
        }
        k += 1;
    }
    out
}

fn d110_hot_loop_alloc(graph: &CallGraph, by_path: &BTreeMap<&str, &FileCtx>) -> Vec<Finding> {
    let ws = &graph.ws;
    let mut out = Vec::new();
    for (i, f) in ws.fns.iter().enumerate() {
        if f.is_test || !(f.facts.charges || f.has_guard_param) {
            continue;
        }
        let Some((ctx, span)) = site(by_path, f) else {
            continue;
        };
        if !ctx.is_library() {
            continue;
        }
        let loops = loop_bodies(ctx, span);
        if loops.is_empty() {
            continue;
        }
        let in_loop = |idx: usize| loops.iter().any(|&(lo, hi)| lo <= idx && idx < hi);
        let cfg = Cfg::build(ctx, span);
        let stmt_has = |idx: usize, what: &str| {
            cfg.stmt_of(idx)
                .map(|s| {
                    ctx.toks[cfg.stmts[s].lo..cfg.stmts[s].hi.min(ctx.toks.len())]
                        .iter()
                        .any(|t| t.is_ident(what))
                })
                .unwrap_or(false)
        };
        // A `return`/`break` statement runs at most once per function
        // call, so an allocation inside one is never per-iteration churn
        // (typically an error-path message being built on the way out).
        let cold_exit = |idx: usize| {
            cfg.stmt_of(idx)
                .and_then(|s| {
                    let lo = cfg.stmts[s].lo;
                    let hi = cfg.stmts[s].hi.min(ctx.toks.len());
                    ctx.toks[lo..hi]
                        .iter()
                        .find(|t| !matches!(t.kind, TokKind::Comment | TokKind::DocComment))
                        .map(|t| t.is_ident("return") || t.is_ident("break"))
                })
                .unwrap_or(false)
        };
        // (a) Fresh-buffer method calls inside a loop body.
        for c in &f.facts.calls {
            if c.is_method
                && ALLOC_METHODS.contains(&c.name.as_str())
                && in_loop(c.idx)
                && !stmt_has(c.idx, "with_capacity")
                && !cold_exit(c.idx)
            {
                out.push(Finding {
                    id: LintId::D110,
                    file: f.file.clone(),
                    line: c.line,
                    message: format!(
                        "`.{}()` allocates a fresh buffer on every iteration of a \
                         charge-guarded loop in `{}`; hoist the buffer and `.clear()` it, \
                         or size it once with `with_capacity`",
                        c.name,
                        ws.qual(i)
                    ),
                });
            }
        }
        // (b) Allocating macros inside a loop body.
        let hi = span.end.min(ctx.toks.len());
        for k in span.body_start..hi {
            let t = &ctx.toks[k];
            if t.kind == TokKind::Ident
                && (t.text == "format" || t.text == "vec")
                && in_loop(k)
                && !cold_exit(k)
                && {
                    let nx = ctx.next_code(k);
                    nx < hi && ctx.toks[nx].is_punct('!')
                }
            {
                out.push(Finding {
                    id: LintId::D110,
                    file: f.file.clone(),
                    line: t.line,
                    message: format!(
                        "`{}!` allocates on every iteration of a charge-guarded loop in \
                         `{}`; build the buffer once outside the loop and reuse it",
                        t.text,
                        ws.qual(i)
                    ),
                });
            }
        }
        // (c) Growth-by-push: a `Vec::new()`/`String::new()` binding grown
        // inside a loop with no capacity hint and no hoisted `.clear()`.
        for c in &f.facts.calls {
            if c.is_method || c.name != "new" {
                continue;
            }
            if !matches!(
                c.path.last().map(String::as_str),
                Some("Vec") | Some("String")
            ) {
                continue;
            }
            let Some(s) = cfg.stmt_of(c.idx) else {
                continue;
            };
            let st = (cfg.stmts[s].lo, cfg.stmts[s].hi, cfg.stmts[s].line);
            let vars = bound_vars(ctx, st.0, st.1);
            let [var] = vars.as_slice() else {
                continue;
            };
            let on_binding = |idx: usize| {
                let glo = cfg
                    .stmt_of(idx)
                    .map(|gs| cfg.stmts[gs].lo)
                    .unwrap_or(span.body_start);
                let chain = receiver_chain(ctx, idx, glo);
                chain.len() == 1 && chain.first() == Some(var)
            };
            let cleared = f
                .facts
                .calls
                .iter()
                .any(|g| g.is_method && g.name == "clear" && on_binding(g.idx));
            if cleared {
                continue; // hoisted-buffer discipline
            }
            let grown = f.facts.calls.iter().any(|g| {
                g.is_method
                    && GROWERS.contains(&g.name.as_str())
                    && g.idx > c.idx
                    && in_loop(g.idx)
                    && on_binding(g.idx)
            });
            if grown {
                out.push(Finding {
                    id: LintId::D110,
                    file: f.file.clone(),
                    line: st.2,
                    message: format!(
                        "`{var}` starts at `{}::new()` but grows by push inside a \
                         charge-guarded loop in `{}`; pre-size it with `with_capacity` \
                         or hoist and `.clear()` it",
                        c.path.last().map(String::as_str).unwrap_or("Vec"),
                        ws.qual(i)
                    ),
                });
            }
        }
    }
    out.sort_by(|a, b| (&a.file, a.line, &a.message).cmp(&(&b.file, b.line, &b.message)));
    out.dedup_by(|a, b| a.file == b.file && a.line == b.line && a.message == b.message);
    out
}

// ------------------------------------------------------------ D111 --

fn d111_read_only_clone(graph: &CallGraph, by_path: &BTreeMap<&str, &FileCtx>) -> Vec<Finding> {
    let ws = &graph.ws;
    let mut out = Vec::new();
    for (i, f) in ws.fns.iter().enumerate() {
        if f.is_test {
            continue;
        }
        let Some((ctx, span)) = site(by_path, f) else {
            continue;
        };
        if !ctx.is_library() {
            continue;
        }
        let cfg = Cfg::build(ctx, span);
        let hi = span.end.min(ctx.toks.len());
        for c in &f.facts.calls {
            if !c.is_method || c.name != "clone" {
                continue;
            }
            let Some(s) = cfg.stmt_of(c.idx) else {
                continue;
            };
            let st = &cfg.stmts[s];
            // Only `let x = place.clone();` — one immutable binding.
            let mut k = st.lo;
            while k < st.hi && matches!(ctx.toks[k].kind, TokKind::Comment | TokKind::DocComment) {
                k += 1;
            }
            if k >= st.hi || !ctx.toks[k].is_ident("let") {
                continue;
            }
            let after = ctx.next_code(k);
            if after < st.hi && ctx.toks[after].is_ident("mut") {
                continue;
            }
            let vars = bound_vars(ctx, st.lo, st.hi);
            let [var] = vars.as_slice() else {
                continue;
            };
            // The clone must be the statement's own value — `let x =
            // place.clone();` with the `;` right after the call. A clone
            // nested inside another call's arguments or a closure body
            // (`map(|v| v.f.clone()).collect()`) is not this binding.
            let open = ctx.next_code(c.idx);
            if open >= hi || !ctx.toks[open].is_punct('(') {
                continue;
            }
            let close = crate::concur::match_paren(ctx, open, hi);
            let after = ctx.next_code(close);
            if after >= hi || !ctx.toks[after].is_punct(';') {
                continue;
            }
            let Some(place) = place_receiver(ctx, c.idx, st.lo) else {
                continue; // receiver is a temporary; a borrow cannot name it
            };
            let mut any_use = false;
            let mut all_reads = true;
            for j in st.hi..hi {
                let t = &ctx.toks[j];
                if t.kind != TokKind::Ident || t.text != *var {
                    continue;
                }
                // `foo.var` is a field of something else, not this binding.
                if ctx
                    .prev_code(j)
                    .map(|p| ctx.toks[p].is_punct('.'))
                    .unwrap_or(false)
                {
                    continue;
                }
                any_use = true;
                if !use_is_read(ctx, j, hi) {
                    all_reads = false;
                    break;
                }
            }
            if any_use && all_reads {
                out.push(Finding {
                    id: LintId::D111,
                    file: f.file.clone(),
                    line: st.line,
                    message: format!(
                        "`{var}` is only ever read after `let {var} = {place}.clone()` in \
                         `{}`; borrow `{place}` instead of cloning it",
                        ws.qual(i)
                    ),
                });
            }
        }
    }
    out
}

/// Whether the use of the binding at token `k` is a pure read. Only
/// explicitly recognized read shapes count; anything ambiguous (a move,
/// an assignment, indexing that might be a store) justifies the clone.
fn use_is_read(ctx: &FileCtx, k: usize, hi: usize) -> bool {
    if let Some(p) = ctx.prev_code(k) {
        // `&mut var` and `let mut var` shadows are writes.
        if ctx.toks[p].is_ident("mut") {
            return false;
        }
        if ctx.toks[p].is_punct('&') {
            return true; // shared borrow
        }
    }
    let nx = ctx.next_code(k);
    if nx >= hi {
        return false; // trailing expression: the value is moved out
    }
    let n = &ctx.toks[nx];
    if n.is_punct('.') {
        let m = ctx.next_code(nx);
        if m < hi && ctx.toks[m].kind == TokKind::Ident {
            let name = ctx.toks[m].text.as_str();
            let mutating = MUTATORS.contains(&name)
                || name.starts_with("sort")
                || name.starts_with("into_")
                || name.ends_with("_mut")
                || matches!(
                    name,
                    "drain" | "take" | "pop" | "retain" | "dedup" | "split_off" | "reserve"
                );
            return !mutating;
        }
        return false;
    }
    // Comparisons read; `var = ...` writes; `var ==` reads.
    if n.is_punct('=') {
        return nx + 1 < hi && ctx.toks[nx + 1].is_punct('=');
    }
    if n.is_punct('<') || n.is_punct('>') {
        return true;
    }
    if n.is_punct('!') {
        return nx + 1 < hi && ctx.toks[nx + 1].is_punct('=');
    }
    false
}

/// The dotted place expression receiving `.clone()` at `idx`, rendered
/// for the message — `None` when the receiver crosses a call group (a
/// temporary no borrow could name).
fn place_receiver(ctx: &FileCtx, idx: usize, lo: usize) -> Option<String> {
    let j = ctx.prev_code(idx)?;
    if !ctx.toks[j].is_punct('.') {
        return None;
    }
    let mut names: Vec<String> = Vec::new();
    let mut j = j;
    while let Some(p) = ctx.prev_code(j) {
        if p < lo {
            break;
        }
        let t = &ctx.toks[p];
        if t.is_punct(')') {
            return None; // method-call receiver: a temporary
        }
        if t.is_punct(']') {
            // Step over the index group — indexing still names a place.
            let mut depth = 0i32;
            let mut q = p;
            loop {
                let u = &ctx.toks[q];
                if u.is_punct(']') {
                    depth += 1;
                } else if u.is_punct('[') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if q == 0 {
                    break;
                }
                q -= 1;
            }
            if q <= lo {
                break;
            }
            j = q;
            continue;
        }
        if t.kind == TokKind::Ident && (!is_keyword(&t.text) || t.is_ident("self")) {
            names.push(t.text.clone());
            match ctx.prev_code(p) {
                Some(pp) if pp >= lo && ctx.toks[pp].is_punct('.') => {
                    j = pp;
                    continue;
                }
                _ => break,
            }
        }
        break;
    }
    if names.is_empty() {
        None
    } else {
        names.reverse();
        Some(names.join("."))
    }
}

// ------------------------------------------------------------ D112 --

/// One scratch-structure construction site discovered in library code.
#[derive(Debug, Clone)]
pub struct ScratchSite {
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line of the construction call.
    pub line: u32,
    /// The scratch type (`SetArena`, `ArenaPool`, ...).
    pub owner: String,
    /// The associated function constructing it (`new`, `build`, ...).
    pub ctor: String,
    /// Qualified function containing the construction.
    pub func: String,
    /// The `scratch(...)` reuse discipline, if declared.
    pub discipline: Option<String>,
    /// Whether the constructing function is reachable from the
    /// resolve/train/apply_updates spine.
    pub reachable: bool,
}

/// Type names that read as reusable scratch structures: arenas, pools,
/// caches, sweepers, and anything self-describing as scratch.
fn is_scratch_type(s: &str) -> bool {
    s.contains("Arena")
        || s.contains("Sweeper")
        || s.contains("Scratch")
        || s.ends_with("Pool")
        || s.ends_with("Cache")
}

/// All `scratch(...)` declarations in the file as `(line, discipline)`.
fn scratch_decls(ctx: &FileCtx) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    for t in &ctx.toks {
        if t.kind != TokKind::Comment {
            continue;
        }
        let Some(pos) = t.text.find("distinct-lint:") else {
            continue;
        };
        let body = t.text[pos + "distinct-lint:".len()..].trim();
        if !body.starts_with("scratch") {
            continue;
        }
        if let Ok(d) = suppress::parse_scratch(body) {
            out.push((t.line, d));
        }
    }
    out
}

/// Scan library functions for scratch-structure constructions, pair them
/// with `scratch(...)` declarations, and mark spine reachability.
pub fn collect_scratch(graph: &CallGraph, ctxs: &[FileCtx]) -> Vec<ScratchSite> {
    let by_path: BTreeMap<&str, &FileCtx> = ctxs.iter().map(|c| (c.path.as_str(), c)).collect();
    let ws = &graph.ws;
    let parent = graph.reach(&spine_roots(graph), |_| true);
    let mut sites = Vec::new();
    for (i, f) in ws.fns.iter().enumerate() {
        if f.is_test {
            continue;
        }
        let Some((ctx, _span)) = site(&by_path, f) else {
            continue;
        };
        if !ctx.is_library() {
            continue;
        }
        let decls = scratch_decls(ctx);
        for c in &f.facts.calls {
            let Some(ty) = c.path.last() else { continue };
            if !is_scratch_type(ty) {
                continue;
            }
            let discipline = decls
                .iter()
                .find(|(dl, _)| *dl == c.line || *dl + 1 == c.line)
                .map(|(_, d)| d.clone());
            sites.push(ScratchSite {
                file: f.file.clone(),
                line: c.line,
                owner: ty.clone(),
                ctor: c.name.clone(),
                func: ws.qual(i),
                discipline,
                reachable: parent[i].is_some(),
            });
        }
    }
    sites.sort_by(|a, b| (&a.file, a.line, &a.owner).cmp(&(&b.file, b.line, &b.owner)));
    sites.dedup_by(|a, b| {
        a.file == b.file && a.line == b.line && a.owner == b.owner && a.ctor == b.ctor
    });
    sites
}

fn d112_scratch_registry(graph: &CallGraph, ctxs: &[FileCtx]) -> Vec<Finding> {
    let sites = collect_scratch(graph, ctxs);
    let mut out = Vec::new();
    for s in &sites {
        if s.reachable && s.discipline.is_none() {
            out.push(Finding {
                id: LintId::D112,
                file: s.file.clone(),
                line: s.line,
                message: format!(
                    "scratch structure `{}::{}(...)` constructed in `{}` on the \
                     resolve/update spine has no `// distinct-lint: \
                     scratch(<reuse-discipline>)` declaration",
                    s.owner, s.ctor, s.func
                ),
            });
        }
    }
    // Hygiene: a scratch(...) declaration adjacent to no construction is
    // as dead as an unused allow().
    for ctx in ctxs {
        if !ctx.is_library() {
            continue;
        }
        for (dl, _) in scratch_decls(ctx) {
            let covers = sites
                .iter()
                .any(|s| s.file == ctx.path && (s.line == dl || s.line == dl + 1));
            if !covers {
                out.push(Finding {
                    id: LintId::D000,
                    file: ctx.path.clone(),
                    line: dl,
                    message: "scratch(...) declaration matches no scratch-structure \
                              construction on this or the next line"
                        .into(),
                });
            }
        }
    }
    out
}

// ------------------------------------------------------------ D113 --

/// Capitalized identifiers appearing in each struct's field list,
/// per struct name — the "may hold a value of this type" relation used
/// to close over engine-held state. Generic parameters and std wrappers
/// ride along harmlessly: they only matter if a workspace struct shares
/// the name.
fn struct_field_types(by_path: &BTreeMap<&str, &FileCtx>) -> BTreeMap<String, BTreeSet<String>> {
    let mut out: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for ctx in by_path.values() {
        if !ctx.is_library() {
            continue;
        }
        let n = ctx.toks.len();
        for k in 0..n {
            if !ctx.toks[k].is_ident("struct") {
                continue;
            }
            let name_idx = ctx.next_code(k);
            if name_idx >= n || ctx.toks[name_idx].kind != TokKind::Ident {
                continue;
            }
            let name = ctx.toks[name_idx].text.clone();
            // Field list: the first `{...}` or `(...)` group before a
            // `;` (a unit struct has neither).
            let mut j = ctx.next_code(name_idx);
            let mut open = None;
            while j < n {
                let t = &ctx.toks[j];
                if t.is_punct('{') || t.is_punct('(') {
                    open = Some((j, if t.is_punct('{') { '}' } else { ')' }));
                    break;
                }
                if t.is_punct(';') {
                    break;
                }
                j = ctx.next_code(j);
            }
            let Some((open, close_ch)) = open else {
                continue;
            };
            let close = if close_ch == '}' {
                crate::cfg::match_brace_from(ctx, open, n)
            } else {
                crate::concur::match_paren(ctx, open, n)
            };
            let entry = out.entry(name).or_default();
            for t in &ctx.toks[open..close.min(n)] {
                if t.kind == TokKind::Ident && t.text.chars().next().is_some_and(char::is_uppercase)
                {
                    entry.insert(t.text.clone());
                }
            }
        }
    }
    out
}

/// Types the engine holds, transitively: the `impl` types of the spine
/// root functions, closed over the struct-field relation. A collection
/// inside one of these lives as long as the engine; a collection in a
/// per-call builder dies with its call and cannot leak.
fn held_types(graph: &CallGraph, by_path: &BTreeMap<&str, &FileCtx>) -> BTreeSet<String> {
    let fields = struct_field_types(by_path);
    let mut held: BTreeSet<String> = BTreeSet::new();
    let mut queue: Vec<String> = Vec::new();
    for &r in &spine_roots(graph) {
        if let Some(t) = &graph.ws.fns[r].impl_type {
            if held.insert(t.clone()) {
                queue.push(t.clone());
            }
        }
    }
    while let Some(t) = queue.pop() {
        let Some(inner) = fields.get(&t) else {
            continue;
        };
        for ty in inner {
            if fields.contains_key(ty) && held.insert(ty.clone()) {
                queue.push(ty.clone());
            }
        }
    }
    held
}

fn d113_unbounded_growth(graph: &CallGraph, by_path: &BTreeMap<&str, &FileCtx>) -> Vec<Finding> {
    let ws = &graph.ws;
    let parent = graph.reach(&spine_roots(graph), |_| true);
    let held = held_types(graph, by_path);
    // Pass 1: field names that some non-test code path shrinks, drains,
    // evicts, or replaces — anywhere in the workspace.
    let mut shrunk: BTreeSet<String> = BTreeSet::new();
    for f in ws.fns.iter() {
        if f.is_test {
            continue;
        }
        let Some((ctx, span)) = site(by_path, f) else {
            continue;
        };
        for c in &f.facts.calls {
            if c.is_method && (SHRINKERS.contains(&c.name.as_str()) || c.name.starts_with("evict"))
            {
                for r in receiver_chain(ctx, c.idx, span.body_start) {
                    shrunk.insert(r);
                }
            }
            // `mem::take(&mut self.field)` and friends: every identifier
            // in the argument list counts as replaced.
            if !c.is_method && matches!(c.name.as_str(), "take" | "replace" | "swap") {
                let open = ctx.next_code(c.idx);
                if open < ctx.toks.len() && ctx.toks[open].is_punct('(') {
                    let close = crate::concur::match_paren(ctx, open, span.end.min(ctx.toks.len()));
                    for t in &ctx.toks[open..close] {
                        if t.kind == TokKind::Ident && !is_keyword(&t.text) {
                            shrunk.insert(t.text.clone());
                        }
                    }
                }
            }
        }
        // Plain reassignment `self.field = ...` replaces the collection.
        let hi = span.end.min(ctx.toks.len());
        let mut k = span.body_start;
        while k < hi {
            if ctx.toks[k].is_ident("self") {
                let d = ctx.next_code(k);
                if d < hi && ctx.toks[d].is_punct('.') {
                    let fld = ctx.next_code(d);
                    if fld < hi && ctx.toks[fld].kind == TokKind::Ident {
                        let eq = ctx.next_code(fld);
                        if eq < hi
                            && ctx.toks[eq].is_punct('=')
                            && !(eq + 1 < hi && ctx.toks[eq + 1].is_punct('='))
                        {
                            shrunk.insert(ctx.toks[fld].text.clone());
                        }
                    }
                }
            }
            k += 1;
        }
    }
    // Pass 2: growth on the spine against the shrink registry.
    let mut seen: BTreeSet<(String, String)> = BTreeSet::new();
    let mut out = Vec::new();
    for (i, f) in ws.fns.iter().enumerate() {
        if f.is_test || parent[i].is_none() {
            continue;
        }
        let Some((ctx, span)) = site(by_path, f) else {
            continue;
        };
        if !ctx.is_library() {
            continue;
        }
        for c in &f.facts.calls {
            if !c.is_method || !GROWERS.contains(&c.name.as_str()) {
                continue;
            }
            let chain = receiver_chain(ctx, c.idx, span.body_start);
            if chain.len() < 2 || chain.last().map(String::as_str) != Some("self") {
                continue;
            }
            let field = &chain[chain.len() - 2];
            if shrunk.contains(field) {
                continue;
            }
            // Only state the engine holds across calls can leak; a
            // per-call builder's collections die with the call.
            let Some(owner) = &f.impl_type else { continue };
            if !held.contains(owner) {
                continue;
            }
            if !seen.insert((owner.clone(), field.clone())) {
                continue;
            }
            out.push(Finding {
                id: LintId::D113,
                file: f.file.clone(),
                line: c.line,
                message: format!(
                    "collection `{owner}.{field}` grows via `.{}()` on the update/resolve \
                     spine but no library code path ever clears, evicts, or replaces it",
                    c.name
                ),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Role;
    use crate::symbols::Workspace;

    fn graph_of(files: &[(&str, &str, &str)]) -> (Vec<FileCtx>, CallGraph) {
        let ctxs: Vec<FileCtx> = files
            .iter()
            .map(|(path, krate, src)| FileCtx::new(path, krate, Role::Library, src))
            .collect();
        let refs: Vec<&FileCtx> = ctxs.iter().collect();
        let dirs: BTreeSet<String> = files.iter().map(|(_, k, _)| k.to_string()).collect();
        let mut closures = BTreeMap::new();
        for d in &dirs {
            closures.insert(d.clone(), dirs.clone());
        }
        let ws = Workspace::build(&refs, BTreeMap::new(), closures);
        (ctxs, CallGraph::build(ws))
    }

    fn run_ids(files: &[(&str, &str, &str)]) -> Vec<(LintId, u32)> {
        let (ctxs, graph) = graph_of(files);
        run(&graph, &ctxs)
            .into_iter()
            .map(|f| (f.id, f.line))
            .collect()
    }

    #[test]
    fn d110_format_macro_in_charged_loop_fires() {
        let found = run_ids(&[(
            "crates/core/src/a.rs",
            "core",
            "pub fn resolve_all(ctl: &C, items: &[u32]) {\n\
             ctl.charge(1);\n\
             for i in items {\n\
             let label = format!(\"n{i}\");\n\
             use_it(&label);\n\
             }\n\
             }\n\
             fn use_it(_s: &str) {}\n",
        )]);
        assert!(
            found
                .iter()
                .any(|&(id, line)| id == LintId::D110 && line == 4),
            "{found:?}"
        );
    }

    #[test]
    fn d110_collect_in_charged_loop_fires_but_uncharged_fn_is_clean() {
        let src = "pub fn resolve_all(ctl: &C, items: &[Vec<u32>]) {\n\
             ctl.charge(1);\n\
             for v in items {\n\
             let doubled: Vec<u32> = v.iter().map(|x| x * 2).collect();\n\
             use_it(&doubled);\n\
             }\n\
             }\n\
             pub fn cold(items: &[Vec<u32>]) {\n\
             for v in items {\n\
             let doubled: Vec<u32> = v.iter().map(|x| x * 2).collect();\n\
             use_it(&doubled);\n\
             }\n\
             }\n\
             fn use_it(_v: &[u32]) {}\n";
        let found = run_ids(&[("crates/core/src/a.rs", "core", src)]);
        assert!(
            found
                .iter()
                .any(|&(id, line)| id == LintId::D110 && line == 4),
            "{found:?}"
        );
        assert!(
            !found
                .iter()
                .any(|&(id, line)| id == LintId::D110 && line == 10),
            "{found:?}"
        );
    }

    #[test]
    fn d110_growth_by_push_fires_and_with_capacity_kills() {
        let src = "pub fn resolve_all(ctl: &C, items: &[u32]) {\n\
             ctl.charge(1);\n\
             let mut out = Vec::new();\n\
             let mut sized = Vec::with_capacity(items.len());\n\
             for i in items {\n\
             out.push(*i);\n\
             sized.push(*i);\n\
             }\n\
             use_it(&out, &sized);\n\
             }\n\
             fn use_it(_a: &[u32], _b: &[u32]) {}\n";
        let found = run_ids(&[("crates/core/src/a.rs", "core", src)]);
        assert!(
            found
                .iter()
                .any(|&(id, line)| id == LintId::D110 && line == 3),
            "{found:?}"
        );
        assert!(
            !found
                .iter()
                .any(|&(id, line)| id == LintId::D110 && line == 4),
            "{found:?}"
        );
    }

    #[test]
    fn d110_hoisted_cleared_buffer_is_clean() {
        let src = "pub fn resolve_all(ctl: &C, items: &[u32]) {\n\
             ctl.charge(1);\n\
             let mut buf = Vec::new();\n\
             for i in items {\n\
             buf.clear();\n\
             buf.push(*i);\n\
             use_it(&buf);\n\
             }\n\
             }\n\
             fn use_it(_v: &[u32]) {}\n";
        let found = run_ids(&[("crates/core/src/a.rs", "core", src)]);
        assert!(
            !found.iter().any(|&(id, _)| id == LintId::D110),
            "{found:?}"
        );
    }

    #[test]
    fn d111_read_only_clone_fires() {
        let src = "pub fn resolve_all(m: &M) -> usize {\n\
             let names = m.names.clone();\n\
             let mut n = 0;\n\
             for v in &names {\n\
             n += score(v);\n\
             }\n\
             n\n\
             }\n\
             fn score(_v: &u32) -> usize { 1 }\n";
        let found = run_ids(&[("crates/core/src/a.rs", "core", src)]);
        assert!(
            found
                .iter()
                .any(|&(id, line)| id == LintId::D111 && line == 2),
            "{found:?}"
        );
    }

    #[test]
    fn d110_allocation_in_return_statement_is_cold() {
        let src = "pub fn resolve_all(ctl: &C, items: &[u32]) -> Result<u32, String> {\n\
             ctl.charge(1);\n\
             for i in items {\n\
             if *i > 9 {\n\
             return Err(format!(\"bad {i}\"));\n\
             }\n\
             }\n\
             Ok(0)\n\
             }\n";
        let found = run_ids(&[("crates/core/src/a.rs", "core", src)]);
        assert!(
            !found.iter().any(|&(id, _)| id == LintId::D110),
            "{found:?}"
        );
    }

    #[test]
    fn d111_clone_nested_in_call_args_is_not_the_binding() {
        // The binding's value is the `collect()`, not the closure's clone —
        // borrowing the receiver would not remove the per-item clones.
        let src = "pub fn resolve_all(items: &[M]) -> usize {\n\
             let names: Vec<String> = items.iter().map(|v| v.name.clone()).collect();\n\
             names.len()\n\
             }\n";
        let found = run_ids(&[("crates/core/src/a.rs", "core", src)]);
        assert!(
            !found.iter().any(|&(id, _)| id == LintId::D111),
            "{found:?}"
        );
    }

    #[test]
    fn d111_mutated_or_moved_clone_is_clean() {
        let src = "pub fn resolve_all(m: &M) -> Vec<u32> {\n\
             let mut grown = m.names.clone();\n\
             grown.push(1);\n\
             let moved = m.names.clone();\n\
             consume(moved);\n\
             grown\n\
             }\n\
             fn consume(_v: Vec<u32>) {}\n";
        let found = run_ids(&[("crates/core/src/a.rs", "core", src)]);
        assert!(
            !found.iter().any(|&(id, _)| id == LintId::D111),
            "{found:?}"
        );
    }

    #[test]
    fn d112_undeclared_spine_scratch_fires_and_declared_is_clean() {
        let src = "pub fn resolve_all(sets: &[S]) -> u32 {\n\
             let arena = SetArena::build(sets);\n\
             // distinct-lint: scratch(pooled per worker: rebuilt in place with identical inputs)\n\
             let pool = ArenaPool::new();\n\
             arena.rows() + pool.len()\n\
             }\n";
        let found = run_ids(&[("crates/core/src/a.rs", "core", src)]);
        assert!(
            found
                .iter()
                .any(|&(id, line)| id == LintId::D112 && line == 2),
            "{found:?}"
        );
        assert!(
            !found
                .iter()
                .any(|&(id, line)| id == LintId::D112 && line == 4),
            "{found:?}"
        );
    }

    #[test]
    fn d112_off_spine_construction_is_registered_but_not_flagged() {
        let src = "pub fn setup() -> u32 {\n\
             let arena = SetArena::build(&[]);\n\
             arena.rows()\n\
             }\n";
        let (ctxs, graph) = graph_of(&[("crates/core/src/a.rs", "core", src)]);
        let findings = run(&graph, &ctxs);
        assert!(
            !findings.iter().any(|f| f.id == LintId::D112),
            "{findings:?}"
        );
        let sites = collect_scratch(&graph, &ctxs);
        assert_eq!(sites.len(), 1);
        assert!(!sites[0].reachable);
        assert_eq!(sites[0].owner, "SetArena");
    }

    #[test]
    fn d112_dangling_scratch_declaration_is_d000() {
        let src = "// distinct-lint: scratch(no construction here)\n\
             pub fn resolve_all() -> u32 { 0 }\n";
        let found = run_ids(&[("crates/core/src/a.rs", "core", src)]);
        assert!(
            found
                .iter()
                .any(|&(id, line)| id == LintId::D000 && line == 1),
            "{found:?}"
        );
    }

    #[test]
    fn d113_spine_growth_without_shrink_fires() {
        let src = "impl Engine {\n\
             pub fn resolve_all(&mut self, k: u32) {\n\
             self.log.push(k);\n\
             }\n\
             }\n";
        let found = run_ids(&[("crates/core/src/a.rs", "core", src)]);
        assert!(
            found
                .iter()
                .any(|&(id, line)| id == LintId::D113 && line == 3),
            "{found:?}"
        );
    }

    #[test]
    fn d113_shrink_anywhere_discharges_the_field() {
        let src = "impl Engine {\n\
             pub fn resolve_all(&mut self, k: u32) {\n\
             self.log.push(k);\n\
             }\n\
             pub fn evict(&mut self) {\n\
             self.log.clear();\n\
             }\n\
             }\n";
        let found = run_ids(&[("crates/core/src/a.rs", "core", src)]);
        assert!(
            !found.iter().any(|&(id, _)| id == LintId::D113),
            "{found:?}"
        );
    }

    #[test]
    fn d113_per_call_builder_is_not_engine_state() {
        let src = "pub struct Engine { catalog: Catalog }\n\
             impl Engine {\n\
             pub fn resolve_all(&mut self, k: u32) {\n\
             let mut b = RowBuilder::new();\n\
             b.add(k);\n\
             self.catalog.log(k);\n\
             }\n\
             }\n\
             pub struct Catalog { items: Vec<u32> }\n\
             impl Catalog {\n\
             pub fn log(&mut self, k: u32) {\n\
             self.items.push(k);\n\
             }\n\
             }\n\
             pub struct RowBuilder { rows: Vec<u32> }\n\
             impl RowBuilder {\n\
             pub fn new() -> Self {\n\
             RowBuilder { rows: Vec::new() }\n\
             }\n\
             pub fn add(&mut self, k: u32) {\n\
             self.rows.push(k);\n\
             }\n\
             }\n";
        let found = run_ids(&[("crates/core/src/a.rs", "core", src)]);
        // `Catalog` is held (a field of the spine root's `Engine`), so its
        // growth fires; `RowBuilder` is per-call state, so its growth
        // cannot outlive the resolve and stays clean.
        assert!(
            found
                .iter()
                .any(|&(id, line)| id == LintId::D113 && line == 12),
            "{found:?}"
        );
        assert!(
            !found
                .iter()
                .any(|&(id, line)| id == LintId::D113 && line == 21),
            "{found:?}"
        );
    }

    #[test]
    fn facts_json_renders_scratch_sites() {
        let (ctxs, graph) = graph_of(&[(
            "crates/core/src/a.rs",
            "core",
            "pub fn resolve_all(sets: &[S]) -> u32 {\n\
             // distinct-lint: scratch(rebuilt in place per call)\n\
             let arena = SetArena::build(sets);\n\
             arena.rows()\n\
             }\n",
        )]);
        let facts = crate::concur::collect_facts(&graph, &ctxs);
        let json = crate::concur::facts_json(&facts);
        assert!(json.contains("\"scratch\""), "{json}");
        assert!(json.contains("\"owner\": \"SetArena\""), "{json}");
        assert!(json.contains("rebuilt in place per call"), "{json}");
    }
}

//! Replayable update streams: a base catalog plus a tuple log whose
//! replay grows the base into the full world.
//!
//! Incremental resolution needs worlds that *arrive over time*. An
//! [`UpdateStream`] splits a generated [`World`] at paper granularity: the
//! **base** catalog holds the full prelude (every author, conference, and
//! proceedings — the venue universe is fixed up front, matching how a
//! bibliography's publication records trickle in long after its venues
//! are known) plus the kept papers; the **log** holds the held-out
//! papers as plain `(relation, values)` tuples, each paper's
//! `Publications` row followed by its `Publish` rows, in original paper
//! order. Replaying the whole log over the base yields a catalog with
//! exactly the union's tuples, and [`UpdateStream::truths`] carries the
//! ground truth in the replayed catalog's reference order.
//!
//! Held-out papers are chosen by a deterministic per-paper hash, so the
//! same `(config, holdout, seed)` triple always produces the same split —
//! shrinkable and replayable like everything else in this crate.
//! [`shuffle_log`] reorders a log at paper-block granularity (each
//! `Publications` row travels with its `Publish` rows), preserving the
//! within-batch dependency order that appends require while exercising
//! "tuples arrive in any order" in the convergence oracle.

use crate::config::WorldConfig;
use crate::dblp::{emit_with_proceedings, DblpDataset, NameGroundTruth};
use crate::world::World;
use relstore::{StoreError, TupleId, TupleRef, Value};
use std::collections::HashMap;

/// One logged tuple: relation name plus attribute values in schema order.
pub type LogTuple = (String, Vec<Value>);

/// A base catalog plus the replayable tuple log that grows it into the
/// full world.
#[derive(Debug, Clone)]
pub struct UpdateStream {
    /// The world minus the held-out papers (prelude complete). Its
    /// `truths` cover only the references present in the base.
    pub base: DblpDataset,
    /// Held-out papers as appendable tuples, dependency-ordered: each
    /// paper's `Publications` row, then its `Publish` rows.
    pub log: Vec<LogTuple>,
    /// Ground truth for the catalog *after* the full log is replayed over
    /// the base in log order, refs in that catalog's tuple order.
    pub truths: Vec<NameGroundTruth>,
    /// Number of papers in the log.
    pub held_out_papers: usize,
}

/// splitmix64 finalizer — the crate's standard deterministic hash.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Generate a world and split it into a base dataset plus an update log.
///
/// `holdout` is the approximate fraction of papers withheld into the log
/// (clamped to `[0, 1]`); `seed` drives the per-paper selection hash. At
/// least one paper is always kept in the base (an empty catalog cannot be
/// prepared) and, whenever `holdout > 0`, at least one paper authored by
/// a planted ambiguous entity is withheld — streams exist to exercise
/// updates that touch the interesting names.
pub fn update_stream(
    config: &WorldConfig,
    holdout: f64,
    seed: u64,
) -> Result<UpdateStream, StoreError> {
    let world = World::generate(config.clone());
    let holdout = holdout.clamp(0.0, 1.0);
    let threshold = (holdout * (1u64 << 32) as f64) as u64;
    // entity id -> (group index, entity index within group)
    let planted: HashMap<usize, (usize, usize)> = world
        .ambiguous_groups
        .iter()
        .enumerate()
        .flat_map(|(gi, g)| {
            g.entity_ids
                .iter()
                .enumerate()
                .map(move |(k, &eid)| (eid, (gi, k)))
        })
        .collect();

    let mut held: Vec<bool> = world
        .papers
        .iter()
        .map(|p| {
            mix(seed ^ (p.id as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)) & 0xffff_ffff < threshold
        })
        .collect();
    if held.iter().all(|&h| h) {
        // Keep at least one paper so the base catalog is preparable.
        if let Some(first) = held.first_mut() {
            *first = false;
        }
    }
    if holdout > 0.0
        && !world
            .papers
            .iter()
            .any(|p| held[p.id] && p.authors.iter().any(|a| planted.contains_key(a)))
    {
        // Force one ambiguous paper into the log.
        if let Some(p) = world
            .papers
            .iter()
            .rev()
            .find(|p| p.authors.iter().any(|a| planted.contains_key(a)))
        {
            held[p.id] = true;
        }
    }

    // The base: `to_catalog`'s emission minus the held-out papers, with
    // the proceedings pass over *all* papers so proc_key numbering
    // matches a union build and every logged paper's proceedings exists.
    let mut filtered = world.clone();
    filtered.papers = world
        .papers
        .iter()
        .filter(|p| !held[p.id])
        .cloned()
        .collect();
    let base = emit_with_proceedings(&filtered, &world)?;

    // The log, in original paper order — and the final ground truth with
    // the tuple ids the replay will assign (Publish ids are per-relation
    // and sequential, so the i-th logged Publish row lands at
    // base_publish_len + i).
    let mut proc_keys: HashMap<(usize, i64), i64> = HashMap::new();
    let mut pairs: Vec<(usize, i64)> = world.papers.iter().map(|p| (p.venue, p.year)).collect();
    pairs.sort_unstable();
    pairs.dedup();
    for (i, &pair) in pairs.iter().enumerate() {
        proc_keys.insert(pair, i as i64 + 1);
    }
    let mut log: Vec<LogTuple> = Vec::new();
    let mut truths: Vec<NameGroundTruth> = base.truths.clone();
    let mut next_publish = base.catalog.relation(base.publish).len() as u32;
    let mut held_out_papers = 0usize;
    for p in world.papers.iter().filter(|p| held[p.id]) {
        held_out_papers += 1;
        let paper_key = Value::Int(p.id as i64 + 1);
        log.push((
            "Publications".to_string(),
            vec![
                paper_key.clone(),
                Value::str(&p.title),
                Value::Int(proc_keys[&(p.venue, p.year)]),
            ],
        ));
        // Two same-named entities co-authoring one paper would emit
        // value-identical Publish rows; update application is idempotent
        // by value and would skip the second, so the log dedups the same
        // way (the first occurrence keeps the row and its ground truth).
        let mut row_names: Vec<&str> = Vec::new();
        for &a in &p.authors {
            let author_name = world.entities[a].name.as_str();
            if row_names.contains(&author_name) {
                continue;
            }
            row_names.push(author_name);
            log.push((
                "Publish".to_string(),
                vec![Value::str(author_name), paper_key.clone()],
            ));
            let t = TupleRef::new(base.publish, TupleId(next_publish));
            next_publish += 1;
            if let Some(&(gi, k)) = planted.get(&a) {
                truths[gi].refs.push(t);
                truths[gi].labels.push(k);
            }
        }
    }

    Ok(UpdateStream {
        base,
        log,
        truths,
        held_out_papers,
    })
}

/// Reorder a log at paper-block granularity with a seeded Fisher–Yates
/// shuffle: each `Publications` row keeps its following `Publish` rows
/// (the within-batch dependency appends need), but papers arrive in a
/// different order. `seed` fully determines the permutation.
pub fn shuffle_log(log: &[LogTuple], seed: u64) -> Vec<LogTuple> {
    // Split into blocks: a block starts at each Publications row. A log
    // produced by `update_stream` always starts with one; be lenient and
    // treat any leading Publish rows as their own block.
    let mut blocks: Vec<Vec<LogTuple>> = Vec::new();
    for t in log {
        if t.0 == "Publications" || blocks.is_empty() {
            blocks.push(Vec::new());
        }
        // distinct-lint: allow(D002, reason="a block was pushed on the previous line whenever blocks was empty")
        blocks.last_mut().expect("block exists").push(t.clone());
    }
    let mut state = seed | 1;
    let mut rand = move |bound: usize| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state % bound as u64) as usize
    };
    for i in (1..blocks.len()).rev() {
        let j = rand(i + 1);
        blocks.swap(i, j);
    }
    blocks.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AmbiguousSpec;
    use crate::dblp::to_catalog;

    fn config() -> WorldConfig {
        let mut c = WorldConfig::tiny(21);
        c.ambiguous = vec![AmbiguousSpec::new("Wei Wang", vec![10, 8, 5])];
        c
    }

    #[test]
    fn split_is_deterministic_and_covers_the_world() {
        let a = update_stream(&config(), 0.2, 7).unwrap();
        let b = update_stream(&config(), 0.2, 7).unwrap();
        assert_eq!(a.log, b.log);
        assert_eq!(a.held_out_papers, b.held_out_papers);
        assert!(a.held_out_papers > 0);
        let union = to_catalog(&World::generate(config())).unwrap();
        let pubs = |d: &DblpDataset| {
            d.catalog
                .relation(d.catalog.relation_id("Publications").unwrap())
                .len()
        };
        assert_eq!(
            pubs(&a.base) + a.held_out_papers,
            pubs(&union),
            "base + log papers == union papers"
        );
        // Full prelude: the base knows every proceedings and author.
        for rel in ["Authors", "Conferences", "Proceedings"] {
            let r = a.base.catalog.relation_id(rel).unwrap();
            let ru = union.catalog.relation_id(rel).unwrap();
            assert_eq!(
                a.base.catalog.relation(r).len(),
                union.catalog.relation(ru).len(),
                "{rel} prelude complete"
            );
        }
    }

    #[test]
    fn log_blocks_are_dependency_ordered() {
        let s = update_stream(&config(), 0.25, 11).unwrap();
        assert!(!s.log.is_empty());
        let mut current_paper: Option<Value> = None;
        for (rel, values) in &s.log {
            match rel.as_str() {
                "Publications" => current_paper = Some(values[0].clone()),
                "Publish" => {
                    let owner = current_paper.as_ref().expect("Publish before Publications");
                    assert_eq!(&values[1], owner, "Publish row outside its paper block");
                }
                other => panic!("unexpected relation {other} in log"),
            }
        }
    }

    #[test]
    fn final_truths_extend_base_truths_with_log_references() {
        let s = update_stream(&config(), 0.3, 3).unwrap();
        let union = to_catalog(&World::generate(config())).unwrap();
        for ((base_t, final_t), union_t) in s.base.truths.iter().zip(&s.truths).zip(&union.truths) {
            assert_eq!(base_t.name, final_t.name);
            assert!(final_t.refs.len() >= base_t.refs.len());
            assert_eq!(final_t.refs[..base_t.refs.len()], base_t.refs[..]);
            // Same references in total as a union build — only the order
            // (hence the tuple ids) differs.
            assert_eq!(final_t.refs.len(), union_t.refs.len());
            // And the per-entity histogram is preserved.
            let hist = |labels: &[usize]| {
                let mut h = std::collections::BTreeMap::new();
                for &l in labels {
                    *h.entry(l).or_insert(0usize) += 1;
                }
                h
            };
            assert_eq!(hist(&final_t.labels), hist(&union_t.labels));
        }
        // The stream always withholds at least one ambiguous paper.
        assert!(s.truths[0].refs.len() > s.base.truths[0].refs.len());
    }

    #[test]
    fn shuffle_preserves_blocks_and_multiset() {
        let s = update_stream(&config(), 0.3, 5).unwrap();
        let shuffled = shuffle_log(&s.log, 99);
        assert_eq!(shuffled.len(), s.log.len());
        let sorted = |log: &[LogTuple]| {
            let mut v: Vec<String> = log.iter().map(|t| format!("{t:?}")).collect();
            v.sort();
            v
        };
        assert_eq!(sorted(&shuffled), sorted(&s.log));
        assert_ne!(shuffled, s.log, "a 99-seeded shuffle must move something");
        // Blocks stay dependency-ordered after shuffling.
        let mut current_paper: Option<Value> = None;
        for (rel, values) in &shuffled {
            match rel.as_str() {
                "Publications" => current_paper = Some(values[0].clone()),
                "Publish" => {
                    assert_eq!(values[1], *current_paper.as_ref().unwrap());
                }
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn zero_holdout_is_an_empty_log() {
        let s = update_stream(&config(), 0.0, 1).unwrap();
        assert!(s.log.is_empty());
        assert_eq!(s.held_out_papers, 0);
        assert_eq!(s.truths[0].refs, s.base.truths[0].refs);
    }
}

//! Emission of the generated world as a relational catalog in the paper's
//! DBLP schema (Fig. 2), plus ground truth for the planted names.
//!
//! ```text
//! Authors(author KEY)
//! Publish(author -> Authors, paper_key -> Publications)
//! Publications(paper_key KEY, title, proc_key -> Proceedings)
//! Proceedings(proc_key KEY, conference -> Conferences, year, location)
//! Conferences(conference KEY, publisher)
//! ```
//!
//! Proceedings are one per (conference, year) pair that actually occurs.
//! Tuples are inserted in deterministic order; [`relstore::expand_values`]
//! (`relstore::expand`) preserves relation ids and tuple order, so the
//! ground-truth [`TupleRef`]s remain valid in an expanded catalog.

use crate::config::WorldConfig;
use crate::world::{World, WorldStream};
use relstore::{AttrType, Catalog, RelId, SchemaBuilder, StoreError, Tuple, TupleRef, Value};
use std::collections::{BTreeSet, HashMap};

/// Ground truth for one ambiguous name.
#[derive(Debug, Clone)]
pub struct NameGroundTruth {
    /// The shared author name.
    pub name: String,
    /// The Publish tuples that carry this name, in insertion order.
    pub refs: Vec<TupleRef>,
    /// Parallel to `refs`: the entity index *within the group* (0-based)
    /// each reference truly belongs to.
    pub labels: Vec<usize>,
}

impl NameGroundTruth {
    /// Number of distinct entities behind the name.
    pub fn entity_count(&self) -> usize {
        self.labels.iter().copied().max().map_or(0, |m| m + 1)
    }
}

/// The relational dataset: catalog + ground truth + landmark relation ids.
#[derive(Debug, Clone)]
pub struct DblpDataset {
    /// Finalized catalog in the Fig. 2 schema.
    pub catalog: Catalog,
    /// Ground truth per planted name, in config order.
    pub truths: Vec<NameGroundTruth>,
    /// The relation holding references (Publish).
    pub publish: RelId,
    /// The Authors relation.
    pub authors: RelId,
    /// True entity id per Publish tuple (parallel to tuple ids) — covers
    /// *every* reference, not just the planted names, so whole-database
    /// resolutions can be scored (ordinary names can collide too, via the
    /// Zipf name pools).
    pub publish_entities: Vec<usize>,
}

/// Conference locations, assigned deterministically per (venue, year).
const LOCATIONS: &[&str] = &[
    "Athens",
    "Beijing",
    "Chicago",
    "Dublin",
    "Edinburgh",
    "Florence",
    "Geneva",
    "Hanoi",
    "Istanbul",
    "Jakarta",
    "Kyoto",
    "Lisbon",
];

/// Location for a proceedings (venue, year) pair.
fn location_for(venue: usize, year: i64) -> &'static str {
    LOCATIONS[(venue * 31 + year as usize) % LOCATIONS.len()]
}

/// Register the five Fig. 2 relations on a fresh catalog.
fn build_schema() -> Result<Catalog, StoreError> {
    let mut c = Catalog::new();
    c.add_relation(
        SchemaBuilder::new("Authors")
            .key("author", AttrType::Str)
            .build()?,
    )?;
    c.add_relation(
        SchemaBuilder::new("Conferences")
            .key("conference", AttrType::Str)
            .data("publisher", AttrType::Str)
            .build()?,
    )?;
    c.add_relation(
        SchemaBuilder::new("Proceedings")
            .key("proc_key", AttrType::Int)
            .fk("conference", AttrType::Str, "Conferences")
            .data("year", AttrType::Int)
            .data("location", AttrType::Str)
            .build()?,
    )?;
    c.add_relation(
        SchemaBuilder::new("Publications")
            .key("paper_key", AttrType::Int)
            .data("title", AttrType::Str)
            .fk("proc_key", AttrType::Int, "Proceedings")
            .build()?,
    )?;
    c.add_relation(
        SchemaBuilder::new("Publish")
            .fk("author", AttrType::Str, "Authors")
            .fk("paper_key", AttrType::Int, "Publications")
            .build()?,
    )?;
    Ok(c)
}

/// Build the DBLP-schema catalog from a world.
pub fn to_catalog(world: &World) -> Result<DblpDataset, StoreError> {
    emit_with_proceedings(world, world)
}

/// [`to_catalog`], generalized for update-stream bases: papers come from
/// `world`, but the proceedings pass covers every (venue, year) pair of
/// `proceedings_from` — so a base catalog emitted from a paper subset
/// still numbers its proc_keys exactly like a full-world build, and
/// held-out papers replayed later always reference an existing
/// proceedings.
pub(crate) fn emit_with_proceedings(
    world: &World,
    proceedings_from: &World,
) -> Result<DblpDataset, StoreError> {
    let mut c = build_schema()?;

    // Authors: one tuple per distinct display name.
    let mut seen_names: HashMap<&str, ()> = HashMap::new();
    for e in &world.entities {
        if seen_names.insert(e.name.as_str(), ()).is_none() {
            c.insert("Authors", Tuple::new(vec![Value::str(&e.name)]))?;
        }
    }

    // Conferences.
    for v in &world.venues {
        c.insert(
            "Conferences",
            Tuple::new(vec![Value::str(&v.name), Value::str(&v.publisher)]),
        )?;
    }

    // Proceedings: one per (venue, year) occurring in the papers.
    let mut proc_keys: HashMap<(usize, i64), i64> = HashMap::new();
    let mut pairs: Vec<(usize, i64)> = proceedings_from
        .papers
        .iter()
        .map(|p| (p.venue, p.year))
        .collect();
    pairs.sort_unstable();
    pairs.dedup();
    for (i, &(venue, year)) in pairs.iter().enumerate() {
        let key = i as i64 + 1;
        proc_keys.insert((venue, year), key);
        c.insert(
            "Proceedings",
            Tuple::new(vec![
                Value::Int(key),
                Value::str(&world.venues[venue].name),
                Value::Int(year),
                Value::str(location_for(venue, year)),
            ]),
        )?;
    }

    // Publications.
    for p in &world.papers {
        let proc_key = proc_keys[&(p.venue, p.year)];
        c.insert(
            "Publications",
            Tuple::new(vec![
                Value::Int(p.id as i64 + 1),
                Value::str(&p.title),
                Value::Int(proc_key),
            ]),
        )?;
    }

    // Publish (authorship records), tracking planted references.
    // entity id -> (group index, entity index within group)
    let mut planted: HashMap<usize, (usize, usize)> = HashMap::new();
    for (gi, g) in world.ambiguous_groups.iter().enumerate() {
        for (k, &eid) in g.entity_ids.iter().enumerate() {
            planted.insert(eid, (gi, k));
        }
    }
    let mut truths: Vec<NameGroundTruth> = world
        .ambiguous_groups
        .iter()
        .map(|g| NameGroundTruth {
            name: g.name.clone(),
            refs: Vec::new(),
            labels: Vec::new(),
        })
        .collect();
    let mut publish_entities = Vec::new();
    for p in &world.papers {
        for &a in &p.authors {
            let t = c.insert(
                "Publish",
                Tuple::new(vec![
                    Value::str(&world.entities[a].name),
                    Value::Int(p.id as i64 + 1),
                ]),
            )?;
            publish_entities.push(a);
            if let Some(&(gi, k)) = planted.get(&a) {
                truths[gi].refs.push(t);
                truths[gi].labels.push(k);
            }
        }
    }

    c.finalize(true)?;
    let publish = c.relation_id("Publish").expect("Publish registered"); // distinct-lint: allow(D002, reason="Publish was registered by this same function a page up; dev-only generator crate")
    let authors = c.relation_id("Authors").expect("Authors registered"); // distinct-lint: allow(D002, reason="Authors was registered by this same function a page up; dev-only generator crate")
    Ok(DblpDataset {
        catalog: c,
        truths,
        publish,
        authors,
        publish_entities,
    })
}

/// Build the DBLP-schema catalog by streaming papers instead of
/// materializing a [`World`].
///
/// Two deterministic passes over a [`WorldStream`]: pass one discovers
/// the (venue, year) pairs that need Proceedings tuples while discarding
/// each paper as soon as it is seen; pass two replays the stream and
/// emits the Publications row and Publish rows of each paper before
/// dropping it. Peak memory is the prelude (entities, venues) plus the
/// catalog under construction plus one paper — never the full paper list
/// — which is what makes [`WorldConfig::paper_scale`] worlds emittable.
///
/// The output is bit-identical to [`to_catalog`] on
/// [`World::generate`] of the same config: both consume the same stream,
/// and tuple ids are per-relation, so interleaving Publications and
/// Publish inserts does not change any [`TupleRef`].
pub fn stream_to_catalog(config: &WorldConfig) -> Result<DblpDataset, StoreError> {
    // --- Pass 1: proceedings discovery --------------------------------
    let mut pairs: BTreeSet<(usize, i64)> = BTreeSet::new();
    for p in WorldStream::new(config.clone()) {
        pairs.insert((p.venue, p.year));
    }

    // --- Prelude tuples ------------------------------------------------
    let stream = WorldStream::new(config.clone());
    let mut c = build_schema()?;
    let mut seen_names: HashMap<String, ()> = HashMap::new();
    for e in stream.entities() {
        if seen_names.insert(e.name.clone(), ()).is_none() {
            c.insert("Authors", Tuple::new(vec![Value::str(&e.name)]))?;
        }
    }
    for v in stream.venues() {
        c.insert(
            "Conferences",
            Tuple::new(vec![Value::str(&v.name), Value::str(&v.publisher)]),
        )?;
    }
    let venue_names: Vec<String> = stream.venues().iter().map(|v| v.name.clone()).collect();
    let mut proc_keys: HashMap<(usize, i64), i64> = HashMap::new();
    for (i, &(venue, year)) in pairs.iter().enumerate() {
        let key = i as i64 + 1;
        proc_keys.insert((venue, year), key);
        c.insert(
            "Proceedings",
            Tuple::new(vec![
                Value::Int(key),
                Value::str(&venue_names[venue]),
                Value::Int(year),
                Value::str(location_for(venue, year)),
            ]),
        )?;
    }

    // --- Pass 2: papers, one at a time ---------------------------------
    // entity id -> (group index, entity index within group)
    let mut planted: HashMap<usize, (usize, usize)> = HashMap::new();
    for (gi, g) in stream.ambiguous_groups().iter().enumerate() {
        for (k, &eid) in g.entity_ids.iter().enumerate() {
            planted.insert(eid, (gi, k));
        }
    }
    let mut truths: Vec<NameGroundTruth> = stream
        .ambiguous_groups()
        .iter()
        .map(|g| NameGroundTruth {
            name: g.name.clone(),
            refs: Vec::new(),
            labels: Vec::new(),
        })
        .collect();
    let entity_names: Vec<String> = stream.entities().iter().map(|e| e.name.clone()).collect();
    let mut publish_entities = Vec::new();
    for p in stream {
        let proc_key = proc_keys[&(p.venue, p.year)];
        c.insert(
            "Publications",
            Tuple::new(vec![
                Value::Int(p.id as i64 + 1),
                Value::str(&p.title),
                Value::Int(proc_key),
            ]),
        )?;
        for &a in &p.authors {
            let t = c.insert(
                "Publish",
                Tuple::new(vec![
                    Value::str(&entity_names[a]),
                    Value::Int(p.id as i64 + 1),
                ]),
            )?;
            publish_entities.push(a);
            if let Some(&(gi, k)) = planted.get(&a) {
                truths[gi].refs.push(t);
                truths[gi].labels.push(k);
            }
        }
    }

    c.finalize(true)?;
    let publish = c.relation_id("Publish").expect("Publish registered"); // distinct-lint: allow(D002, reason="Publish was registered by this same function a page up; dev-only generator crate")
    let authors = c.relation_id("Authors").expect("Authors registered"); // distinct-lint: allow(D002, reason="Authors was registered by this same function a page up; dev-only generator crate")
    Ok(DblpDataset {
        catalog: c,
        truths,
        publish,
        authors,
        publish_entities,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AmbiguousSpec, WorldConfig};

    fn dataset() -> DblpDataset {
        let mut config = WorldConfig::tiny(11);
        config.ambiguous = vec![AmbiguousSpec::new("Wei Wang", vec![12, 8, 4])];
        to_catalog(&World::generate(config)).unwrap()
    }

    #[test]
    fn schema_matches_fig2() {
        let d = dataset();
        for rel in [
            "Authors",
            "Publish",
            "Publications",
            "Proceedings",
            "Conferences",
        ] {
            assert!(d.catalog.relation_id(rel).is_some(), "missing {rel}");
        }
        let labels: Vec<&str> = d
            .catalog
            .fk_edges()
            .iter()
            .map(|e| e.label.as_str())
            .collect();
        assert!(labels.contains(&"Publish.author->Authors"));
        assert!(labels.contains(&"Publish.paper_key->Publications"));
        assert!(labels.contains(&"Publications.proc_key->Proceedings"));
        assert!(labels.contains(&"Proceedings.conference->Conferences"));
    }

    #[test]
    fn integrity_holds() {
        let d = dataset();
        assert!(d.catalog.is_finalized());
    }

    #[test]
    fn ground_truth_counts_match_spec() {
        let d = dataset();
        assert_eq!(d.truths.len(), 1);
        let t = &d.truths[0];
        assert_eq!(t.name, "Wei Wang");
        assert_eq!(t.refs.len(), 24);
        assert_eq!(t.labels.len(), 24);
        assert_eq!(t.entity_count(), 3);
        // Label histogram matches refs_per_entity.
        let mut hist = vec![0usize; 3];
        for &l in &t.labels {
            hist[l] += 1;
        }
        assert_eq!(hist, vec![12, 8, 4]);
    }

    #[test]
    fn ground_truth_refs_point_at_the_name() {
        let d = dataset();
        let t = &d.truths[0];
        for &r in &t.refs {
            assert_eq!(r.rel, d.publish);
            let name = d.catalog.value(r, 0);
            assert_eq!(name.as_str(), Some("Wei Wang"));
        }
    }

    #[test]
    fn all_name_references_are_in_ground_truth() {
        // Every Publish row with the planted name must appear in refs —
        // no stray "Wei Wang" from the ordinary population (the planted
        // name uses title-case words outside the synthetic pools).
        let d = dataset();
        let t = &d.truths[0];
        let publish = d.catalog.relation(d.publish);
        let count = publish
            .iter()
            .filter(|(_, tup)| tup.get(0).as_str() == Some("Wei Wang"))
            .count();
        assert_eq!(count, t.refs.len());
    }

    #[test]
    fn shared_name_is_one_author_tuple() {
        let d = dataset();
        let authors = d.catalog.relation(d.authors);
        let hits = authors
            .iter()
            .filter(|(_, tup)| tup.get(0).as_str() == Some("Wei Wang"))
            .count();
        assert_eq!(hits, 1);
    }

    #[test]
    fn proceedings_unique_per_venue_year() {
        let d = dataset();
        let procs = d.catalog.relation_id("Proceedings").unwrap();
        let rel = d.catalog.relation(procs);
        let mut seen = std::collections::HashSet::new();
        for (_, tup) in rel.iter() {
            let venue = tup.get(1).as_str().unwrap().to_string();
            let year = tup.get(2).as_int().unwrap();
            assert!(seen.insert((venue, year)), "duplicate proceedings");
        }
    }

    #[test]
    fn expansion_preserves_ground_truth_refs() {
        let d = dataset();
        let ex = relstore::expand_values(&d.catalog).unwrap();
        let t = &d.truths[0];
        for &r in &t.refs {
            // Same tuple, same name, in the expanded catalog.
            let name = ex.catalog.value(r, 0);
            assert_eq!(name.as_str(), Some("Wei Wang"));
        }
        // Publisher, year, location, title expanded.
        let names: Vec<String> = ex
            .expanded
            .iter()
            .map(|e| e.pseudo_relation.clone())
            .collect();
        assert!(names.contains(&"Conferences#publisher".to_string()));
        assert!(names.contains(&"Proceedings#year".to_string()));
        assert!(names.contains(&"Proceedings#location".to_string()));
        assert!(names.contains(&"Publications#title".to_string()));
    }

    #[test]
    fn publish_entities_cover_every_reference() {
        let d = dataset();
        let publish = d.catalog.relation(d.publish);
        assert_eq!(d.publish_entities.len(), publish.len());
        // The entity's name matches the tuple's author value everywhere.
        let config = {
            let mut c = WorldConfig::tiny(11);
            c.ambiguous = vec![AmbiguousSpec::new("Wei Wang", vec![12, 8, 4])];
            c
        };
        let world = World::generate(config);
        for ((_, tup), &eid) in publish.iter().zip(&d.publish_entities) {
            assert_eq!(tup.get(0).as_str().unwrap(), world.entities[eid].name);
        }
    }

    #[test]
    fn streaming_catalog_is_bit_identical_to_monolithic() {
        let config = {
            let mut c = WorldConfig::tiny(13);
            c.ambiguous = vec![AmbiguousSpec::new("Wei Wang", vec![9, 6, 3])];
            c
        };
        let mono = to_catalog(&World::generate(config.clone())).unwrap();
        let streamed = stream_to_catalog(&config).unwrap();
        for rel in [
            "Authors",
            "Conferences",
            "Proceedings",
            "Publications",
            "Publish",
        ] {
            let ra = mono.catalog.relation_id(rel).unwrap();
            let rb = streamed.catalog.relation_id(rel).unwrap();
            assert_eq!(ra, rb, "{rel} relation id");
            let a = mono.catalog.relation(ra);
            let b = streamed.catalog.relation(rb);
            assert_eq!(a.len(), b.len(), "{rel} cardinality");
            for ((ia, ta), (ib, tb)) in a.iter().zip(b.iter()) {
                assert_eq!(ia, ib, "{rel} tuple id");
                assert_eq!(ta, tb, "{rel} tuple {ia:?}");
            }
        }
        assert_eq!(mono.publish_entities, streamed.publish_entities);
        assert_eq!(mono.truths.len(), streamed.truths.len());
        for (x, y) in mono.truths.iter().zip(&streamed.truths) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.refs, y.refs);
            assert_eq!(x.labels, y.labels);
        }
        assert!(streamed.catalog.is_finalized());
    }

    #[test]
    fn catalog_scale_is_sane() {
        let d = dataset();
        let papers = d.catalog.relation_id("Publications").unwrap();
        let publish = d.catalog.relation(d.publish);
        assert!(d.catalog.relation(papers).len() > 100);
        assert!(publish.len() > d.catalog.relation(papers).len());
    }
}

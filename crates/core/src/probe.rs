//! Per-stage observation surface for differential testing.
//!
//! [`StageProbe`](crate::probe::StageProbe) exposes the pipeline's
//! intermediate products — reference profiles and the leaf pairwise
//! tables — exactly as the resolution path computes them, so an external
//! oracle can compare stage by stage instead of only end to end. See
//! [`Distinct::stage_probe`](crate::Distinct::stage_probe).

use crate::features::Profile;
use std::sync::Arc;

/// The pipeline's per-stage intermediates for one slice of references.
///
/// All matrices are `n × n` with zero diagonals; `resemblance`, `walk`,
/// and `similarity` are symmetric. Values are precisely those the
/// production resolution path feeds the clustering engine: weighted
/// per-path sums under the engine's current weights, measure, and
/// composite.
#[derive(Debug, Clone)]
pub struct StageProbe {
    /// Stage-1 output: one profile per reference (shared with the cache).
    pub profiles: Vec<Arc<Profile>>,
    /// Weighted set resemblance per pair.
    pub resemblance: Vec<Vec<f64>>,
    /// Symmetrized weighted walk probability per pair.
    pub walk: Vec<Vec<f64>>,
    /// Leaf composite similarity per pair (what seeds the merge heap).
    pub similarity: Vec<Vec<f64>>,
}

impl StageProbe {
    /// Number of probed references.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// True when no references were probed.
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }
}

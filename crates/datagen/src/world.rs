//! The synthetic bibliographic world: entities, communities, venues, and
//! papers with community-structured coauthorship.
//!
//! Structural properties (the ones DISTINCT exploits, per §1–2 of the
//! paper):
//!
//! * every real author (entity) belongs to a research community; coauthors
//!   come overwhelmingly from that community, with sticky repeat
//!   collaborations — so references to one entity share coauthor context;
//! * each community prefers a small set of venues — so references to one
//!   entity share conference context;
//! * a configurable fraction of papers pull a coauthor from a foreign
//!   community — the cross-linkage noise that produces realistic errors;
//! * planted ambiguous entities share one author string but live in
//!   different communities (two may share a community when the spec packs
//!   more entities than communities, mirroring the genuinely hard cases).

use crate::config::{AmbiguousSpec, WorldConfig};
use crate::names::NamePool;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Identifier of an entity (a real author).
pub type EntityId = usize;

/// One real author.
#[derive(Debug, Clone)]
pub struct Entity {
    /// Dense id.
    pub id: EntityId,
    /// Display name ("First Last") — shared across entities for planted
    /// ambiguous names.
    pub name: String,
    /// Home community.
    pub community: usize,
    /// Number of authorship records this entity must produce.
    pub target_refs: usize,
    /// True if this entity belongs to a planted ambiguous group.
    pub planted: bool,
    /// Active publication years, inclusive (real authors publish within a
    /// career window, which makes the year attribute genuinely
    /// informative — namesakes from different eras rarely overlap).
    pub active_years: (i64, i64),
}

/// One venue (conference series).
#[derive(Debug, Clone)]
pub struct Venue {
    /// Dense id.
    pub id: usize,
    /// Conference name, unique.
    pub name: String,
    /// Publisher name.
    pub publisher: String,
}

/// One paper.
#[derive(Debug, Clone)]
pub struct Paper {
    /// Dense id.
    pub id: usize,
    /// Title (unique).
    pub title: String,
    /// Venue id.
    pub venue: usize,
    /// Publication year.
    pub year: i64,
    /// Author entities, in byline order (no duplicates).
    pub authors: Vec<EntityId>,
}

/// A planted ambiguous group: which entities share the name.
#[derive(Debug, Clone)]
pub struct AmbiguousGroup {
    /// The shared name.
    pub name: String,
    /// Entity ids sharing it (index = entity number within the group).
    pub entity_ids: Vec<EntityId>,
}

/// The generated world.
#[derive(Debug, Clone)]
pub struct World {
    /// Configuration it was generated from.
    pub config: WorldConfig,
    /// All entities; planted ones come after the ordinary ones.
    pub entities: Vec<Entity>,
    /// All venues.
    pub venues: Vec<Venue>,
    /// All papers.
    pub papers: Vec<Paper>,
    /// Planted groups with ground truth entity ids.
    pub ambiguous_groups: Vec<AmbiguousGroup>,
    /// Per-community preferred venue ids.
    pub community_venues: Vec<Vec<usize>>,
}

/// Venue name for an index (deterministic, acronym-like).
fn venue_name(i: usize) -> String {
    const STEMS: &[&str] = &[
        "VLDB", "SIGMOD", "ICDE", "KDD", "ICDM", "SDM", "CIKM", "WWW", "EDBT", "PODS", "DASFAA",
        "PAKDD", "SSDBM", "WSDM", "ECML", "ICML", "AAAI", "IJCAI", "SIGIR", "WISE",
    ];
    if i < STEMS.len() {
        STEMS[i].to_string()
    } else {
        format!("{}-{}", STEMS[i % STEMS.len()], i / STEMS.len() + 1)
    }
}

/// Publisher name for an index.
fn publisher_name(i: usize) -> String {
    const NAMES: &[&str] = &[
        "ACM",
        "IEEE",
        "Springer",
        "Elsevier",
        "Morgan Kaufmann",
        "USENIX",
    ];
    if i < NAMES.len() {
        NAMES[i].to_string()
    } else {
        format!("Press-{i}")
    }
}

impl World {
    /// Generate a world from a configuration.
    ///
    /// Implemented by draining a [`WorldStream`], so a chunked consumer of
    /// the stream sees bit-for-bit the papers this returns.
    ///
    /// # Panics
    /// Panics if the configuration fails [`WorldConfig::validate`].
    pub fn generate(config: WorldConfig) -> World {
        let mut stream = WorldStream::new(config);
        let papers: Vec<Paper> = stream.by_ref().collect();
        stream.into_world(papers)
    }

    /// Entities in a community.
    pub fn community_members(&self, community: usize) -> Vec<EntityId> {
        self.entities
            .iter()
            .filter(|e| e.community == community)
            .map(|e| e.id)
            .collect()
    }

    /// Total number of authorship records across all papers.
    pub fn reference_count(&self) -> usize {
        self.papers.iter().map(|p| p.authors.len()).sum()
    }

    /// Number of references produced for an entity.
    pub fn refs_of(&self, entity: EntityId) -> usize {
        self.papers
            .iter()
            .map(|p| p.authors.iter().filter(|&&a| a == entity).count())
            .sum()
    }
}

/// Create the entities for one ambiguous spec, assigning communities
/// round-robin so entities sharing the name differ in context wherever
/// the community budget allows.
///
/// Also plants *namesake* ordinary authors sharing the first or last token
/// of the ambiguous name ("Wei Xu", "Jing Wang"). Real ambiguous names are
/// ambiguous precisely because their parts are common; without namesakes
/// the automatic training-set builder would judge the planted name rare —
/// hence unique — and feed cross-entity pairs to the SVM as positives.
fn plant_group(
    spec: &AmbiguousSpec,
    entities: &mut Vec<Entity>,
    n_communities: usize,
    year_range: (i64, i64),
    first_pool: &NamePool,
    last_pool: &NamePool,
    rng: &mut StdRng,
) -> AmbiguousGroup {
    let start_comm = rng.gen_range(0..n_communities);
    let mut entity_ids = Vec::with_capacity(spec.refs_per_entity.len());
    for (k, &refs) in spec.refs_per_entity.iter().enumerate() {
        let id = entities.len();
        entities.push(Entity {
            id,
            name: spec.name.clone(),
            community: (start_comm + k) % n_communities,
            target_refs: refs,
            planted: true,
            active_years: career_window(year_range, rng),
        });
        entity_ids.push(id);
    }
    // Namesakes: 6 sharing the first token, 6 sharing the last token.
    let tokens: Vec<&str> = spec.name.split_whitespace().collect();
    if let (Some(&first_tok), Some(&last_tok)) = (tokens.first(), tokens.last()) {
        for _ in 0..6 {
            let id = entities.len();
            entities.push(Entity {
                id,
                name: format!("{first_tok} {}", last_pool.sample(rng)),
                community: rng.gen_range(0..n_communities),
                target_refs: 3 + rng.gen_range(0..4),
                planted: false,
                active_years: career_window(year_range, rng),
            });
            let id = id + 1;
            entities.push(Entity {
                id,
                name: format!("{} {last_tok}", first_pool.sample(rng)),
                community: rng.gen_range(0..n_communities),
                target_refs: 3 + rng.gen_range(0..4),
                planted: false,
                active_years: career_window(year_range, rng),
            });
        }
    }
    AmbiguousGroup {
        name: spec.name.clone(),
        entity_ids,
    }
}

/// Draw a career window: a 5–10 year active span inside the global range
/// (clamped to it).
fn career_window(range: (i64, i64), rng: &mut StdRng) -> (i64, i64) {
    let (lo, hi) = range;
    let span = (hi - lo).max(0);
    let duration = rng.gen_range(5..=10).min(span + 1);
    let start = lo + rng.gen_range(0..=(span + 1 - duration).max(0));
    (start, (start + duration - 1).min(hi))
}

/// Streaming world generator: the prelude (venues, communities, entities,
/// planted groups) is materialized eagerly — it stays small even at paper
/// scale — while papers are produced one at a time on demand, so a
/// paper-scale world (~127K authors, ~616K papers, ~1.29M references; see
/// [`WorldConfig::paper_scale`]) can be emitted into a catalog chunk by
/// chunk without ever holding the full paper list in memory.
///
/// The stream is bit-identical to [`World::generate`]: `generate` is
/// itself implemented by draining a `WorldStream`, so every paper id,
/// byline, venue, year, and RNG draw matches the monolithic path.
pub struct WorldStream {
    config: WorldConfig,
    entities: Vec<Entity>,
    venues: Vec<Venue>,
    ambiguous_groups: Vec<AmbiguousGroup>,
    community_venues: Vec<Vec<usize>>,
    rng: StdRng,
    /// Community membership lists for fresh-coauthor draws.
    members: Vec<Vec<EntityId>>,
    /// Remaining reference budget per entity.
    budget: Vec<usize>,
    /// Past same-community collaborators per entity.
    collaborators: Vec<Vec<EntityId>>,
    /// Lead authors in shuffled order, revisited while they have budget.
    leads: Vec<EntityId>,
    lead_pos: usize,
    progressed: bool,
    emitted: usize,
    title_counter: usize,
    done: bool,
}

impl WorldStream {
    /// Build the world prelude and position the stream at the first paper.
    ///
    /// # Panics
    /// Panics if the configuration fails [`WorldConfig::validate`].
    pub fn new(config: WorldConfig) -> WorldStream {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid WorldConfig: {e}")); // distinct-lint: allow(D002, reason="failing fast on an invalid test config is the generator's contract; dev-only crate, never on the resolve path")
        let mut rng = StdRng::seed_from_u64(config.seed);

        // --- Venues & publishers -----------------------------------------
        let venues: Vec<Venue> = (0..config.n_venues)
            .map(|i| Venue {
                id: i,
                name: venue_name(i),
                publisher: publisher_name(rng.gen_range(0..config.n_publishers)),
            })
            .collect();

        // Preferred venues per community.
        let mut community_venues = Vec::with_capacity(config.n_communities);
        let mut venue_ids: Vec<usize> = (0..config.n_venues).collect();
        for _ in 0..config.n_communities {
            venue_ids.shuffle(&mut rng);
            community_venues.push(venue_ids[..config.venues_per_community].to_vec());
        }

        // --- Ordinary entities -------------------------------------------
        // distinct-lint: scratch(built once per generated world and dropped with it; sampled read-only while entities are drawn)
        let first = NamePool::first_names(config.first_name_pool, config.zipf_exponent);
        // distinct-lint: scratch(built once per generated world and dropped with it; sampled read-only while entities are drawn)
        let last = NamePool::last_names(config.last_name_pool, config.zipf_exponent);
        let career = |rng: &mut StdRng| career_window(config.year_range, rng);
        let mut entities: Vec<Entity> = Vec::with_capacity(config.n_authors);
        for id in 0..config.n_authors {
            let name = format!("{} {}", first.sample(&mut rng), last.sample(&mut rng));
            // Geometric-ish paper count with mean ≈ mean_papers_per_author,
            // floored at 3 (the paper drops authors with ≤ 2 papers).
            let extra_mean = (config.mean_papers_per_author - 3.0).max(0.0);
            let mut refs = 3usize;
            if extra_mean > 0.0 {
                let p = 1.0 / (1.0 + extra_mean);
                while rng.gen::<f64>() > p {
                    refs += 1;
                    if refs > 200 {
                        break;
                    }
                }
            }
            let active_years = career(&mut rng);
            entities.push(Entity {
                id,
                name,
                community: rng.gen_range(0..config.n_communities),
                target_refs: refs,
                planted: false,
                active_years,
            });
        }

        // --- Planted ambiguous entities ----------------------------------
        let mut ambiguous_groups = Vec::with_capacity(config.ambiguous.len());
        for spec in &config.ambiguous {
            let group = plant_group(
                spec,
                &mut entities,
                config.n_communities,
                config.year_range,
                &first,
                &last,
                &mut rng,
            );
            ambiguous_groups.push(group);
        }

        // --- Paper-generation state --------------------------------------
        let mut members: Vec<Vec<EntityId>> = vec![Vec::new(); config.n_communities];
        for e in &entities {
            members[e.community].push(e.id);
        }
        let budget: Vec<usize> = entities.iter().map(|e| e.target_refs).collect();
        let collaborators: Vec<Vec<EntityId>> = vec![Vec::new(); entities.len()];
        let mut leads: Vec<EntityId> = (0..entities.len()).collect();
        leads.shuffle(&mut rng);

        WorldStream {
            config,
            entities,
            venues,
            ambiguous_groups,
            community_venues,
            rng,
            members,
            budget,
            collaborators,
            leads,
            lead_pos: 0,
            progressed: false,
            emitted: 0,
            title_counter: 0,
            done: false,
        }
    }

    /// The entities (prelude; fixed before any paper is drawn).
    pub fn entities(&self) -> &[Entity] {
        &self.entities
    }

    /// The venues.
    pub fn venues(&self) -> &[Venue] {
        &self.venues
    }

    /// Planted groups with ground-truth entity ids.
    pub fn ambiguous_groups(&self) -> &[AmbiguousGroup] {
        &self.ambiguous_groups
    }

    /// Per-community preferred venue ids.
    pub fn community_venues(&self) -> &[Vec<usize>] {
        &self.community_venues
    }

    /// The configuration the stream was built from.
    pub fn config(&self) -> &WorldConfig {
        &self.config
    }

    /// Number of papers emitted so far.
    pub fn emitted(&self) -> usize {
        self.emitted
    }

    /// Drain up to `n` papers into a chunk; an empty chunk means the
    /// stream is exhausted.
    pub fn next_chunk(&mut self, n: usize) -> Vec<Paper> {
        let mut chunk = Vec::with_capacity(n.min(1024));
        while chunk.len() < n {
            match self.next() {
                Some(p) => chunk.push(p),
                None => break,
            }
        }
        chunk
    }

    /// Reassemble a [`World`] from the prelude plus externally collected
    /// papers (the monolithic [`World::generate`] path).
    fn into_world(self, papers: Vec<Paper>) -> World {
        World {
            config: self.config,
            entities: self.entities,
            venues: self.venues,
            papers,
            ambiguous_groups: self.ambiguous_groups,
            community_venues: self.community_venues,
        }
    }

    /// Emit one paper led by `lead` (which must have budget left).
    fn emit_paper(&mut self, lead: EntityId) -> Paper {
        // --- Assemble the byline -----------------------------------------
        let n_co = self
            .rng
            .gen_range(self.config.coauthors_per_paper.0..=self.config.coauthors_per_paper.1);
        let mut authors = vec![lead];
        let home = self.entities[lead].community;
        for _ in 0..n_co {
            let candidate = if !self.collaborators[lead].is_empty()
                && self.rng.gen::<f64>() < self.config.repeat_collaborator_prob
            {
                self.collaborators[lead][self.rng.gen_range(0..self.collaborators[lead].len())]
            } else if self.rng.gen::<f64>() < self.config.cross_community_prob {
                // Cross-community noise coauthor.
                self.rng.gen_range(0..self.entities.len())
            } else {
                let pool = &self.members[home];
                pool[self.rng.gen_range(0..pool.len())]
            };
            // Planted entities must hit their Table-1 reference counts
            // exactly, so they stop appearing once their budget is spent.
            if self.entities[candidate].planted && self.budget[candidate] == 0 {
                continue;
            }
            if !authors.contains(&candidate) {
                authors.push(candidate);
            }
        }
        // --- Venue & year -------------------------------------------------
        let venue = if self.rng.gen::<f64>() < self.config.venue_affinity {
            let pref = &self.community_venues[home];
            pref[self.rng.gen_range(0..pref.len())]
        } else {
            self.rng.gen_range(0..self.config.n_venues)
        };
        // Years come from the lead author's career window.
        let (y0, y1) = self.entities[lead].active_years;
        let year = self.rng.gen_range(y0..=y1);
        // --- Record -------------------------------------------------------
        for &a in &authors {
            self.budget[a] = self.budget[a].saturating_sub(1);
        }
        // Sticky collaboration only forms inside a community: real
        // cross-community coauthorships are one-off, and letting them
        // into the repeat-collaborator pool would amplify a single
        // noise edge into a bridge between communities.
        for i in 0..authors.len() {
            for j in 0..authors.len() {
                if i != j
                    && self.entities[authors[i]].community == self.entities[authors[j]].community
                    && !self.collaborators[authors[i]].contains(&authors[j])
                {
                    self.collaborators[authors[i]].push(authors[j]);
                }
            }
        }
        self.title_counter += 1;
        let paper = Paper {
            id: self.emitted,
            title: format!("On Topic {}", self.title_counter),
            venue,
            year,
            authors,
        };
        self.emitted += 1;
        paper
    }
}

impl Iterator for WorldStream {
    type Item = Paper;

    /// Produce the next paper, revisiting leads in shuffled order until a
    /// full pass makes no progress (every budget spent).
    fn next(&mut self) -> Option<Paper> {
        if self.done {
            return None;
        }
        loop {
            if self.lead_pos == self.leads.len() {
                if !self.progressed {
                    self.done = true;
                    return None;
                }
                self.progressed = false;
                self.lead_pos = 0;
            }
            let lead = self.leads[self.lead_pos];
            self.lead_pos += 1;
            if self.budget[lead] == 0 {
                continue;
            }
            self.progressed = true;
            return Some(self.emit_paper(lead));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_world() -> World {
        let mut config = WorldConfig::tiny(7);
        config.ambiguous = vec![
            AmbiguousSpec::new("Wei Wang", vec![20, 10, 5]),
            AmbiguousSpec::new("Hui Fang", vec![4, 3]),
        ];
        World::generate(config)
    }

    #[test]
    fn world_has_expected_shape() {
        let w = tiny_world();
        // 250 ordinary + (3 + 2) planted + 12 namesakes per planted group.
        assert_eq!(w.entities.len(), 250 + 3 + 2 + 24);
        assert_eq!(w.venues.len(), 24);
        assert_eq!(w.ambiguous_groups.len(), 2);
        assert!(!w.papers.is_empty());
        assert_eq!(w.community_venues.len(), 10);
        for cv in &w.community_venues {
            assert_eq!(cv.len(), w.config.venues_per_community);
        }
    }

    #[test]
    fn stream_is_bit_identical_to_generate() {
        let config = {
            let mut c = WorldConfig::tiny(7);
            c.ambiguous = vec![AmbiguousSpec::new("Wei Wang", vec![20, 10, 5])];
            c
        };
        let w = World::generate(config.clone());
        let mut stream = WorldStream::new(config);
        // Chunked draining (odd chunk size on purpose) must replay the
        // monolithic world paper for paper.
        let mut papers = Vec::new();
        loop {
            let chunk = stream.next_chunk(17);
            if chunk.is_empty() {
                break;
            }
            papers.extend(chunk);
        }
        assert_eq!(papers.len(), w.papers.len());
        assert_eq!(stream.emitted(), w.papers.len());
        for (a, b) in papers.iter().zip(&w.papers) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.title, b.title);
            assert_eq!(a.venue, b.venue);
            assert_eq!(a.year, b.year);
            assert_eq!(a.authors, b.authors);
        }
        // The prelude matches too.
        assert_eq!(stream.entities().len(), w.entities.len());
        assert_eq!(stream.venues().len(), w.venues.len());
        assert_eq!(stream.ambiguous_groups().len(), w.ambiguous_groups.len());
        assert_eq!(stream.community_venues(), &w.community_venues[..]);
        // Exhausted stream stays exhausted.
        assert!(stream.next().is_none());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = tiny_world();
        let b = tiny_world();
        assert_eq!(a.papers.len(), b.papers.len());
        for (pa, pb) in a.papers.iter().zip(&b.papers) {
            assert_eq!(pa.authors, pb.authors);
            assert_eq!(pa.venue, pb.venue);
            assert_eq!(pa.year, pb.year);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = World::generate(WorldConfig::tiny(1));
        let b = World::generate(WorldConfig::tiny(2));
        let same = a.papers.len() == b.papers.len()
            && a.papers
                .iter()
                .zip(&b.papers)
                .all(|(x, y)| x.authors == y.authors);
        assert!(!same);
    }

    #[test]
    fn planted_entities_share_name_and_meet_ref_targets() {
        let w = tiny_world();
        let group = &w.ambiguous_groups[0];
        assert_eq!(group.name, "Wei Wang");
        assert_eq!(group.entity_ids.len(), 3);
        for &eid in &group.entity_ids {
            assert_eq!(w.entities[eid].name, "Wei Wang");
            assert!(w.entities[eid].planted);
        }
        // Planted reference counts are exact (Table 1 fidelity).
        for (k, &eid) in group.entity_ids.iter().enumerate() {
            let want = w.config.ambiguous[0].refs_per_entity[k];
            let got = w.refs_of(eid);
            assert_eq!(got, want, "entity {eid}");
        }
    }

    #[test]
    fn planted_entities_get_distinct_communities() {
        let w = tiny_world();
        let group = &w.ambiguous_groups[0];
        let comms: std::collections::HashSet<usize> = group
            .entity_ids
            .iter()
            .map(|&e| w.entities[e].community)
            .collect();
        // 3 entities, 6 communities -> all distinct.
        assert_eq!(comms.len(), 3);
    }

    #[test]
    fn every_entity_reaches_its_budget() {
        let w = tiny_world();
        for e in &w.entities {
            let got = w.refs_of(e.id);
            assert!(
                got >= e.target_refs,
                "entity {} got {got} < {}",
                e.id,
                e.target_refs
            );
        }
    }

    #[test]
    fn bylines_have_no_duplicates() {
        let w = tiny_world();
        for p in &w.papers {
            let set: std::collections::HashSet<_> = p.authors.iter().collect();
            assert_eq!(
                set.len(),
                p.authors.len(),
                "paper {} byline {:?}",
                p.id,
                p.authors
            );
            assert!(!p.authors.is_empty());
        }
    }

    #[test]
    fn coauthorship_is_community_dominated() {
        let w = tiny_world();
        let mut same = 0usize;
        let mut cross = 0usize;
        for p in &w.papers {
            let lead_comm = w.entities[p.authors[0]].community;
            for &a in &p.authors[1..] {
                if w.entities[a].community == lead_comm {
                    same += 1;
                } else {
                    cross += 1;
                }
            }
        }
        assert!(same > 3 * cross, "same {same}, cross {cross}");
    }

    #[test]
    fn venues_are_community_dominated() {
        let w = tiny_world();
        let mut preferred = 0usize;
        let mut other = 0usize;
        for p in &w.papers {
            let lead_comm = w.entities[p.authors[0]].community;
            if w.community_venues[lead_comm].contains(&p.venue) {
                preferred += 1;
            } else {
                other += 1;
            }
        }
        assert!(
            preferred > 2 * other,
            "preferred {preferred}, other {other}"
        );
    }

    #[test]
    fn years_within_range() {
        let w = tiny_world();
        let (lo, hi) = w.config.year_range;
        assert!(w.papers.iter().all(|p| (lo..=hi).contains(&p.year)));
    }

    #[test]
    fn titles_are_unique() {
        let w = tiny_world();
        let set: std::collections::HashSet<&str> =
            w.papers.iter().map(|p| p.title.as_str()).collect();
        assert_eq!(set.len(), w.papers.len());
    }

    #[test]
    fn community_members_listing() {
        let w = tiny_world();
        let all: usize = (0..w.config.n_communities)
            .map(|c| w.community_members(c).len())
            .sum();
        assert_eq!(all, w.entities.len());
    }

    #[test]
    fn reference_count_sums_bylines() {
        let w = tiny_world();
        let total: usize = w.papers.iter().map(|p| p.authors.len()).sum();
        assert_eq!(w.reference_count(), total);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// Small random-but-valid configurations.
        fn arbitrary_config() -> impl Strategy<Value = WorldConfig> {
            (
                any::<u64>(),
                20usize..80,                                   // authors
                2usize..8,                                     // communities
                1usize..3,                                     // venues per community
                0.0f64..0.9,                                   // repeat collaborator
                0.0f64..0.4,                                   // cross community
                0.3f64..1.0,                                   // venue affinity
                proptest::option::of((2usize..5, 3usize..12)), // ambiguous spec
            )
                .prop_map(
                    |(seed, authors, comms, vpc, repeat, cross, affinity, amb)| WorldConfig {
                        seed,
                        n_authors: authors,
                        n_venues: (comms * vpc).max(4) + 4,
                        n_communities: comms,
                        venues_per_community: vpc,
                        repeat_collaborator_prob: repeat,
                        cross_community_prob: cross,
                        venue_affinity: affinity,
                        mean_papers_per_author: 4.0,
                        first_name_pool: 30,
                        last_name_pool: 60,
                        ambiguous: amb
                            .map(|(entities, per)| {
                                vec![AmbiguousSpec::new("Test Name", vec![per; entities])]
                            })
                            .unwrap_or_default(),
                        ..Default::default()
                    },
                )
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]

            #[test]
            fn generated_worlds_satisfy_invariants(config in arbitrary_config()) {
                config.validate().unwrap();
                let w = World::generate(config.clone());
                // Every entity reaches its reference budget; planted ones
                // exactly.
                for e in &w.entities {
                    let got = w.refs_of(e.id);
                    if e.planted {
                        prop_assert_eq!(got, e.target_refs, "planted entity {}", e.id);
                    } else {
                        prop_assert!(got >= e.target_refs);
                    }
                }
                // Bylines are duplicate-free and non-empty; years in the
                // lead author's window.
                for p in &w.papers {
                    prop_assert!(!p.authors.is_empty());
                    let set: std::collections::HashSet<_> = p.authors.iter().collect();
                    prop_assert_eq!(set.len(), p.authors.len());
                    let (lo, hi) = w.entities[p.authors[0]].active_years;
                    prop_assert!((lo..=hi).contains(&p.year));
                    prop_assert!(p.venue < w.venues.len());
                }
                // The catalog emits with referential integrity.
                let d = crate::dblp::to_catalog(&w).unwrap();
                prop_assert!(d.catalog.is_finalized());
                prop_assert_eq!(
                    d.publish_entities.len(),
                    d.catalog.relation(d.publish).len()
                );
            }

            #[test]
            fn generation_is_deterministic_for_any_config(config in arbitrary_config()) {
                let a = World::generate(config.clone());
                let b = World::generate(config);
                prop_assert_eq!(a.papers.len(), b.papers.len());
                for (x, y) in a.papers.iter().zip(&b.papers) {
                    prop_assert_eq!(&x.authors, &y.authors);
                    prop_assert_eq!(x.venue, y.venue);
                }
            }
        }
    }
}

//! Minimal CSV import/export for relations.
//!
//! Supports RFC-4180-style quoting (fields containing commas, quotes, or
//! newlines are wrapped in double quotes; embedded quotes are doubled).
//! A bare empty field parses as `Null`; a quoted empty field (`""`) is the
//! empty string — the distinction keeps arbitrary data round-trippable.

use crate::error::{Result, StoreError};
use crate::relation::Relation;
use crate::tuple::Tuple;
use crate::value::{AttrType, Value};

/// One parsed field: its text plus whether any part of it was quoted
/// (distinguishes a bare empty field, i.e. `Null`, from `""`).
#[derive(Debug, Clone, PartialEq, Eq)]
struct Field {
    text: String,
    quoted: bool,
}

/// Split one CSV document into records of fields, honoring quotes.
fn parse_records(text: &str) -> Result<Vec<Vec<Field>>> {
    let mut records = Vec::new();
    let mut field = String::new();
    let mut quoted = false;
    let mut record: Vec<Field> = Vec::new();
    let mut in_quotes = false;
    let mut chars = text.chars().peekable();
    let mut line = 1usize;

    let take = |field: &mut String, quoted: &mut bool| Field {
        text: std::mem::take(field),
        quoted: std::mem::take(quoted),
    };

    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                '\n' => {
                    line += 1;
                    field.push(c);
                }
                _ => field.push(c),
            }
        } else {
            match c {
                '"' => {
                    if !field.is_empty() {
                        return Err(StoreError::Csv {
                            line,
                            reason: "quote inside unquoted field".into(),
                        });
                    }
                    in_quotes = true;
                    quoted = true;
                }
                ',' => {
                    record.push(take(&mut field, &mut quoted));
                }
                '\r' => {} // tolerate CRLF
                '\n' => {
                    line += 1;
                    record.push(take(&mut field, &mut quoted));
                    records.push(std::mem::take(&mut record));
                }
                _ => field.push(c),
            }
        }
    }
    if in_quotes {
        return Err(StoreError::Csv {
            line,
            reason: "unterminated quoted field".into(),
        });
    }
    if !field.is_empty() || quoted || !record.is_empty() {
        record.push(take(&mut field, &mut quoted));
        records.push(record);
    }
    // Drop fully empty trailing records (blank lines).
    records.retain(|r| !matches!(r.as_slice(), [f] if f.text.is_empty() && !f.quoted));
    Ok(records)
}

/// Parse one field into a typed value. A bare empty field is `Null`; a
/// quoted empty field is the empty string (Str only).
fn parse_value(field: &Field, ty: AttrType, line: usize) -> Result<Value> {
    if field.text.is_empty() && !field.quoted {
        return Ok(Value::Null);
    }
    let field = field.text.as_str();
    match ty {
        AttrType::Int => field
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|_| StoreError::Csv {
                line,
                reason: format!("`{field}` is not an integer"),
            }),
        AttrType::Float => field
            .parse::<f64>()
            .map(Value::Float)
            .map_err(|_| StoreError::Csv {
                line,
                reason: format!("`{field}` is not a float"),
            }),
        AttrType::Bool => match field {
            "true" | "1" => Ok(Value::Bool(true)),
            "false" | "0" => Ok(Value::Bool(false)),
            _ => Err(StoreError::Csv {
                line,
                reason: format!("`{field}` is not a bool"),
            }),
        },
        AttrType::Str => Ok(Value::str(field)),
    }
}

/// Load CSV text (with a header row naming attributes, in any order) into an
/// existing relation.
///
/// Returns the number of tuples inserted.
pub fn load_csv(relation: &mut Relation, text: &str) -> Result<usize> {
    let records = parse_records(text)?;
    let Some((header, rows)) = records.split_first() else {
        return Ok(0);
    };
    // Map CSV columns to schema attribute positions.
    let mut mapping = Vec::with_capacity(header.len());
    for name in header {
        let idx = relation.schema().attr_index(&name.text).ok_or_else(|| {
            StoreError::UnknownAttribute {
                relation: relation.name().to_string(),
                attribute: name.text.clone(),
            }
        })?;
        mapping.push(idx);
    }
    if mapping.len() != relation.schema().arity() {
        return Err(StoreError::ArityMismatch {
            relation: relation.name().to_string(),
            expected: relation.schema().arity(),
            got: mapping.len(),
        });
    }
    let mut inserted = 0usize;
    for (i, row) in rows.iter().enumerate() {
        let line = i + 2;
        if row.len() != mapping.len() {
            return Err(StoreError::Csv {
                line,
                reason: format!("expected {} fields, got {}", mapping.len(), row.len()),
            });
        }
        let mut values = vec![Value::Null; relation.schema().arity()];
        for (col, field) in row.iter().enumerate() {
            let attr = mapping[col];
            let ty = relation.schema().attributes[attr].ty;
            values[attr] = parse_value(field, ty, line)?;
        }
        relation.insert(Tuple::new(values))?;
        inserted += 1;
    }
    Ok(inserted)
}

/// Quote a field if needed (empty strings are quoted so they stay
/// distinguishable from `Null`'s bare empty field).
fn escape(field: &str) -> String {
    if field.is_empty() {
        "\"\"".to_string()
    } else if field.contains(',')
        || field.contains('"')
        || field.contains('\n')
        || field.contains('\r')
    {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Serialize a relation to CSV text, header first, `Null` as the empty field.
pub fn to_csv(relation: &Relation) -> String {
    let mut out = String::new();
    let header: Vec<String> = relation
        .schema()
        .attributes
        .iter()
        .map(|a| escape(&a.name))
        .collect();
    out.push_str(&header.join(","));
    out.push('\n');
    for (_, t) in relation.iter() {
        let row: Vec<String> = t
            .values()
            .iter()
            .map(|v| {
                if v.is_null() {
                    String::new()
                } else {
                    escape(&v.to_string())
                }
            })
            .collect();
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::SchemaBuilder;
    use crate::tuple::TupleId;

    fn relation() -> Relation {
        Relation::new(
            SchemaBuilder::new("Papers")
                .key("paper", AttrType::Int)
                .data("title", AttrType::Str)
                .data("year", AttrType::Int)
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn load_simple_csv() {
        let mut r = relation();
        let n = load_csv(
            &mut r,
            "paper,title,year\n1,Mining Streams,2002\n2,Graph Joins,2003\n",
        )
        .unwrap();
        assert_eq!(n, 2);
        assert_eq!(r.tuple(TupleId(0)).get(1).as_str(), Some("Mining Streams"));
        assert_eq!(r.tuple(TupleId(1)).get(2).as_int(), Some(2003));
    }

    #[test]
    fn header_order_can_differ_from_schema() {
        let mut r = relation();
        load_csv(&mut r, "year,paper,title\n1999,7,Cubes\n").unwrap();
        assert_eq!(r.tuple(TupleId(0)).get(0).as_int(), Some(7));
        assert_eq!(r.tuple(TupleId(0)).get(1).as_str(), Some("Cubes"));
        assert_eq!(r.tuple(TupleId(0)).get(2).as_int(), Some(1999));
    }

    #[test]
    fn quoted_fields_with_commas_and_quotes() {
        let mut r = relation();
        load_csv(
            &mut r,
            "paper,title,year\n1,\"Mining, with \"\"Noise\"\"\",2004\n",
        )
        .unwrap();
        assert_eq!(
            r.tuple(TupleId(0)).get(1).as_str(),
            Some("Mining, with \"Noise\"")
        );
    }

    #[test]
    fn empty_field_is_null() {
        let mut r = relation();
        load_csv(&mut r, "paper,title,year\n1,,2004\n").unwrap();
        assert!(r.tuple(TupleId(0)).get(1).is_null());
    }

    #[test]
    fn bad_int_reports_line() {
        let mut r = relation();
        let e = load_csv(&mut r, "paper,title,year\n1,T,xx\n").unwrap_err();
        match e {
            StoreError::Csv { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn unknown_header_rejected() {
        let mut r = relation();
        let e = load_csv(&mut r, "paper,nope,year\n1,T,2000\n").unwrap_err();
        assert!(matches!(e, StoreError::UnknownAttribute { .. }));
    }

    #[test]
    fn missing_column_rejected() {
        let mut r = relation();
        let e = load_csv(&mut r, "paper,title\n1,T\n").unwrap_err();
        assert!(matches!(e, StoreError::ArityMismatch { .. }));
    }

    #[test]
    fn ragged_row_rejected() {
        let mut r = relation();
        let e = load_csv(&mut r, "paper,title,year\n1,T\n").unwrap_err();
        assert!(matches!(e, StoreError::Csv { .. }));
    }

    #[test]
    fn unterminated_quote_rejected() {
        let mut r = relation();
        let e = load_csv(&mut r, "paper,title,year\n1,\"T,2000\n").unwrap_err();
        assert!(matches!(e, StoreError::Csv { .. }));
    }

    #[test]
    fn round_trip() {
        let mut r = relation();
        let src = "paper,title,year\n1,\"A, B\",2000\n2,,1999\n3,\"say \"\"hi\"\"\",2001\n";
        load_csv(&mut r, src).unwrap();
        let emitted = to_csv(&r);
        let mut r2 = relation();
        load_csv(&mut r2, &emitted).unwrap();
        assert_eq!(r2.len(), r.len());
        for i in 0..r.len() {
            assert_eq!(r.tuple(TupleId(i as u32)), r2.tuple(TupleId(i as u32)));
        }
    }

    #[test]
    fn crlf_and_blank_lines_tolerated() {
        let mut r = relation();
        let n = load_csv(&mut r, "paper,title,year\r\n1,T,2000\r\n\r\n").unwrap();
        assert_eq!(n, 1);
    }

    #[test]
    fn empty_document() {
        let mut r = relation();
        assert_eq!(load_csv(&mut r, "").unwrap(), 0);
    }
}

//! Criterion bench: synthetic world generation and catalog emission.

use criterion::{criterion_group, criterion_main, Criterion};
use datagen::{to_catalog, World, WorldConfig};
use std::hint::black_box;

fn bench_datagen(c: &mut Criterion) {
    let mut group = c.benchmark_group("datagen");
    group.sample_size(10);
    group.bench_function("generate_tiny_world", |b| {
        b.iter(|| black_box(World::generate(WorldConfig::tiny(5)).papers.len()))
    });
    group.bench_function("generate_default_world", |b| {
        b.iter(|| {
            let config = WorldConfig {
                ambiguous: WorldConfig::table1_ambiguous(),
                ..Default::default()
            };
            black_box(World::generate(config).papers.len())
        })
    });
    group.bench_function("emit_catalog_tiny", |b| {
        let world = World::generate(WorldConfig::tiny(5));
        b.iter(|| black_box(to_catalog(&world).unwrap().catalog.tuple_count()))
    });
    group.finish();
}

criterion_group!(benches, bench_datagen);
criterion_main!(benches);

//! # relstore — in-memory relational database substrate
//!
//! The relational foundation of the DISTINCT reproduction (Yin, Han, Yu,
//! *Object Distinction*, ICDE 2007). DISTINCT assumes "the data is stored
//! in a relational database"; this crate is that database:
//!
//! * typed [`Value`]s, [`Tuple`]s, and [`RelationSchema`]s with keys and
//!   foreign keys ([`schema`], [`value`], [`mod@tuple`]);
//! * [`Relation`] storage with unique key indexes and secondary hash
//!   indexes ([`relation`]);
//! * a [`Catalog`] linking relations through resolved foreign-key edges,
//!   with forward (many-to-one) and backward (one-to-many) traversal
//!   ([`catalog`]);
//! * the [`JoinPath`] model and exhaustive path enumeration ([`join`]),
//!   plus tuple-level path traversal ([`traverse`]);
//! * attribute-value expansion turning each data value into a pseudo-tuple
//!   ([`expand`], paper §2.1);
//! * CSV import/export ([`csv`]) and whole-catalog persistence
//!   ([`persist`]);
//! * a small relational-algebra query layer ([`query`]): select, project,
//!   equi-join, order, limit.
//!
//! ```
//! use relstore::{Catalog, SchemaBuilder, AttrType, Value};
//!
//! let mut db = Catalog::new();
//! db.add_relation(SchemaBuilder::new("Venues").key("venue", AttrType::Str).build()?)?;
//! db.add_relation(
//!     SchemaBuilder::new("Papers")
//!         .key("paper", AttrType::Int)
//!         .fk("venue", AttrType::Str, "Venues")
//!         .build()?,
//! )?;
//! db.insert("Venues", [Value::str("VLDB")].into())?;
//! db.insert("Papers", [Value::Int(1), Value::str("VLDB")].into())?;
//! db.finalize(true)?;
//! assert_eq!(db.fk_edges().len(), 1);
//! # Ok::<(), relstore::StoreError>(())
//! ```

#![warn(missing_docs)]

pub mod catalog;
pub mod csv;
pub mod error;
pub mod expand;
pub mod faults;
pub mod fxhash;
pub mod join;
pub mod persist;
pub mod query;
pub mod relation;
pub mod schema;
pub mod traverse;
pub mod tuple;
pub mod value;

pub use catalog::{Catalog, FkEdge, FkId};
pub use error::{Result, StoreError};
pub use expand::{expand_values, Expanded, ExpandedAttr};
pub use faults::{Fault, FaultKind, FaultPlan, FaultyVfs, StdVfs, Vfs};
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use join::{enumerate_paths, Direction, JoinPath, JoinStep, PathEnumOptions};
pub use persist::{
    fnv1a64, load_catalog, load_catalog_with, save_catalog, save_catalog_with, write_atomic,
    Manifest, ManifestEntry,
};
pub use query::{Predicate, Query, Rows};
pub use relation::Relation;
pub use schema::{AttrRole, Attribute, RelationSchema, SchemaBuilder};
pub use traverse::{path_tuple_set, path_tuples, step_fanout, step_tuples};
pub use tuple::{RelId, Tuple, TupleId, TupleRef};
pub use value::{AttrType, Value};

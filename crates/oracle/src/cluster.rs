//! Naive agglomerative clustering with from-scratch cluster similarities
//! (paper §4).
//!
//! Every round rescans **all** live cluster pairs, recomputing each
//! pair's composite similarity from scratch over the explicit member
//! lists — the O(n³)-and-worse textbook algorithm, with none of the
//! production engine's incremental pair-sum maintenance or lazy max-heap.
//!
//! The merge *decisions* replicate the production engine's deterministic
//! tie-breaking exactly, so that dendrograms can be compared merge by
//! merge:
//!
//! * a pair is a merge candidate iff its similarity is non-NaN and
//!   `>= min_sim`;
//! * the best candidate maximizes similarity under `f64::total_cmp`;
//! * ties go to the smallest *candidate key*, where a pair of leaf
//!   clusters `x < y < n` has key `(x, y)` but any pair involving a
//!   merged cluster has key `(max, min)` — the production heap stores
//!   seeded pairs as `(a, b)` with `a < b` and merge-generated pairs as
//!   `(into, other)` with `other < into`, and compares those tuples
//!   lexicographically;
//! * cluster ids follow the dendrogram convention: leaves `0..n`, the
//!   k-th merge creates id `n + k`;
//! * labels are dense, in order of first appearance over items `0..n`.

use crate::engine::{Composite, Measure};

/// One merge event, mirroring the production dendrogram record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OracleMerge {
    /// First merged cluster id, as the production candidate stores it.
    pub a: usize,
    /// Second merged cluster id.
    pub b: usize,
    /// Similarity at which the merge happened.
    pub similarity: f64,
    /// Id of the created cluster (`n + merge index`).
    pub into: usize,
    /// Size of the created cluster.
    pub size: usize,
}

/// Result of a naive clustering run.
#[derive(Debug, Clone)]
pub struct OracleClustering {
    /// Label per item (dense, in order of first appearance).
    pub labels: Vec<usize>,
    /// Full merge history, in merge order.
    pub merges: Vec<OracleMerge>,
}

impl OracleClustering {
    /// Number of clusters.
    pub fn cluster_count(&self) -> usize {
        self.labels.iter().copied().max().map_or(0, |m| m + 1)
    }
}

/// The candidate key the production heap would order this pair by.
fn candidate_key(n_leaves: usize, x: usize, y: usize) -> (usize, usize) {
    let (lo, hi) = if x < y { (x, y) } else { (y, x) };
    if hi >= n_leaves {
        (hi, lo)
    } else {
        (lo, hi)
    }
}

/// Composite similarity between two clusters, recomputed from scratch
/// over the member lists (§4): Average-Link resemblance and collective
/// random walk probability, combined per the configured measure.
fn cluster_similarity(
    members_a: &[usize],
    members_b: &[usize],
    resem: &[Vec<f64>],
    dwalk: &[Vec<f64>],
    measure: Measure,
    composite: Composite,
) -> f64 {
    let (na, nb) = (members_a.len() as f64, members_b.len() as f64);
    let mut r_sum = 0.0;
    let mut a_to_b = 0.0;
    let mut b_to_a = 0.0;
    for &x in members_a {
        for &y in members_b {
            r_sum += resem[x][y];
            a_to_b += dwalk[x][y];
            b_to_a += dwalk[y][x];
        }
    }
    let avg_resem = r_sum / (na * nb);
    let collective_walk = 0.5 * (a_to_b / na + b_to_a / nb);
    match measure {
        Measure::SetResemblance => avg_resem,
        Measure::RandomWalk => collective_walk,
        Measure::Combined => match composite {
            Composite::Geometric => (avg_resem * collective_walk).sqrt(),
            Composite::Arithmetic => 0.5 * (avg_resem + collective_walk),
        },
    }
}

/// Agglomerate `n` leaf items given their pairwise leaf tables.
///
/// `resem[i][j]` is the weighted leaf resemblance (symmetric) and
/// `dwalk[i][j]` the weighted *directed* walk probability `i → j`; both
/// are `n × n` with irrelevant diagonals. Merging stops when no live pair
/// reaches `min_sim`.
pub fn naive_agglomerate(
    n: usize,
    resem: &[Vec<f64>],
    dwalk: &[Vec<f64>],
    measure: Measure,
    composite: Composite,
    min_sim: f64,
) -> OracleClustering {
    // clusters[id] = Some(member list) while alive; merges push new ids.
    let mut clusters: Vec<Option<Vec<usize>>> = (0..n).map(|i| Some(vec![i])).collect();
    let mut merges: Vec<OracleMerge> = Vec::new();
    loop {
        let live: Vec<usize> = (0..clusters.len())
            .filter(|&id| clusters[id].is_some())
            .collect();
        // Full rescan: best (similarity, then smallest candidate key) pair.
        let mut best: Option<(f64, (usize, usize))> = None;
        for (i, &x) in live.iter().enumerate() {
            for &y in &live[i + 1..] {
                let sim = cluster_similarity(
                    // distinct-lint: allow(D002, reason="live holds exactly the indices whose cluster slot is Some; the oracle is test-only and must crash loudly on contract violations")
                    clusters[x].as_ref().unwrap(),
                    // distinct-lint: allow(D002, reason="live holds exactly the indices whose cluster slot is Some; the oracle is test-only and must crash loudly on contract violations")
                    clusters[y].as_ref().unwrap(),
                    resem,
                    dwalk,
                    measure,
                    composite,
                );
                if sim.is_nan() || sim < min_sim {
                    continue;
                }
                let key = candidate_key(n, x, y);
                let better = match &best {
                    None => true,
                    Some((bs, bk)) => match sim.total_cmp(bs) {
                        std::cmp::Ordering::Greater => true,
                        std::cmp::Ordering::Less => false,
                        std::cmp::Ordering::Equal => key < *bk,
                    },
                };
                if better {
                    best = Some((sim, key));
                }
            }
        }
        let Some((sim, (a, b))) = best else { break };
        let mut members = clusters[a].take().unwrap(); // distinct-lint: allow(D002, reason="best was chosen over pairs of live indices, whose slots are Some; the oracle is test-only and must crash loudly")
        members.extend(clusters[b].take().unwrap()); // distinct-lint: allow(D002, reason="best was chosen over pairs of live indices, whose slots are Some; the oracle is test-only and must crash loudly")
        let into = clusters.len();
        merges.push(OracleMerge {
            a,
            b,
            similarity: sim,
            into,
            size: members.len(),
        });
        clusters.push(Some(members));
    }

    // Dense labels in item order of first appearance (the production
    // dendrogram-cut convention).
    let mut root_of = vec![usize::MAX; n];
    for (id, c) in clusters.iter().enumerate() {
        if let Some(members) = c {
            for &i in members {
                root_of[i] = id;
            }
        }
    }
    let mut labels = vec![usize::MAX; n];
    let mut seen: Vec<usize> = Vec::new();
    for i in 0..n {
        let root = root_of[i];
        let label = match seen.iter().position(|&r| r == root) {
            Some(l) => l,
            None => {
                seen.push(root);
                seen.len() - 1
            }
        };
        labels[i] = label;
    }
    OracleClustering { labels, merges }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(n: usize, entries: &[(usize, usize, f64)]) -> Vec<Vec<f64>> {
        let mut m = vec![vec![0.0; n]; n];
        for &(i, j, v) in entries {
            m[i][j] = v;
            m[j][i] = v;
        }
        m
    }

    #[test]
    fn two_tight_pairs_cluster_and_ids_follow_convention() {
        // Resemblance-only: pairs (0,1) at 0.9 and (2,3) at 0.8.
        let resem = sym(4, &[(0, 1, 0.9), (2, 3, 0.8)]);
        let dwalk = vec![vec![0.0; 4]; 4];
        let c = naive_agglomerate(
            4,
            &resem,
            &dwalk,
            Measure::SetResemblance,
            Composite::Geometric,
            0.5,
        );
        assert_eq!(c.labels, vec![0, 0, 1, 1]);
        assert_eq!(c.merges.len(), 2);
        assert_eq!((c.merges[0].a, c.merges[0].b, c.merges[0].into), (0, 1, 4));
        assert_eq!((c.merges[1].a, c.merges[1].b, c.merges[1].into), (2, 3, 5));
        assert!((c.merges[0].similarity - 0.9).abs() < 1e-15);
        assert_eq!(c.merges[1].size, 2);
    }

    #[test]
    fn ties_break_toward_the_smallest_pair() {
        // (0,1) and (2,3) tie at 0.7: (0,1) must merge first.
        let resem = sym(4, &[(0, 1, 0.7), (2, 3, 0.7)]);
        let dwalk = vec![vec![0.0; 4]; 4];
        let c = naive_agglomerate(
            4,
            &resem,
            &dwalk,
            Measure::SetResemblance,
            Composite::Geometric,
            0.5,
        );
        assert_eq!((c.merges[0].a, c.merges[0].b), (0, 1));
        assert_eq!((c.merges[1].a, c.merges[1].b), (2, 3));
    }

    #[test]
    fn average_link_is_recomputed_over_members() {
        // 0-1 merge first (0.9); cluster {0,1} vs 2 averages 0.6 and 0.2.
        let resem = sym(3, &[(0, 1, 0.9), (0, 2, 0.6), (1, 2, 0.2)]);
        let dwalk = vec![vec![0.0; 3]; 3];
        let c = naive_agglomerate(
            3,
            &resem,
            &dwalk,
            Measure::SetResemblance,
            Composite::Geometric,
            0.3,
        );
        assert_eq!(c.merges.len(), 2);
        assert!((c.merges[1].similarity - 0.4).abs() < 1e-15);
        assert_eq!((c.merges[1].a, c.merges[1].b), (3, 2));
        assert_eq!(c.labels, vec![0, 0, 0]);
    }

    #[test]
    fn geometric_composite_vetoes_on_zero_walk() {
        // Positive resemblance but zero walk: geometric mean is 0, so no
        // merge happens under a positive threshold.
        let resem = sym(2, &[(0, 1, 0.9)]);
        let dwalk = vec![vec![0.0; 2]; 2];
        let c = naive_agglomerate(
            2,
            &resem,
            &dwalk,
            Measure::Combined,
            Composite::Geometric,
            0.01,
        );
        assert_eq!(c.cluster_count(), 2);
        // Arithmetic composite still merges: 0.5 · 0.9 = 0.45.
        let c = naive_agglomerate(
            2,
            &resem,
            &dwalk,
            Measure::Combined,
            Composite::Arithmetic,
            0.01,
        );
        assert_eq!(c.cluster_count(), 1);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let c = naive_agglomerate(0, &[], &[], Measure::Combined, Composite::Geometric, 0.5);
        assert!(c.labels.is_empty());
        assert_eq!(c.cluster_count(), 0);
        let c = naive_agglomerate(
            1,
            &[vec![0.0]],
            &[vec![0.0]],
            Measure::Combined,
            Composite::Geometric,
            0.5,
        );
        assert_eq!(c.labels, vec![0]);
    }
}

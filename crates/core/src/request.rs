//! Unified request builders for the pipeline entry points.
//!
//! One resolution used to mean picking among six `resolve*` methods whose
//! names encoded which options were set. A [`ResolveRequest`] carries the
//! options instead — threshold override, user constraints, execution
//! limits, worker threads — and a single [`crate::Distinct::resolve`]
//! consumes it. [`TrainRequest`] does the same for training. Both builders
//! borrow their inputs, so building a request allocates nothing beyond the
//! constraint lists.
//!
//! ```text
//! let outcome = engine.resolve(&ResolveRequest::new(&refs)
//!     .min_sim(0.01)
//!     .control(&ctl)
//!     .threads(4));
//! ```

use crate::control::RunControl;
use relgraph::{ConfigError, Resemblance};
use relstore::TupleRef;
use std::path::Path;
use std::time::Duration;

/// Statistics of one pipeline stage, for speedup reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StageStats {
    /// Work items the stage set out to process (references, pairs, ...).
    pub tasks: usize,
    /// Items actually processed (equals `tasks` for complete runs).
    pub completed: usize,
    /// Worker threads used (1 = inline on the calling thread).
    pub threads: usize,
    /// Wall-clock time of the stage.
    pub wall: Duration,
    /// Logical-clock time of the stage: [`RunControl`] work units charged
    /// while it ran. Unlike `wall` this is deterministic for a given
    /// input, so benchmark deltas can separate algorithmic work from
    /// machine noise.
    pub logical: u64,
}

impl From<exec::ParStats> for StageStats {
    fn from(s: exec::ParStats) -> Self {
        StageStats {
            tasks: s.tasks,
            completed: s.completed,
            threads: s.threads,
            wall: s.wall,
            logical: 0,
        }
    }
}

/// Per-stage execution statistics of one pipeline run.
///
/// Stages that did not run (e.g. `clustering` in a training report) are
/// left at their zeroed default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecReport {
    /// Profile construction (tasks = references profiled, cached ones
    /// excluded).
    pub profiles: StageStats,
    /// Pairwise similarity features (tasks = reference or training pairs).
    pub similarity: StageStats,
    /// Clustering (tasks = candidate pairs seeded; wall covers the whole
    /// agglomeration including the sequential merge loop).
    pub clustering: StageStats,
    /// Peak resident set size of the process in bytes when the run
    /// finished (`/proc/self/status` VmHWM), `0` where unavailable.
    /// Process-wide, so concurrent runs share one high-water mark.
    pub peak_rss_bytes: u64,
    /// Similarity kernel units scheduled: one unit is one (unordered
    /// reference pair, join path) evaluation covering the pair's
    /// resemblance and both directed walks along that path. Equals
    /// `pairs × paths` whenever the similarity stage ran to completion.
    pub pairs_total: u64,
    /// Kernel units the pruned engine skipped because every kernel value
    /// was provably exactly zero (sketch or support-overlap certificate).
    /// Always `0` under [`relgraph::Resemblance::Exact`]. Invariant:
    /// `pairs_pruned + pairs_exact == pairs_total`.
    pub pairs_pruned: u64,
    /// Kernel units whose exact merge-join kernels were evaluated (or
    /// reused from a content-identical row pair).
    pub pairs_exact: u64,
    /// Kernel units copied verbatim from the tables of a previous resolve
    /// of the same name (incremental requests only; a cold run reports
    /// `0`). Invariant: `pairs_pruned + pairs_exact + pairs_cached ==
    /// pairs_total`.
    pub pairs_cached: u64,
    /// Kernel units an incremental resolve had to re-score because an
    /// update changed at least one endpoint's neighborhood. Always `≤
    /// pairs_total` and `0` for batch runs; the headline delta-engine
    /// claim is `pairs_dirty ≪ pairs_total`.
    pub pairs_dirty: u64,
    /// Distinct reference names whose cached state the triggering updates
    /// invalidated (incremental requests only, `0` for batch runs).
    pub names_affected: u64,
    /// Distinct neighbor-set rows interned into per-path `SetArena`s
    /// during this run. A warm incremental resolve that re-uses its cached
    /// tables reports `0` — the regression guard for the
    /// arena-rebuild-per-call waste.
    pub arena_rows_interned: u64,
}

impl ExecReport {
    /// Total wall-clock time across the tracked stages.
    pub fn total_wall(&self) -> Duration {
        self.profiles.wall + self.similarity.wall + self.clustering.wall
    }

    /// Total logical-clock work units across the tracked stages.
    pub fn total_logical(&self) -> u64 {
        self.profiles.logical + self.similarity.logical + self.clustering.logical
    }

    /// The widest thread count any stage used.
    pub fn max_threads(&self) -> usize {
        self.profiles
            .threads
            .max(self.similarity.threads)
            .max(self.clustering.threads)
    }
}

/// A resolution request: which references to cluster, under which options.
///
/// Defaults reproduce the plain `resolve` of earlier versions: the
/// engine's configured `min_sim`, no constraints, no execution limits, and
/// the engine's configured thread count.
#[derive(Debug, Clone, Default)]
pub struct ResolveRequest<'a> {
    pub(crate) refs: &'a [TupleRef],
    pub(crate) min_sim: Option<f64>,
    pub(crate) must_link: Vec<(usize, usize)>,
    pub(crate) cannot_link: Vec<(usize, usize)>,
    pub(crate) control: Option<&'a RunControl>,
    pub(crate) threads: Option<usize>,
    pub(crate) run_dir: Option<&'a Path>,
    pub(crate) resemblance: Resemblance,
    pub(crate) incremental: bool,
}

impl<'a> ResolveRequest<'a> {
    /// A request to cluster `refs` with all options at their defaults.
    pub fn new(refs: &'a [TupleRef]) -> Self {
        ResolveRequest {
            refs,
            ..Default::default()
        }
    }

    /// A request that reuses the engine's cached per-name similarity
    /// tables, re-scoring only the pairs that
    /// [`crate::Distinct::apply_updates`] dirtied and repairing the
    /// dendrogram component-locally. `refs` must be exactly the engine's
    /// current reference set for one name (in tuple order); anything else —
    /// or a cold cache — falls back to the batch path, so results are
    /// always identical to [`ResolveRequest::new`] up to merge order.
    pub fn incremental(refs: &'a [TupleRef]) -> Self {
        ResolveRequest {
            refs,
            incremental: true,
            ..Default::default()
        }
    }

    /// Whether this request opted into the incremental path.
    pub fn is_incremental(&self) -> bool {
        self.incremental
    }

    /// Override the clustering threshold for this run only (the baselines'
    /// per-method threshold sweep in Fig. 4).
    pub fn min_sim(mut self, min_sim: f64) -> Self {
        self.min_sim = Some(min_sim);
        self
    }

    /// Require the referenced pairs (indexes into `refs`) to end up in the
    /// same cluster. Semantics follow [`cluster::ConstrainedMerger`].
    pub fn must_link(mut self, pairs: &[(usize, usize)]) -> Self {
        self.must_link.extend_from_slice(pairs);
        self
    }

    /// Forbid the referenced pairs (indexes into `refs`) from sharing a
    /// cluster; vetoes propagate across merges.
    pub fn cannot_link(mut self, pairs: &[(usize, usize)]) -> Self {
        self.cannot_link.extend_from_slice(pairs);
        self
    }

    /// Run under execution limits: cancellation, deadline, and work budget
    /// are honored at chunk boundaries, degrading gracefully (see
    /// [`crate::Degraded`]).
    pub fn control(mut self, ctl: &'a RunControl) -> Self {
        self.control = Some(ctl);
        self
    }

    /// Worker threads for this run, overriding
    /// [`crate::DistinctConfig::threads`]. `0` means "auto" (the
    /// `DISTINCT_THREADS` environment variable if set, else one worker per
    /// core); `1` forces sequential execution. Output is identical for
    /// every value.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Make the run durable: stage checkpoints are committed into
    /// `run_dir`, and a request re-issued over the same directory skips
    /// completed stages and restarts the interrupted one from its last
    /// committed chunk boundary. Consumed by
    /// [`crate::Distinct::resolve_durable`]; the plain
    /// [`crate::Distinct::resolve`] ignores it.
    pub fn resume(mut self, run_dir: &'a Path) -> Self {
        self.run_dir = Some(run_dir);
        self
    }

    /// Select the similarity kernel for this run. The default is
    /// [`Resemblance::Pruned`] with lossless settings — bit-identical
    /// results to [`Resemblance::Exact`], which stays one call away:
    ///
    /// ```text
    /// let req = ResolveRequest::new(&refs)
    ///     .similarity(Resemblance::Exact)?;                 // reference path
    /// let req = ResolveRequest::new(&refs)
    ///     .similarity(Resemblance::Pruned { sketch })?;     // custom sketch
    /// ```
    ///
    /// Invalid sketch parameters surface here as typed
    /// [`ConfigError`]s instead of panicking mid-resolve.
    pub fn similarity(mut self, kernel: Resemblance) -> Result<Self, ConfigError> {
        kernel.validate()?;
        self.resemblance = kernel;
        Ok(self)
    }

    /// The similarity kernel this request will run with.
    pub fn similarity_kernel(&self) -> Resemblance {
        self.resemblance
    }

    /// The run directory set by [`ResolveRequest::resume`], if any.
    pub fn run_dir(&self) -> Option<&Path> {
        self.run_dir
    }

    /// The references this request clusters.
    pub fn refs(&self) -> &[TupleRef] {
        self.refs
    }

    /// Whether any must-link / cannot-link constraint is set.
    pub fn is_constrained(&self) -> bool {
        !self.must_link.is_empty() || !self.cannot_link.is_empty()
    }
}

/// A training request: how to run automatic training-set construction and
/// weight learning. Defaults reproduce the plain `train()`.
#[derive(Debug, Clone, Copy, Default)]
pub struct TrainRequest<'a> {
    pub(crate) control: Option<&'a RunControl>,
    pub(crate) threads: Option<usize>,
}

impl<'a> TrainRequest<'a> {
    /// A request with all options at their defaults.
    pub fn new() -> Self {
        TrainRequest::default()
    }

    /// Run under execution limits. Training cannot degrade gracefully, so
    /// a tripped limit aborts with [`crate::DistinctError::Interrupted`]
    /// and leaves previously installed weights untouched.
    pub fn control(mut self, ctl: &'a RunControl) -> Self {
        self.control = Some(ctl);
        self
    }

    /// Worker threads for the parallel training stages (profile fan-out,
    /// pair featurization); same semantics as
    /// [`ResolveRequest::threads`].
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relstore::{RelId, TupleId};

    #[test]
    fn builder_accumulates_options() {
        let refs = vec![
            TupleRef::new(RelId(0), TupleId(0)),
            TupleRef::new(RelId(0), TupleId(1)),
        ];
        let ctl = RunControl::new();
        let req = ResolveRequest::new(&refs)
            .min_sim(0.25)
            .must_link(&[(0, 1)])
            .cannot_link(&[])
            .control(&ctl)
            .threads(3);
        assert_eq!(req.refs().len(), 2);
        assert_eq!(req.min_sim, Some(0.25));
        assert!(req.is_constrained());
        assert!(req.control.is_some());
        assert_eq!(req.threads, Some(3));

        let bare = ResolveRequest::new(&refs);
        assert!(!bare.is_constrained());
        assert!(bare.min_sim.is_none());
        assert!(bare.threads.is_none());
        // The fast path is the default path.
        assert!(matches!(
            bare.similarity_kernel(),
            Resemblance::Pruned { .. }
        ));
    }

    #[test]
    fn similarity_builder_validates_the_kernel() {
        use relgraph::SketchConfig;
        let refs = vec![TupleRef::new(RelId(0), TupleId(0))];
        let req = ResolveRequest::new(&refs)
            .similarity(Resemblance::Exact)
            .expect("Exact always validates");
        assert_eq!(req.similarity_kernel(), Resemblance::Exact);
        let err = ResolveRequest::new(&refs)
            .similarity(Resemblance::Pruned {
                sketch: SketchConfig {
                    prefix_len: 0,
                    minhash_bits: 9,
                },
            })
            .unwrap_err();
        assert_eq!(err, ConfigError::PrefixLen { got: 0 });
    }

    #[test]
    fn exec_report_aggregates() {
        let r = ExecReport {
            profiles: StageStats {
                tasks: 10,
                completed: 10,
                threads: 4,
                wall: Duration::from_millis(7),
                logical: 100,
            },
            similarity: StageStats {
                tasks: 45,
                completed: 45,
                threads: 2,
                wall: Duration::from_millis(3),
                logical: 45,
            },
            clustering: StageStats::default(),
            peak_rss_bytes: 0,
            pairs_total: 45,
            pairs_pruned: 25,
            pairs_exact: 15,
            pairs_cached: 5,
            pairs_dirty: 15,
            names_affected: 1,
            arena_rows_interned: 12,
        };
        assert_eq!(r.total_wall(), Duration::from_millis(10));
        assert_eq!(r.total_logical(), 145);
        assert_eq!(r.max_threads(), 4);
        assert_eq!(
            r.pairs_pruned + r.pairs_exact + r.pairs_cached,
            r.pairs_total
        );
    }

    #[test]
    fn resume_builder_carries_the_run_dir() {
        let refs = vec![TupleRef::new(RelId(0), TupleId(0))];
        let dir = Path::new("/tmp/run");
        let req = ResolveRequest::new(&refs).resume(dir);
        assert_eq!(req.run_dir(), Some(dir));
        assert!(ResolveRequest::new(&refs).run_dir().is_none());
    }
}

//! The DISTINCT pipeline: prepare → train → resolve.
//!
//! ```text
//! let mut engine = Distinct::prepare(&catalog, "Publish", "author", config)?;
//! engine.train()?;                                  // §3 (or skip: uniform weights)
//! let refs = engine.references_of("Wei Wang");
//! let outcome = engine.resolve(&ResolveRequest::new(&refs));   // §4
//! ```
//!
//! Resolution and training fan their hot stages — profile construction,
//! the pairwise similarity matrix, training-pair featurization — out over
//! an [`exec::Executor`]; output is bit-identical for any thread count
//! (see the `exec` crate docs for the determinism recipe).

use crate::cache::ProfileCache;
use crate::config::{DistinctConfig, WeightingMode};
use crate::control::{InterruptKind, Progress, RunControl, Stage};
use crate::features::{
    build_profile, build_profile_guarded, empty_profile, resemblance_features, walk_features,
    Profile,
};
use crate::learn::{assemble_datasets, learn_weights_guarded, LearnedModel, PathWeights};
use crate::paths::PathSet;
use crate::refcluster::DistinctMerger;
use crate::request::{ExecReport, ResolveRequest, StageStats, TrainRequest};
use crate::training::{
    build_training_set, featurize_pairs, PairFeatures, TrainingError, TrainingSet,
};
use cluster::{agglomerate_exec, Clustering, ConstrainedMerger, Dendrogram, PartialClustering};
use relgraph::LinkGraph;
use relstore::{Catalog, FxHashMap, StoreError, TupleId, TupleRef, Value};
use std::fmt;
use std::sync::Arc;
use std::time::Instant;
use svm::SvmError;

/// Errors surfaced by the pipeline.
#[derive(Debug)]
#[allow(missing_docs)] // variant payloads are self-describing
pub enum DistinctError {
    /// Invalid configuration.
    Config(String),
    /// The reference relation/attribute could not be resolved.
    BadReferenceSpec(String),
    /// Underlying store failure.
    Store(StoreError),
    /// Training-set construction failure.
    Training(TrainingError),
    /// SVM training failure.
    Svm(SvmError),
    /// A [`RunControl`] limit stopped an operation that cannot degrade
    /// gracefully (training must either finish or not install weights).
    Interrupted {
        /// The stage that was running when the limit tripped.
        stage: Stage,
        /// Which limit tripped.
        kind: InterruptKind,
        /// How far the stage had progressed.
        progress: Progress,
    },
    /// A checkpoint file failed integrity or compatibility verification;
    /// nothing was installed (see [`crate::checkpoint`]).
    CorruptCheckpoint {
        /// The offending file.
        path: String,
        /// What failed.
        reason: String,
    },
    /// A checkpoint file declares a format version this build does not
    /// understand. Unlike [`DistinctError::CorruptCheckpoint`] the bytes
    /// are intact — they were written by a different (older or newer)
    /// build and must not be reinterpreted under this build's schema.
    VersionMismatch {
        /// The offending file.
        path: String,
        /// The format version the file declares.
        found: u32,
        /// The format version this build reads and writes.
        expected: u32,
    },
}

impl fmt::Display for DistinctError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistinctError::Config(s) => write!(f, "bad configuration: {s}"),
            DistinctError::BadReferenceSpec(s) => write!(f, "bad reference spec: {s}"),
            DistinctError::Store(e) => write!(f, "store error: {e}"),
            DistinctError::Training(e) => write!(f, "training error: {e}"),
            DistinctError::Svm(e) => write!(f, "svm error: {e}"),
            DistinctError::Interrupted {
                stage,
                kind,
                progress,
            } => {
                write!(f, "interrupted ({kind}) during {stage} at {progress}")
            }
            DistinctError::CorruptCheckpoint { path, reason } => {
                write!(f, "corrupt checkpoint `{path}`: {reason}")
            }
            DistinctError::VersionMismatch {
                path,
                found,
                expected,
            } => write!(
                f,
                "checkpoint `{path}` has format version {found}, this build understands {expected}"
            ),
        }
    }
}

impl std::error::Error for DistinctError {}

impl From<StoreError> for DistinctError {
    fn from(e: StoreError) -> Self {
        DistinctError::Store(e)
    }
}
impl From<TrainingError> for DistinctError {
    fn from(e: TrainingError) -> Self {
        DistinctError::Training(e)
    }
}
impl From<SvmError> for DistinctError {
    fn from(e: SvmError) -> Self {
        DistinctError::Svm(e)
    }
}

/// Attach a stage's logical-clock delta ([`RunControl`] units charged
/// while it ran) to its parallel statistics.
pub(crate) fn stage_stats(par: exec::ParStats, logical: u64) -> StageStats {
    let mut s: StageStats = par.into();
    s.logical = logical;
    s
}

/// How a limited [`Distinct::resolve`] run was degraded by its limits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Degraded {
    /// The stage running when the first limit tripped.
    pub stage: Stage,
    /// Which limit tripped first.
    pub kind: InterruptKind,
    /// Profiles fully computed before profiling was cut off. References
    /// beyond this count were resolved with zero-mass placeholder profiles
    /// and therefore stay singletons.
    pub profiles_computed: usize,
    /// Total references in the resolve call.
    pub refs_total: usize,
    /// Whether the agglomerative merge loop ran to completion. When
    /// `false` the clustering holds only a prefix of the merge sequence —
    /// the highest-similarity merges, since merging is strongest-first.
    pub clustering_completed: bool,
}

impl fmt::Display for Degraded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "degraded ({}) at {}: {}/{} profiles, clustering {}",
            self.kind,
            self.stage,
            self.profiles_computed,
            self.refs_total,
            if self.clustering_completed {
                "completed"
            } else {
                "partial"
            }
        )
    }
}

/// Result of a limit-aware resolution: always a valid clustering over all
/// input references, plus a [`Degraded`] report when a limit tripped.
#[derive(Debug, Clone)]
pub struct ResolveOutcome {
    /// The (possibly partial) clustering; `labels.len()` always equals the
    /// number of input references.
    pub clustering: Clustering,
    /// `None` when the run finished within its limits.
    pub degraded: Option<Degraded>,
    /// Per-stage execution statistics (task counts, threads, wall time).
    pub exec: ExecReport,
}

impl ResolveOutcome {
    /// Whether the run finished within its limits.
    pub fn is_complete(&self) -> bool {
        self.degraded.is_none()
    }
}

/// Summary of a training run.
#[derive(Debug, Clone)]
pub struct TrainingReport {
    /// Names that passed the rare-name uniqueness filter.
    pub unique_names: usize,
    /// Positive / negative pair counts actually used.
    pub positives: usize,
    /// Negative pair count.
    pub negatives: usize,
    /// Training accuracy of the resemblance SVM.
    pub resem_accuracy: f64,
    /// Training accuracy of the walk SVM.
    pub walk_accuracy: f64,
    /// Per-path `(description, resemblance weight, walk weight)`.
    pub path_weights: Vec<(String, f64, f64)>,
    /// Per-stage execution statistics: `profiles` covers the fan-out over
    /// training references, `similarity` the pair featurization;
    /// `clustering` stays zeroed (training does not cluster).
    pub exec: ExecReport,
}

/// The prepared DISTINCT engine.
pub struct Distinct {
    pub(crate) config: DistinctConfig,
    pub(crate) catalog: Catalog,
    pub(crate) graph: LinkGraph,
    pub(crate) paths: PathSet,
    pub(crate) ref_attr_idx: usize,
    pub(crate) weights: PathWeights,
    pub(crate) learned: Option<LearnedModel>,
    pub(crate) profile_cache: ProfileCache,
    /// Bumped whenever the installed weights (or the measure settings a
    /// model import carries) change; cached per-name similarity tables are
    /// only valid for the epoch they were built under.
    pub(crate) weights_epoch: u64,
    /// Per-name incremental state: leaf similarity tables, dirty marks,
    /// and component clusterings (see [`crate::update`]). Only
    /// [`ResolveRequest::incremental`] requests read or write it.
    // distinct-lint: shared(exclusive takeout: an entry leaves the map before pool fanout and returns after the ordered commit, so no guard spans a boundary)
    pub(crate) names: parking_lot::Mutex<crate::update::NameCache>,
    /// Recycled [`relgraph::SetArena`]s for the pruned similarity
    /// kernel: each similarity stage takes one arena per join path,
    /// rebuilds it in place, and parks it back here, so repeat resolves
    /// (any name — arenas carry capacity, not content) skip the cold
    /// column growth. Interior locking because `resolve` is `&self`.
    pub(crate) arena_pool: relgraph::ArenaPool,
    /// Reusable phase-2 exclusion sweeper for [`Distinct::apply_updates`]
    /// (which is `&mut self`, so no lock): each batch recompiles it over
    /// its own neighborhood, reusing the previous batch's buffers.
    pub(crate) sweep_scratch: crate::update::ExclusionSweeper,
}

impl Distinct {
    /// Prepare the engine over a catalog.
    ///
    /// `ref_relation.ref_attr` designates the references (a foreign key to
    /// the named-object relation). The input catalog need not be
    /// finalized; if `config.expand_attributes` is set (the default, per
    /// §2.1) a value-expanded copy is analyzed instead.
    pub fn prepare(
        catalog: &Catalog,
        ref_relation: &str,
        ref_attr: &str,
        config: DistinctConfig,
    ) -> Result<Distinct, DistinctError> {
        config.validate().map_err(DistinctError::Config)?;
        let catalog = if config.expand_attributes {
            relstore::expand_values(catalog)?.catalog
        } else {
            let mut c = catalog.clone();
            if !c.is_finalized() {
                c.finalize(false)?;
            }
            c
        };
        let paths = PathSet::build(&catalog, ref_relation, ref_attr, config.max_path_len)
            .ok_or_else(|| {
                DistinctError::BadReferenceSpec(format!(
                    "`{ref_relation}.{ref_attr}` is not a foreign-key reference attribute"
                ))
            })?;
        if paths.is_empty() {
            return Err(DistinctError::BadReferenceSpec(
                "no join paths available from the reference relation".into(),
            ));
        }
        let ref_attr_idx = catalog
            .relation(paths.start)
            .schema()
            .attr_index(ref_attr)
            .ok_or_else(|| {
                DistinctError::BadReferenceSpec(format!(
                    "reference attribute `{ref_attr}` not found in relation schema"
                ))
            })?;
        let graph = LinkGraph::build(&catalog);
        let n_paths = paths.len();
        Ok(Distinct {
            config,
            catalog,
            graph,
            paths,
            ref_attr_idx,
            weights: PathWeights::uniform(n_paths),
            learned: None,
            // distinct-lint: scratch(keyed memo: one profile per reference, computed on demand, shared via Arc, evicted when an update batch dirties the reference)
            profile_cache: ProfileCache::new(),
            weights_epoch: 0,
            // distinct-lint: scratch(per-name takeout: incremental resolves remove a name's entry, repair it unlocked, and reinsert; weight-epoch bumps and update batches invalidate entries)
            names: parking_lot::Mutex::new(crate::update::NameCache::default()),
            // distinct-lint: scratch(engine-owned free list: similarity stages take arenas at start, rebuild them in place, and park them back for the next resolve of any name)
            arena_pool: relgraph::ArenaPool::new(),
            // distinct-lint: scratch(rebuilt per update batch: apply_updates recompiles the phase-1 neighborhood into the same adjacency/index/stamp buffers, clearing content but keeping capacity)
            sweep_scratch: crate::update::ExclusionSweeper::empty(),
        })
    }

    /// The (possibly expanded) catalog under analysis.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The engine configuration.
    pub fn config(&self) -> &DistinctConfig {
        &self.config
    }

    /// The join paths under analysis.
    pub fn paths(&self) -> &PathSet {
        &self.paths
    }

    /// Index of the reference attribute within the reference relation.
    pub fn ref_attr_index(&self) -> usize {
        self.ref_attr_idx
    }

    /// Current per-path weights.
    pub fn weights(&self) -> &PathWeights {
        &self.weights
    }

    /// Override the per-path weights (e.g. to reuse a serialized model).
    ///
    /// Returns an error if the dimensionality does not match the path set.
    pub fn set_weights(&mut self, weights: PathWeights) -> Result<(), DistinctError> {
        if weights.resem.len() != self.paths.len() || weights.walk.len() != self.paths.len() {
            return Err(DistinctError::Config(format!(
                "weights cover {} paths, engine has {}",
                weights.resem.len(),
                self.paths.len()
            )));
        }
        self.weights = weights;
        self.weights_epoch += 1;
        Ok(())
    }

    /// The learned model from the last [`Distinct::train`] call.
    pub fn learned(&self) -> Option<&LearnedModel> {
        self.learned.as_ref()
    }

    /// All references whose value equals `name`.
    pub fn references_of(&self, name: &str) -> Vec<TupleRef> {
        self.catalog
            .relation(self.paths.start)
            .lookup(self.ref_attr_idx, &Value::str(name))
            .into_iter()
            .map(|tid: TupleId| TupleRef::new(self.paths.start, tid))
            .collect()
    }

    /// The profile of a reference (cached).
    pub fn profile(&self, r: TupleRef) -> Arc<Profile> {
        if let Some(p) = self.profile_cache.get(&r) {
            return p;
        }
        let p = Arc::new(build_profile(&self.graph, &self.catalog, &self.paths, r));
        self.profile_cache.insert(r, Arc::clone(&p));
        p
    }

    /// The profile of a reference (cached), charged against `ctl`. Returns
    /// `None` when a control limit trips mid-computation; nothing partial
    /// is cached.
    pub fn profile_ctl(&self, r: TupleRef, ctl: &RunControl) -> Option<Arc<Profile>> {
        if let Some(p) = self.profile_cache.get(&r) {
            return Some(p);
        }
        let p = Arc::new(build_profile_guarded(
            &self.graph,
            &self.catalog,
            &self.paths,
            r,
            &mut ctl.guard(),
        )?);
        self.profile_cache.insert(r, Arc::clone(&p));
        Some(p)
    }

    /// Number of profiles currently cached.
    pub fn cached_profiles(&self) -> usize {
        self.profile_cache.len()
    }

    /// The link graph the engine propagates over.
    pub fn graph(&self) -> &LinkGraph {
        &self.graph
    }

    /// Compute the per-stage intermediates for `refs` exactly as
    /// [`Distinct::resolve`] would: cached profiles, then the leaf
    /// pairwise tables under the current weights, measure, and composite.
    ///
    /// This is the differential-testing observation surface — it lets an
    /// external oracle pin each stage's numbers instead of only the final
    /// clustering. Runs sequentially and unguarded (stage values are
    /// bit-identical for any thread count, so one canonical order
    /// suffices); profiles computed here land in the shared cache, making
    /// this also a deterministic cache-warming primitive for
    /// warm-vs-cold differential runs.
    pub fn stage_probe(&self, refs: &[TupleRef]) -> crate::probe::StageProbe {
        self.stage_probe_with(refs, &relgraph::Resemblance::default())
    }

    /// [`Distinct::stage_probe`] under an explicit similarity kernel —
    /// the hook the oracle differential suite uses to pin
    /// [`relgraph::Resemblance::Exact`] and the pruned default against
    /// each other bit for bit.
    // distinct-lint: allow(D005, reason="documented sequential diagnostic surface outside resolve()'s budget scope")
    pub fn stage_probe_with(
        &self,
        refs: &[TupleRef],
        kernel: &relgraph::Resemblance,
    ) -> crate::probe::StageProbe {
        let profiles: Vec<Arc<Profile>> = refs.iter().map(|&r| self.profile(r)).collect();
        let (merger, _, _) = DistinctMerger::from_profiles_exec(
            &profiles,
            &self.weights,
            self.config.measure,
            self.config.composite,
            kernel,
            &exec::Executor::sequential(),
            &|_| true,
        );
        // distinct-lint: allow(D002, reason="guard is the constant true closure above, so the build can never be refused")
        let merger = merger.expect("permissive guard never stops the matrix build");
        let n = refs.len();
        let mut resemblance = vec![vec![0.0; n]; n];
        let mut walk = vec![vec![0.0; n]; n];
        let mut similarity = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                resemblance[i][j] = merger.leaf_resemblance(i, j);
                walk[i][j] = merger.leaf_walk(i, j);
                similarity[i][j] = cluster::Merger::similarity(&merger, i, j);
            }
        }
        crate::probe::StageProbe {
            profiles,
            resemblance,
            walk,
            similarity,
        }
    }

    /// Snapshot of the profile cache (for checkpointing).
    pub(crate) fn profile_cache_snapshot(&self) -> Vec<(TupleRef, Arc<Profile>)> {
        self.profile_cache.snapshot()
    }

    /// Replace the profile cache wholesale (checkpoint restore).
    pub(crate) fn install_profiles(&mut self, entries: Vec<(TupleRef, Arc<Profile>)>) {
        self.profile_cache.replace(entries);
    }

    /// Insert one profile into the shared cache (run-manager chunk
    /// restore; races resolve to the first entry, which is identical).
    pub(crate) fn cache_insert(&self, r: TupleRef, p: Arc<Profile>) {
        self.profile_cache.insert(r, p);
    }

    /// Drop every cached profile (run-manager memory-budget guard).
    /// Always safe: profiles are pure caches of deterministic computation.
    pub(crate) fn evict_profiles(&self) {
        self.profile_cache.evict_all();
    }

    /// Install a learned model without retraining (checkpoint restore).
    pub(crate) fn install_learned(&mut self, model: Option<LearnedModel>) {
        self.learned = model;
    }

    /// Override the clustering threshold (checkpoint restore).
    pub(crate) fn set_min_sim(&mut self, min_sim: f64) {
        self.config.min_sim = min_sim;
    }

    /// Compute and cache the profiles of `refs` using `threads` worker
    /// threads (profile construction is the pipeline's dominant cost and
    /// is embarrassingly parallel — the engine state it reads is
    /// immutable). A `threads` of 1 computes serially, 0 means auto.
    /// Results are bit-identical to serial computation.
    pub fn precompute_profiles(&self, refs: &[TupleRef], threads: usize) {
        let executor = if threads == 1 {
            exec::Executor::sequential()
        } else {
            exec::Executor::with_threads(threads)
        };
        let _ = self.profile_fanout(refs, &executor, &RunControl::new());
    }

    /// The executor for one run: an explicit per-request override beats the
    /// engine configuration (where 0 = auto).
    pub(crate) fn executor_for(&self, threads: Option<usize>) -> exec::Executor {
        exec::Executor::with_threads(threads.unwrap_or(self.config.threads))
    }

    /// Fan profile construction for `refs` out over `executor`, honoring
    /// `ctl` at item/chunk boundaries, and return one profile per input
    /// reference in input order. Cached profiles are reused for free;
    /// freshly computed ones enter the shared cache. References whose
    /// profile could not be computed before a limit tripped get a
    /// zero-mass [`empty_profile`] placeholder, which is never cached — a
    /// later, unconstrained run recomputes the real profile.
    pub(crate) fn profile_fanout(
        &self,
        refs: &[TupleRef],
        executor: &exec::Executor,
        ctl: &RunControl,
    ) -> (Vec<Arc<Profile>>, exec::ParStats) {
        // Deduplicated, sorted work list of cache misses: each missing
        // profile is computed exactly once, in an order independent of the
        // caller's reference order.
        let mut todo: Vec<TupleRef> = refs
            .iter()
            .copied()
            .filter(|r| !self.profile_cache.contains(r))
            .collect();
        todo.sort_unstable();
        todo.dedup();
        let guard = ctl.shared_guard();
        let (computed, stats) = executor.par_map_guarded(
            &todo,
            |_, &r| {
                let mut g = |units: u64| guard(units);
                build_profile_guarded(&self.graph, &self.catalog, &self.paths, r, &mut g)
                    .map(Arc::new)
            },
            || ctl.status().is_some(),
        );
        for (&r, p) in todo.iter().zip(computed) {
            if let Some(p) = p {
                self.profile_cache.insert(r, p);
            }
        }
        let profiles = refs
            .iter()
            .map(|&r| {
                self.profile_cache
                    .get(&r)
                    .unwrap_or_else(|| Arc::new(empty_profile(&self.paths, r)))
            })
            .collect();
        (profiles, stats)
    }

    /// Build the automatically constructed training set (§3) without
    /// learning — exposed for inspection and experiments.
    pub fn build_training_pairs(&self) -> Result<TrainingSet, DistinctError> {
        let rel_name = self.catalog.relation(self.paths.start).name().to_string();
        let attr_name = self.catalog.relation(self.paths.start).schema().attributes
            [self.ref_attr_idx]
            .name
            .clone();
        Ok(build_training_set(
            &self.catalog,
            &rel_name,
            &attr_name,
            &self.config.training,
        )?)
    }

    /// Construct the training set, learn per-path weights with the SVM,
    /// and install them (§3).
    ///
    /// If the engine is configured with [`WeightingMode::Uniform`] this
    /// still trains (for reporting) but leaves uniform weights installed.
    pub fn train(&mut self) -> Result<TrainingReport, DistinctError> {
        self.train_with(&TrainRequest::new())
    }

    /// Train according to a [`TrainRequest`]. Training cannot degrade
    /// gracefully — a half-trained model would silently misweight every
    /// later resolution — so tripping a limit aborts with
    /// [`DistinctError::Interrupted`] and leaves the previously installed
    /// weights untouched.
    ///
    /// Profile construction and pair featurization fan out over the
    /// requested thread count; the learned model is identical for any.
    pub fn train_with(&mut self, req: &TrainRequest<'_>) -> Result<TrainingReport, DistinctError> {
        let unlimited = RunControl::new();
        let ctl = req.control.unwrap_or(&unlimited);
        let executor = self.executor_for(req.threads);
        let interrupted = |stage, kind, done: usize, total: usize| DistinctError::Interrupted {
            stage,
            kind,
            progress: Progress { done, total },
        };
        if let Some(kind) = ctl.status() {
            return Err(interrupted(Stage::TrainingSet, kind, 0, 0));
        }
        let ts = self.build_training_pairs()?;
        if let Some(kind) = ctl.status() {
            return Err(interrupted(
                Stage::TrainingSet,
                kind,
                ts.pairs.len(),
                ts.pairs.len(),
            ));
        }
        // Every distinct reference in the training pairs, profiled once.
        let mut train_refs: Vec<TupleRef> = ts.pairs.iter().flat_map(|p| [p.a, p.b]).collect();
        train_refs.sort_unstable();
        train_refs.dedup();
        let logical0 = ctl.spent();
        let (profiles, profile_stats) = self.profile_fanout(&train_refs, &executor, ctl);
        let profile_logical = ctl.spent().saturating_sub(logical0);
        let real = profiles.iter().filter(|p| !p.placeholder).count();
        if real < train_refs.len() {
            let kind = ctl.status().unwrap_or(InterruptKind::Cancelled);
            return Err(interrupted(Stage::Profiles, kind, real, train_refs.len()));
        }
        let by_ref: FxHashMap<TupleRef, Arc<Profile>> =
            train_refs.iter().copied().zip(profiles).collect();
        let logical1 = ctl.spent();
        let (featurized, feature_stats) =
            featurize_pairs(&ts.pairs, &by_ref, &executor, &|| ctl.status().is_some());
        let feature_logical = ctl.spent().saturating_sub(logical1);
        let features: Vec<PairFeatures> = {
            let done = featurized.iter().filter(|f| f.is_some()).count();
            if done < ts.pairs.len() {
                let kind = ctl.status().unwrap_or(InterruptKind::Cancelled);
                return Err(interrupted(Stage::TrainingSet, kind, done, ts.pairs.len()));
            }
            featurized.into_iter().flatten().collect()
        };
        let (resem_data, walk_data) = assemble_datasets(&features).map_err(DistinctError::Svm)?;
        let model = learn_weights_guarded(
            &resem_data,
            &walk_data,
            self.config.training.svm_c,
            self.config.training.seed,
            &mut ctl.guard(),
        )
        .map_err(|e| match e {
            SvmError::Interrupted { passes_done } => interrupted(
                Stage::SvmTraining,
                ctl.status().unwrap_or(InterruptKind::Cancelled),
                passes_done,
                0,
            ),
            other => DistinctError::Svm(other),
        })?;
        let report = TrainingReport {
            unique_names: ts.unique_names,
            positives: ts.positives,
            negatives: ts.negatives,
            resem_accuracy: model.resem_train_accuracy,
            walk_accuracy: model.walk_train_accuracy,
            path_weights: self
                .paths
                .descriptions
                .iter()
                .cloned()
                .zip(model.weights.resem.iter().copied())
                .zip(model.weights.walk.iter().copied())
                .map(|((d, r), w)| (d, r, w))
                .collect(),
            exec: ExecReport {
                profiles: stage_stats(profile_stats, profile_logical),
                similarity: stage_stats(feature_stats, feature_logical),
                clustering: Default::default(),
                peak_rss_bytes: crate::control::peak_rss_bytes().unwrap_or(0),
                // Training featurizes explicit pairs; the pruned
                // similarity engine (and its accounting) is a resolve
                // concern.
                pairs_total: 0,
                pairs_pruned: 0,
                pairs_exact: 0,
                pairs_cached: 0,
                pairs_dirty: 0,
                names_affected: 0,
                arena_rows_interned: 0,
            },
        };
        if self.config.weighting == WeightingMode::Supervised {
            self.weights = model.weights.clone();
            self.weights_epoch += 1;
        }
        self.learned = Some(model);
        Ok(report)
    }

    /// Calibrate `min_sim` automatically from pseudo-ambiguous groups of
    /// unique names (see [`crate::calibrate`]) and install the selected
    /// threshold. Call after [`Distinct::train`] so the calibration runs
    /// under the final weights.
    ///
    /// Returns `None` (leaving the configured threshold untouched) when too
    /// few unique names exist to synthesize groups.
    pub fn calibrate_threshold(
        &mut self,
        cfg: &crate::calibrate::CalibrationConfig,
    ) -> Result<Option<crate::calibrate::CalibrationResult>, DistinctError> {
        let ts = self.build_training_pairs()?;
        let result = crate::calibrate::calibrate_min_sim(self, &ts.names, cfg);
        if let Some(r) = &result {
            self.config.min_sim = r.min_sim;
        }
        Ok(result)
    }

    /// Cluster a set of references (§4) according to a [`ResolveRequest`]:
    /// the configured measure, weighting, and composite, with the request's
    /// threshold / constraints / limits / threads applied on top.
    ///
    /// Resolution always has a meaningful partial answer, so a limited run
    /// never errors: references whose profiles could not be computed in
    /// time stay singletons (their pairwise similarities are zero, below
    /// any positive `min_sim`); a similarity matrix cut short degrades the
    /// whole result to singletons (a partially populated matrix would bias
    /// the clustering); an interrupted merge loop keeps the merges already
    /// made — the strongest-evidence ones, since merging proceeds in
    /// decreasing similarity order. The outcome is always a valid
    /// clustering over all requested references, tagged with a
    /// [`Degraded`] report when any limit tripped, plus an [`ExecReport`]
    /// with per-stage task counts and wall times.
    ///
    /// A request built with [`ResolveRequest::incremental`] first tries
    /// the delta path (see [`crate::update`]): clean pairs are copied from
    /// the name's cached tables and only dirty pairs are re-scored. When
    /// its preconditions fail — unknown name, constraints, non-positive
    /// threshold, or a tripped limit — it falls back to this batch path,
    /// so the partition is the same either way.
    pub fn resolve(&self, req: &ResolveRequest<'_>) -> ResolveOutcome {
        if req.incremental {
            if let Some(outcome) = self.resolve_incremental(req) {
                return outcome;
            }
        }
        let refs = req.refs;
        let min_sim = req.min_sim.unwrap_or(self.config.min_sim);
        let unlimited = RunControl::new();
        let ctl = req.control.unwrap_or(&unlimited);
        let executor = self.executor_for(req.threads);

        // Stage 1: profiles (placeholders for anything a limit cut off).
        let logical0 = ctl.spent();
        let (profiles, profile_stats) = self.profile_fanout(refs, &executor, ctl);
        let profile_logical = ctl.spent().saturating_sub(logical0);
        let profiles_computed = profiles.iter().filter(|p| !p.placeholder).count();
        let mut trip: Option<(Stage, InterruptKind)> = None;
        if profiles_computed < refs.len() {
            let kind = ctl.status().unwrap_or(InterruptKind::Cancelled);
            trip = Some((Stage::Profiles, kind));
        }

        // Stage 2: pairwise similarity matrix.
        let guard = ctl.shared_guard();
        let logical1 = ctl.spent();
        let (merger, matrix_stats, pair_counters) =
            self.similarity_stage(&profiles, &req.resemblance, &executor, &guard);
        let similarity_logical = ctl.spent().saturating_sub(logical1);

        // Stage 3: agglomerative clustering.
        // distinct-lint: allow(D004, reason="wall time feeds ExecReport stage timings only; control flow stays with RunControl")
        let clock = Instant::now();
        let logical2 = ctl.spent();
        let (partial, mut cluster_stats) = match merger {
            Some(inner) => self.clustering_stage(
                inner,
                refs.len(),
                min_sim,
                &req.must_link,
                &req.cannot_link,
                &executor,
                &guard,
            ),
            None => {
                // The matrix build was cut short: every reference stays a
                // singleton (an empty dendrogram cut below any threshold).
                if trip.is_none() {
                    let kind = ctl.status().unwrap_or(InterruptKind::Cancelled);
                    trip = Some((Stage::SimilarityMatrix, kind));
                }
                Self::singleton_partition(refs.len())
            }
        };
        cluster_stats.wall = clock.elapsed();
        let clustering_logical = ctl.spent().saturating_sub(logical2);
        if !partial.completed && trip.is_none() {
            let kind = ctl.status().unwrap_or(InterruptKind::Cancelled);
            trip = Some((Stage::Clustering, kind));
        }
        let degraded = trip.map(|(stage, kind)| Degraded {
            stage,
            kind,
            profiles_computed,
            refs_total: refs.len(),
            clustering_completed: partial.completed,
        });
        ResolveOutcome {
            clustering: partial.clustering,
            degraded,
            exec: ExecReport {
                profiles: stage_stats(profile_stats, profile_logical),
                similarity: stage_stats(matrix_stats, similarity_logical),
                clustering: stage_stats(cluster_stats, clustering_logical),
                peak_rss_bytes: crate::control::peak_rss_bytes().unwrap_or(0),
                pairs_total: pair_counters.total,
                pairs_pruned: pair_counters.pruned,
                pairs_exact: pair_counters.exact,
                pairs_cached: pair_counters.cached,
                pairs_dirty: 0,
                names_affected: 0,
                arena_rows_interned: pair_counters.interned,
            },
        }
    }

    /// Stage 2 of resolution, named for the run manager: the pairwise
    /// similarity tables under the engine's weights, measure, and
    /// composite. Returns `None` (with the stats recording how far it got)
    /// when `guard` trips mid-build.
    pub(crate) fn similarity_stage(
        &self,
        profiles: &[Arc<Profile>],
        kernel: &relgraph::Resemblance,
        executor: &exec::Executor,
        guard: &(dyn Fn(u64) -> bool + Sync),
    ) -> (
        Option<DistinctMerger>,
        exec::ParStats,
        crate::refcluster::PairCounters,
    ) {
        DistinctMerger::from_profiles_pooled(
            profiles,
            &self.weights,
            self.config.measure,
            self.config.composite,
            kernel,
            executor,
            guard,
            &self.arena_pool,
        )
    }

    /// Stage 3 of resolution, named for the run manager: agglomerative
    /// merging over a built similarity matrix, wrapped in user constraints
    /// when any are present.
    #[allow(clippy::too_many_arguments)] // internal stage seam: the run manager threads every resolve option through explicitly
    pub(crate) fn clustering_stage(
        &self,
        mut merger: DistinctMerger,
        n: usize,
        min_sim: f64,
        must_link: &[(usize, usize)],
        cannot_link: &[(usize, usize)],
        executor: &exec::Executor,
        guard: &(dyn Fn(u64) -> bool + Sync),
    ) -> (PartialClustering, exec::ParStats) {
        if !must_link.is_empty() || !cannot_link.is_empty() {
            let mut constrained = ConstrainedMerger::new(merger, n, must_link, cannot_link);
            agglomerate_exec(n, &mut constrained, min_sim, executor, guard)
        } else {
            agglomerate_exec(n, &mut merger, min_sim, executor, guard)
        }
    }

    /// The all-singletons fallback partition over `n` references: an empty
    /// dendrogram cut below any threshold, flagged incomplete.
    pub(crate) fn singleton_partition(n: usize) -> (PartialClustering, exec::ParStats) {
        let dendrogram = Dendrogram::new(n);
        let labels = dendrogram.cut(f64::NEG_INFINITY);
        (
            PartialClustering {
                clustering: Clustering { labels, dendrogram },
                completed: false,
            },
            exec::ParStats {
                threads: 1,
                ..Default::default()
            },
        )
    }

    /// Calibrated probability that two references denote the same entity,
    /// combining the trained resemblance and walk models through their
    /// Platt scalers. Returns `None` before training.
    pub fn pair_probability(&self, a: TupleRef, b: TupleRef) -> Option<f64> {
        let learned = self.learned.as_ref()?;
        let pa = self.profile(a);
        let pb = self.profile(b);
        Some(learned.pair_probability(&resemblance_features(&pa, &pb), &walk_features(&pa, &pb)))
    }

    /// Export the trained state (configuration + weights + path
    /// descriptions) as JSON. Returns `None` before training.
    pub fn export_model(&self) -> Option<String> {
        let learned = self.learned.as_ref()?;
        let saved = SavedModel {
            config: self.config.clone(),
            weights: self.weights.clone(),
            paths: self.paths.descriptions.clone(),
            resem_train_accuracy: learned.resem_train_accuracy,
            walk_train_accuracy: learned.walk_train_accuracy,
        };
        serde_json::to_string_pretty(&saved).ok()
    }

    /// Import a model exported by [`Distinct::export_model`] into this
    /// engine. The path descriptions must match exactly — a model is only
    /// valid for the schema (and path enumeration settings) it was trained
    /// on.
    pub fn import_model(&mut self, json: &str) -> Result<(), DistinctError> {
        let saved: SavedModel = serde_json::from_str(json)
            .map_err(|e| DistinctError::Config(format!("unparseable model: {e}")))?;
        if saved.paths != self.paths.descriptions {
            return Err(DistinctError::Config(
                "model was trained on a different join-path set".into(),
            ));
        }
        self.config.min_sim = saved.config.min_sim;
        self.config.measure = saved.config.measure;
        self.config.composite = saved.config.composite;
        self.set_weights(saved.weights)
    }
}

/// On-disk form of a trained engine (see [`Distinct::export_model`]).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
struct SavedModel {
    config: DistinctConfig,
    weights: PathWeights,
    paths: Vec<String>,
    resem_train_accuracy: f64,
    walk_train_accuracy: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MeasureMode;
    use datagen::{AmbiguousSpec, World, WorldConfig};
    use eval::pairwise_scores;

    fn dataset() -> datagen::DblpDataset {
        let mut config = WorldConfig::tiny(21);
        config.ambiguous = vec![
            AmbiguousSpec::new("Wei Wang", vec![10, 8, 5]),
            AmbiguousSpec::new("Hui Fang", vec![5, 4]),
        ];
        datagen::to_catalog(&World::generate(config)).unwrap()
    }

    fn small_training() -> crate::config::TrainingConfig {
        crate::config::TrainingConfig {
            positives: 80,
            negatives: 80,
            ..Default::default()
        }
    }

    #[test]
    fn prepare_validates_inputs() {
        let d = dataset();
        let mut bad = DistinctConfig::default();
        bad.max_path_len = 0;
        assert!(matches!(
            Distinct::prepare(&d.catalog, "Publish", "author", bad),
            Err(DistinctError::Config(_))
        ));
        assert!(matches!(
            Distinct::prepare(&d.catalog, "Nope", "author", DistinctConfig::default()),
            Err(DistinctError::BadReferenceSpec(_))
        ));
    }

    #[test]
    fn prepare_exposes_paths_and_uniform_weights() {
        let d = dataset();
        let config = DistinctConfig {
            training: small_training(),
            ..Default::default()
        };
        let engine = Distinct::prepare(&d.catalog, "Publish", "author", config).unwrap();
        assert!(!engine.paths().is_empty());
        assert_eq!(engine.weights().path_count(), engine.paths().len());
        assert!(engine.learned().is_none());
        let sum: f64 = engine.weights().resem.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn references_of_finds_planted_name() {
        let d = dataset();
        let config = DistinctConfig {
            training: small_training(),
            ..Default::default()
        };
        let engine = Distinct::prepare(&d.catalog, "Publish", "author", config).unwrap();
        let refs = engine.references_of("Wei Wang");
        assert_eq!(refs.len(), 23);
        assert!(engine.references_of("Nobody Here").is_empty());
    }

    #[test]
    fn profiles_are_cached() {
        let d = dataset();
        let config = DistinctConfig {
            training: small_training(),
            ..Default::default()
        };
        let engine = Distinct::prepare(&d.catalog, "Publish", "author", config).unwrap();
        let r = engine.references_of("Wei Wang")[0];
        assert_eq!(engine.cached_profiles(), 0);
        let p1 = engine.profile(r);
        let p2 = engine.profile(r);
        assert!(Arc::ptr_eq(&p1, &p2));
        assert_eq!(engine.cached_profiles(), 1);
    }

    #[test]
    fn stage_probe_matches_resolution_and_warms_the_cache() {
        let d = dataset();
        let config = DistinctConfig {
            training: small_training(),
            ..Default::default()
        };
        let engine = Distinct::prepare(&d.catalog, "Publish", "author", config).unwrap();
        let refs = engine.references_of("Hui Fang");
        assert_eq!(engine.cached_profiles(), 0);
        let probe = engine.stage_probe(&refs);
        assert_eq!(engine.cached_profiles(), refs.len());
        assert_eq!(probe.len(), refs.len());
        let n = refs.len();
        for i in 0..n {
            assert_eq!(probe.similarity[i][i], 0.0);
            for j in 0..n {
                if i == j {
                    continue;
                }
                assert_eq!(probe.resemblance[i][j], probe.resemblance[j][i]);
                assert_eq!(probe.walk[i][j], probe.walk[j][i]);
                assert_eq!(probe.similarity[i][j], probe.similarity[j][i]);
            }
        }
        // The probe's similarities are exactly what resolve merges on:
        // every recorded merge of two leaves must use a probed value.
        let outcome = engine.resolve(&ResolveRequest::new(&refs));
        for m in outcome.clustering.dendrogram.merges() {
            if m.a < n && m.b < n {
                assert_eq!(m.similarity, probe.similarity[m.a][m.b]);
            }
        }
    }

    #[test]
    fn training_learns_informative_weights() {
        let d = dataset();
        let config = DistinctConfig {
            training: small_training(),
            ..Default::default()
        };
        let mut engine = Distinct::prepare(&d.catalog, "Publish", "author", config).unwrap();
        let report = engine.train().unwrap();
        assert!(report.unique_names >= 2);
        assert_eq!(report.positives, 80);
        assert_eq!(report.negatives, 80);
        // Hard, realistic training data: an author's two papers often share
        // nothing, so accuracies well above chance (not near 1.0) are the
        // expected regime.
        assert!(
            report.resem_accuracy > 0.6,
            "resem acc {}",
            report.resem_accuracy
        );
        assert!(
            report.walk_accuracy > 0.55,
            "walk acc {}",
            report.walk_accuracy
        );
        // Weights are installed and normalized.
        let sum: f64 = engine.weights().resem.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(engine.learned().is_some());
        // The coauthor-flavored path family (through sibling Publish
        // records) must dominate the resemblance weights.
        let coauthor_family: f64 = report
            .path_weights
            .iter()
            .filter(|(d, _, _)| d.contains("<-[paper_key] Publish"))
            .map(|(_, r, _)| r)
            .sum();
        assert!(
            coauthor_family > 0.2,
            "coauthor-family resem weight {coauthor_family}"
        );
    }

    #[test]
    fn uniform_mode_trains_but_keeps_uniform_weights() {
        let d = dataset();
        let config = DistinctConfig {
            weighting: WeightingMode::Uniform,
            training: small_training(),
            ..Default::default()
        };
        let mut engine = Distinct::prepare(&d.catalog, "Publish", "author", config).unwrap();
        let before = engine.weights().clone();
        engine.train().unwrap();
        assert_eq!(engine.weights(), &before);
        assert!(engine.learned().is_some());
    }

    #[test]
    fn end_to_end_distinguishes_planted_entities() {
        let d = dataset();
        let config = DistinctConfig {
            training: small_training(),
            ..Default::default()
        };
        let mut engine = Distinct::prepare(&d.catalog, "Publish", "author", config).unwrap();
        engine.train().unwrap();
        let truth = &d.truths[0];
        let outcome = engine.resolve(&ResolveRequest::new(&truth.refs));
        assert!(outcome.is_complete());
        assert_eq!(outcome.exec.profiles.tasks, truth.refs.len());
        assert_eq!(
            outcome.exec.similarity.tasks,
            truth.refs.len() * (truth.refs.len() - 1) / 2
        );
        let scores = pairwise_scores(&truth.labels, &outcome.clustering.labels);
        assert!(
            scores.f_measure > 0.75,
            "f-measure {} (p {}, r {})",
            scores.f_measure,
            scores.precision,
            scores.recall
        );
    }

    #[test]
    fn set_weights_validates_dimension() {
        let d = dataset();
        let config = DistinctConfig {
            training: small_training(),
            ..Default::default()
        };
        let mut engine = Distinct::prepare(&d.catalog, "Publish", "author", config).unwrap();
        assert!(engine.set_weights(PathWeights::uniform(1)).is_err());
        let n = engine.paths().len();
        assert!(engine.set_weights(PathWeights::uniform(n)).is_ok());
    }

    #[test]
    fn min_sim_extremes() {
        let d = dataset();
        let config = DistinctConfig {
            training: small_training(),
            ..Default::default()
        };
        let engine = Distinct::prepare(&d.catalog, "Publish", "author", config).unwrap();
        let refs = engine.references_of("Wei Wang");
        // Impossibly high threshold: all singletons.
        let c = engine
            .resolve(&ResolveRequest::new(&refs).min_sim(10.0))
            .clustering;
        assert_eq!(c.cluster_count(), refs.len());
        // Zero-ish threshold merges anything with positive similarity:
        // far fewer clusters.
        let c = engine
            .resolve(&ResolveRequest::new(&refs).min_sim(1e-12))
            .clustering;
        assert!(c.cluster_count() < refs.len());
    }

    #[test]
    fn constrained_resolution_honors_user_feedback() {
        let d = dataset();
        let config = DistinctConfig {
            training: small_training(),
            ..Default::default()
        };
        let mut engine = Distinct::prepare(&d.catalog, "Publish", "author", config).unwrap();
        engine.train().unwrap();
        let truth = &d.truths[0];
        let unconstrained = engine.resolve(&ResolveRequest::new(&truth.refs)).clustering;

        // Cannot-link two references that the unconstrained run merged.
        let groups = unconstrained.groups();
        let merged_group = groups.iter().find(|g| g.len() >= 2).expect("some merge");
        let (a, b) = (merged_group[0], merged_group[1]);
        let c = engine
            .resolve(&ResolveRequest::new(&truth.refs).cannot_link(&[(a, b)]))
            .clustering;
        assert_ne!(c.labels[a], c.labels[b]);

        // Must-link two references the unconstrained run separated.
        let (x, y) = {
            let mut found = None;
            'outer: for i in 0..truth.refs.len() {
                for j in (i + 1)..truth.refs.len() {
                    if unconstrained.labels[i] != unconstrained.labels[j] {
                        found = Some((i, j));
                        break 'outer;
                    }
                }
            }
            found.expect("some separated pair")
        };
        let c = engine
            .resolve(&ResolveRequest::new(&truth.refs).must_link(&[(x, y)]))
            .clustering;
        assert_eq!(c.labels[x], c.labels[y]);
    }

    #[test]
    fn model_export_import_round_trip() {
        let d = dataset();
        let config = DistinctConfig {
            training: small_training(),
            ..Default::default()
        };
        let mut trained =
            Distinct::prepare(&d.catalog, "Publish", "author", config.clone()).unwrap();
        assert!(trained.export_model().is_none(), "no model before training");
        trained.train().unwrap();
        let json = trained.export_model().unwrap();

        let mut fresh = Distinct::prepare(&d.catalog, "Publish", "author", config).unwrap();
        fresh.import_model(&json).unwrap();
        assert_eq!(fresh.weights(), trained.weights());
        let truth = &d.truths[0];
        assert_eq!(
            fresh
                .resolve(&ResolveRequest::new(&truth.refs))
                .clustering
                .labels,
            trained
                .resolve(&ResolveRequest::new(&truth.refs))
                .clustering
                .labels
        );

        // A model for a different path set is rejected.
        let mut shallow = Distinct::prepare(
            &d.catalog,
            "Publish",
            "author",
            DistinctConfig {
                max_path_len: 2,
                training: small_training(),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(matches!(
            shallow.import_model(&json),
            Err(DistinctError::Config(_))
        ));
        assert!(fresh.import_model("not json").is_err());
    }

    #[test]
    fn pair_probability_orders_same_vs_cross_entity_pairs() {
        let d = dataset();
        let config = DistinctConfig {
            training: small_training(),
            ..Default::default()
        };
        let mut engine = Distinct::prepare(&d.catalog, "Publish", "author", config).unwrap();
        assert!(engine
            .pair_probability(d.truths[0].refs[0], d.truths[0].refs[1])
            .is_none());
        engine.train().unwrap();
        let truth = &d.truths[0];
        // Average probability over same-entity pairs must exceed the
        // average over cross-entity pairs, and all values must be valid
        // probabilities.
        let (mut same, mut cross) = (Vec::new(), Vec::new());
        for i in 0..truth.refs.len() {
            for j in (i + 1)..truth.refs.len() {
                let p = engine
                    .pair_probability(truth.refs[i], truth.refs[j])
                    .unwrap();
                assert!((0.0..=1.0).contains(&p), "p = {p}");
                if truth.labels[i] == truth.labels[j] {
                    same.push(p);
                } else {
                    cross.push(p);
                }
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&same) > mean(&cross),
            "same-entity mean P {} vs cross {}",
            mean(&same),
            mean(&cross)
        );
    }

    #[test]
    fn empty_and_singleton_reference_sets() {
        let d = dataset();
        let config = DistinctConfig {
            training: small_training(),
            ..Default::default()
        };
        let engine = Distinct::prepare(&d.catalog, "Publish", "author", config).unwrap();
        let empty = engine.resolve(&ResolveRequest::new(&[])).clustering;
        assert!(empty.labels.is_empty());
        assert_eq!(empty.cluster_count(), 0);
        let one = engine
            .resolve(&ResolveRequest::new(&d.truths[0].refs[..1]))
            .clustering;
        assert_eq!(one.labels, vec![0]);
        assert_eq!(one.cluster_count(), 1);
    }

    #[test]
    fn unexpanded_mode_still_works() {
        // expand_attributes = false: only the raw FK paths exist
        // (no pseudo-value relations), but the pipeline must run end to end.
        let d = dataset();
        let config = DistinctConfig {
            expand_attributes: false,
            training: small_training(),
            ..Default::default()
        };
        let mut engine = Distinct::prepare(&d.catalog, "Publish", "author", config).unwrap();
        // No pseudo-relations in the analyzed catalog.
        assert!(
            engine.paths().descriptions.iter().all(|p| !p.contains('#')),
            "{:?}",
            engine.paths().descriptions
        );
        engine.train().unwrap();
        let truth = &d.truths[0];
        let c = engine.resolve(&ResolveRequest::new(&truth.refs)).clustering;
        assert_eq!(c.labels.len(), truth.refs.len());
        let s = pairwise_scores(&truth.labels, &c.labels);
        assert!(s.f_measure > 0.3, "f {}", s.f_measure);
    }

    #[test]
    fn unlimited_control_resolve_matches_plain_resolve() {
        let d = dataset();
        let config = DistinctConfig {
            training: small_training(),
            ..Default::default()
        };
        let mut engine = Distinct::prepare(&d.catalog, "Publish", "author", config).unwrap();
        engine.train().unwrap();
        let truth = &d.truths[0];
        let plain = engine.resolve(&ResolveRequest::new(&truth.refs)).clustering;
        let ctl = RunControl::new();
        let outcome = engine.resolve(&ResolveRequest::new(&truth.refs).control(&ctl));
        assert!(outcome.is_complete());
        assert_eq!(outcome.clustering.labels, plain.labels);
    }

    #[test]
    fn tight_budget_resolve_degrades_without_panicking() {
        let d = dataset();
        let config = DistinctConfig {
            training: small_training(),
            ..Default::default()
        };
        let engine = Distinct::prepare(&d.catalog, "Publish", "author", config).unwrap();
        let refs = engine.references_of("Wei Wang");
        // Budgets from starvation up to generous: every run must return a
        // full-length, valid partition and report degradation iff it was
        // actually cut short.
        for budget in [0, 1, 10, 100, 1_000, 100_000_000] {
            let ctl = RunControl::new().with_budget(budget);
            let outcome = engine.resolve(&ResolveRequest::new(&refs).control(&ctl));
            assert_eq!(outcome.clustering.labels.len(), refs.len());
            let k = outcome.clustering.cluster_count();
            assert!(k >= 1 && k <= refs.len());
            if let Some(d) = &outcome.degraded {
                assert_eq!(d.kind, InterruptKind::BudgetExhausted);
                assert_eq!(d.refs_total, refs.len());
                assert!(d.profiles_computed <= refs.len());
                if d.stage == Stage::Clustering {
                    // Profiling finished; only the merge loop was cut.
                    assert_eq!(d.profiles_computed, refs.len());
                    assert!(!d.clustering_completed);
                }
                let shown = d.to_string();
                assert!(shown.contains("work budget exhausted"), "{shown}");
            }
        }
        // Starvation budget on a *fresh* engine (the loop above filled the
        // shared profile cache, and cached profiles are free): nothing
        // profiles, everything stays singleton.
        let config = DistinctConfig {
            training: small_training(),
            ..Default::default()
        };
        let fresh = Distinct::prepare(&d.catalog, "Publish", "author", config).unwrap();
        let ctl = RunControl::new().with_budget(0);
        let outcome = fresh.resolve(&ResolveRequest::new(&refs).control(&ctl));
        let deg = outcome.degraded.expect("zero budget must degrade");
        assert_eq!(deg.stage, Stage::Profiles);
        assert_eq!(deg.profiles_computed, 0);
        assert_eq!(outcome.clustering.cluster_count(), refs.len());
    }

    #[test]
    fn cancelled_resolve_still_returns_full_partition() {
        let d = dataset();
        let config = DistinctConfig {
            training: small_training(),
            ..Default::default()
        };
        let engine = Distinct::prepare(&d.catalog, "Publish", "author", config).unwrap();
        let refs = engine.references_of("Hui Fang");
        let ctl = RunControl::new();
        ctl.token().cancel();
        let outcome = engine.resolve(&ResolveRequest::new(&refs).control(&ctl));
        assert_eq!(outcome.clustering.labels.len(), refs.len());
        let deg = outcome.degraded.expect("cancelled run must degrade");
        assert_eq!(deg.kind, InterruptKind::Cancelled);
    }

    #[test]
    fn interrupted_training_is_an_error_and_leaves_weights_untouched() {
        let d = dataset();
        let config = DistinctConfig {
            training: small_training(),
            ..Default::default()
        };
        let mut engine = Distinct::prepare(&d.catalog, "Publish", "author", config).unwrap();
        let before = engine.weights().clone();
        let ctl = RunControl::new().with_budget(0);
        let err = engine
            .train_with(&TrainRequest::new().control(&ctl))
            .unwrap_err();
        match err {
            DistinctError::Interrupted { kind, .. } => {
                assert_eq!(kind, InterruptKind::BudgetExhausted);
            }
            other => panic!("expected Interrupted, got {other}"),
        }
        assert_eq!(engine.weights(), &before);
        assert!(engine.learned().is_none());
    }

    #[test]
    fn zero_deadline_training_is_interrupted() {
        let d = dataset();
        let config = DistinctConfig {
            training: small_training(),
            ..Default::default()
        };
        let mut engine = Distinct::prepare(&d.catalog, "Publish", "author", config).unwrap();
        let ctl = RunControl::new().with_deadline(std::time::Duration::ZERO);
        std::thread::sleep(std::time::Duration::from_millis(1));
        let err = engine
            .train_with(&TrainRequest::new().control(&ctl))
            .unwrap_err();
        assert!(
            matches!(
                err,
                DistinctError::Interrupted {
                    kind: InterruptKind::DeadlineExceeded,
                    ..
                }
            ),
            "got {err}"
        );
    }

    #[test]
    fn degraded_budget_sweep_is_monotone_enough() {
        // More budget can only profile more references; the count of real
        // (non-placeholder) profiles must be non-decreasing in the budget.
        let d = dataset();
        let config = DistinctConfig {
            training: small_training(),
            ..Default::default()
        };
        let refs = {
            let engine =
                Distinct::prepare(&d.catalog, "Publish", "author", config.clone()).unwrap();
            engine.references_of("Wei Wang")
        };
        let mut last = 0usize;
        for budget in [50, 500, 5_000, 50_000, 500_000] {
            // Fresh engine per run: the profile cache would otherwise let
            // later runs reuse earlier runs' work.
            let engine =
                Distinct::prepare(&d.catalog, "Publish", "author", config.clone()).unwrap();
            // Single-threaded: parallel workers would race the budget and
            // break strict monotonicity across runs.
            let ctl = RunControl::new().with_budget(budget);
            let outcome = engine.resolve(&ResolveRequest::new(&refs).control(&ctl).threads(1));
            let computed = outcome
                .degraded
                .as_ref()
                .map(|deg| deg.profiles_computed)
                .unwrap_or(refs.len());
            assert!(
                computed >= last,
                "budget {budget}: {computed} < previous {last}"
            );
            last = computed;
        }
    }

    #[test]
    fn measure_modes_produce_valid_clusterings() {
        let d = dataset();
        for measure in [
            MeasureMode::Combined,
            MeasureMode::SetResemblance,
            MeasureMode::RandomWalk,
        ] {
            let config = DistinctConfig {
                measure,
                training: small_training(),
                ..Default::default()
            };
            let engine = Distinct::prepare(&d.catalog, "Publish", "author", config).unwrap();
            let truth = &d.truths[1];
            let c = engine.resolve(&ResolveRequest::new(&truth.refs)).clustering;
            assert_eq!(c.labels.len(), truth.refs.len());
        }
    }
}

//! Chaos kill sweeps over the durable resolution path.
//!
//! A clean durable run is measured first to learn its complete write
//! schedule (manifest, one checkpoint per profile chunk, similarity
//! tables, clustering). Then, for **every** write index in that schedule
//! and both fatal fault kinds (outright failure and torn write), a fresh
//! run is killed at exactly that write — retries disabled, so the fault
//! is a crash — and resumed on a cold engine. The invariants:
//!
//! * the killed run surfaces a typed [`DistinctError::Store`], never a
//!   panic or a silently wrong answer;
//! * the resume converges to the **bit-identical** partition of an
//!   uninterrupted resolve — labels and dendrogram merges both — and
//!   that expected partition is itself cross-checked against the
//!   reference oracle's naive agglomeration;
//! * killing the *resume* as well still converges on the third attempt;
//! * silent single-bit corruption (which the Vfs reports as success) is
//!   caught at resume time by the checkpoint checksums as a typed
//!   corruption or version error — or, when the flipped file is one the
//!   resume never needs, the answer is still bit-identical.
//!
//! The same discipline is applied to the *incremental* checkpoint path:
//! a durable update stream ([`Distinct::apply_update_stream`]) is killed
//! at every write in its schedule and resumed on a fresh base engine; the
//! resumed outcome — accumulated report and per-name partitions — must be
//! bit-identical to an uninterrupted stream's.

use cluster::Clustering;
use datagen::{AmbiguousSpec, DblpDataset, UpdateStream, World, WorldConfig};
use distinct::{Distinct, DistinctConfig, DistinctError, ResolveRequest, RunOptions, UpdateTuple};
use oracle::{Composite, Measure, OracleEngine};
use relstore::{FaultKind, FaultPlan, FaultyVfs, StdVfs};
use std::path::{Path, PathBuf};
use std::time::Duration;

fn dataset() -> DblpDataset {
    let mut config = WorldConfig::tiny(21);
    config.ambiguous = vec![AmbiguousSpec::new("Wei Wang", vec![10, 8, 5])];
    datagen::to_catalog(&World::generate(config)).unwrap()
}

fn engine(d: &DblpDataset) -> Distinct {
    Distinct::prepare(&d.catalog, "Publish", "author", DistinctConfig::default()).unwrap()
}

/// Small chunks so the sweep crosses several chunk boundaries; tight
/// backoff so the retry test stays fast.
fn opts() -> RunOptions {
    RunOptions {
        chunk_size: 8,
        backoff_base: Duration::from_micros(100),
        ..Default::default()
    }
}

fn fatal_opts() -> RunOptions {
    RunOptions {
        max_retries: 0,
        ..opts()
    }
}

struct TempDir(PathBuf);
impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("distinct_chaos_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        TempDir(dir)
    }
    fn path(&self) -> &Path {
        &self.0
    }
}
impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn assert_same(ctx: &str, a: &Clustering, b: &Clustering) {
    assert_eq!(a.labels, b.labels, "labels diverge: {ctx}");
    assert_eq!(
        a.dendrogram.merges(),
        b.dendrogram.merges(),
        "dendrograms diverge: {ctx}"
    );
}

/// The uninterrupted answer, cross-checked against the reference oracle.
fn oracle_checked_expected(d: &DblpDataset, e: &Distinct) -> Clustering {
    let refs = e.references_of("Wei Wang");
    let expected = e.resolve(&ResolveRequest::new(&refs)).clustering;

    let (paths, ref_fk) =
        oracle::select_paths(e.catalog(), "Publish", "author", e.config().max_path_len)
            .expect("oracle path selection");
    let weights = e.weights();
    let oracle_engine = OracleEngine::new(
        e.catalog(),
        paths,
        ref_fk,
        weights.resem.clone(),
        weights.walk.clone(),
        Measure::Combined,
        Composite::Geometric,
    );
    let oracle = oracle_engine.resolve(&refs, e.config().min_sim);
    assert_eq!(
        expected.labels, oracle.labels,
        "production baseline disagrees with the oracle"
    );
    assert_eq!(d.truths[0].refs.len(), refs.len());
    expected
}

/// Total writes in a clean durable run — the sweep space.
fn write_schedule_len(e: &Distinct, refs: &[relstore::TupleRef]) -> u64 {
    let dir = TempDir::new("schedule");
    let mut counting = FaultyVfs::new(FaultPlan::new(0));
    let req = ResolveRequest::new(refs).resume(dir.path());
    e.resolve_durable_with(&req, &mut counting, &opts())
        .expect("clean durable run");
    counting.writes_attempted()
}

#[test]
fn kill_at_every_write_point_resumes_bit_identically() {
    let d = dataset();
    let e = engine(&d);
    let refs = e.references_of("Wei Wang");
    let expected = oracle_checked_expected(&d, &e);

    let total = write_schedule_len(&e, &refs);
    // 23 refs / chunks of 8 → manifest + 3 chunks + similarity + clustering.
    assert_eq!(
        total, 6,
        "write schedule changed; widen or narrow the sweep"
    );

    for nth in 1..=total {
        for kind in [FaultKind::Fail, FaultKind::Torn] {
            let dir = TempDir::new(&format!("kill_{nth}_{kind:?}"));
            let req = ResolveRequest::new(&refs).resume(dir.path());
            let mut vfs = FaultyVfs::new(FaultPlan::new(0xC0FFEE + nth).with_fault(nth, kind));
            let err = e
                .resolve_durable_with(&req, &mut vfs, &fatal_opts())
                .expect_err("the injected crash must surface");
            assert!(
                matches!(err, DistinctError::Store(_)),
                "write #{nth} {kind:?}: expected a store error, got {err}"
            );

            // A cold engine resumes the directory to the identical answer.
            let cold = engine(&d);
            let resumed = cold
                .resolve_durable_with(&req, &mut StdVfs, &opts())
                .unwrap_or_else(|e| panic!("resume after write #{nth} {kind:?} failed: {e}"));
            assert!(resumed.outcome.is_complete());
            assert_same(
                &format!("kill at write #{nth} ({kind:?})"),
                &resumed.outcome.clustering,
                &expected,
            );
        }
    }
}

#[test]
fn killing_the_resume_still_converges() {
    let d = dataset();
    let e = engine(&d);
    let refs = e.references_of("Wei Wang");
    let expected = e.resolve(&ResolveRequest::new(&refs)).clustering;
    let total = write_schedule_len(&e, &refs);

    for nth in 1..=total {
        let dir = TempDir::new(&format!("double_{nth}"));
        let req = ResolveRequest::new(&refs).resume(dir.path());
        let mut vfs = FaultyVfs::new(FaultPlan::fail_nth_write(nth));
        e.resolve_durable_with(&req, &mut vfs, &fatal_opts())
            .expect_err("first crash");

        // The resume is itself crashed at its second write — unless it
        // has fewer than two writes left, in which case it completes.
        let cold = engine(&d);
        let mut vfs2 = FaultyVfs::new(FaultPlan::fail_nth_write(2));
        match cold.resolve_durable_with(&req, &mut vfs2, &fatal_opts()) {
            Ok(out) => assert_same(
                &format!("short resume after crash at #{nth}"),
                &out.outcome.clustering,
                &expected,
            ),
            Err(err) => {
                assert!(matches!(err, DistinctError::Store(_)), "{err}");
                let third = engine(&d)
                    .resolve_durable_with(&req, &mut StdVfs, &opts())
                    .expect("third attempt completes");
                assert_same(
                    &format!("double crash at #{nth} then #2"),
                    &third.outcome.clustering,
                    &expected,
                );
            }
        }
    }
}

#[test]
fn transient_faults_under_retry_never_need_a_second_attempt() {
    let d = dataset();
    let e = engine(&d);
    let refs = e.references_of("Wei Wang");
    let expected = e.resolve(&ResolveRequest::new(&refs)).clustering;
    let total = write_schedule_len(&e, &refs);

    // With retries enabled, a failing write is rewritten and the run
    // completes first try, wherever the fault lands.
    for nth in 1..=total {
        let dir = TempDir::new(&format!("retry_{nth}"));
        let req = ResolveRequest::new(&refs).resume(dir.path());
        let mut vfs = FaultyVfs::new(FaultPlan::fail_nth_write(nth));
        let out = e
            .resolve_durable_with(&req, &mut vfs, &opts())
            .unwrap_or_else(|e| panic!("retry should absorb write #{nth}: {e}"));
        assert!(out.run.io_retries >= 1, "write #{nth} must cost a retry");
        assert_same(
            &format!("retried write #{nth}"),
            &out.outcome.clustering,
            &expected,
        );
    }
}

#[test]
fn silent_bit_flips_are_caught_or_harmless_on_resume() {
    let d = dataset();
    let e = engine(&d);
    let refs = e.references_of("Wei Wang");
    let expected = e.resolve(&ResolveRequest::new(&refs)).clustering;
    let total = write_schedule_len(&e, &refs);

    for nth in 1..=total {
        let dir = TempDir::new(&format!("flip_{nth}"));
        let req = ResolveRequest::new(&refs).resume(dir.path());
        // The flip reports success: the run completes from its in-memory
        // state and the corruption sits latent on disk.
        let mut vfs = FaultyVfs::new(FaultPlan::bit_flip_nth_write(nth, 0x5EED + nth));
        let flipped = e
            .resolve_durable_with(&req, &mut vfs, &opts())
            .expect("bit flips are silent at write time");
        assert_same(
            &format!("flipped run #{nth}"),
            &flipped.outcome.clustering,
            &expected,
        );

        // Resume must never return a *wrong* partition: either the
        // checksum/version check trips, or the flipped file was not on
        // the resume path and the answer is identical.
        match engine(&d).resolve_durable_with(&req, &mut StdVfs, &opts()) {
            Ok(resumed) => assert_same(
                &format!("resume over latent flip #{nth}"),
                &resumed.outcome.clustering,
                &expected,
            ),
            Err(
                DistinctError::CorruptCheckpoint { .. } | DistinctError::VersionMismatch { .. },
            ) => {}
            Err(other) => panic!("flip #{nth}: expected typed corruption, got {other}"),
        }
    }
}

// ---------------------------------------------------------------------------
// Incremental checkpoint path: durable update streams
// ---------------------------------------------------------------------------

/// A small world split into base + log so the stream spans several
/// checkpoint chunks without the sweep getting expensive.
fn stream_fixture() -> (UpdateStream, Vec<UpdateTuple>) {
    let mut config = WorldConfig::tiny(33);
    config.n_authors = 80;
    config.n_venues = 10;
    config.n_communities = 4;
    config.mean_papers_per_author = 4.0;
    config.ambiguous = vec![AmbiguousSpec::new("Wei Wang", vec![6, 5])];
    let stream = datagen::update_stream(&config, 0.2, 9).unwrap();
    let updates = stream
        .log
        .iter()
        .map(|(rel, values)| UpdateTuple::new(rel.clone(), values.clone()))
        .collect();
    (stream, updates)
}

fn base_engine(stream: &UpdateStream) -> Distinct {
    Distinct::prepare(
        &stream.base.catalog,
        "Publish",
        "author",
        DistinctConfig::default(),
    )
    .unwrap()
}

/// Chunks of 16 so the sweep crosses several chunk commits.
fn stream_opts() -> RunOptions {
    RunOptions {
        chunk_size: 16,
        backoff_base: Duration::from_micros(100),
        ..Default::default()
    }
}

#[test]
fn killed_update_stream_resumes_bit_identically_at_every_write() {
    let (stream, updates) = stream_fixture();

    // The uninterrupted outcome, and with it the write schedule to sweep.
    let expected = {
        let dir = TempDir::new("stream_clean");
        let mut counting = relstore::FaultyVfs::new(FaultPlan::new(0));
        let out = base_engine(&stream)
            .apply_update_stream_with(&updates, dir.path(), &mut counting, &stream_opts())
            .expect("clean update stream");
        (out, counting.writes_attempted())
    };
    let (expected, total) = expected;
    assert_eq!(expected.report.applied, updates.len());
    assert!(
        total >= 3,
        "schedule too short to be an interesting sweep: {total} writes"
    );
    assert!(
        !expected.partitions.is_empty(),
        "the log must dirty at least one name"
    );

    for nth in 1..=total {
        for kind in [FaultKind::Fail, FaultKind::Torn] {
            let dir = TempDir::new(&format!("stream_kill_{nth}_{kind:?}"));
            let fatal = RunOptions {
                max_retries: 0,
                ..stream_opts()
            };
            let mut vfs = FaultyVfs::new(FaultPlan::new(0xBEEF + nth).with_fault(nth, kind));
            let err = base_engine(&stream)
                .apply_update_stream_with(&updates, dir.path(), &mut vfs, &fatal)
                .expect_err("the injected crash must surface");
            assert!(
                matches!(err, DistinctError::Store(_)),
                "stream write #{nth} {kind:?}: expected a store error, got {err}"
            );

            // Resume on a fresh engine prepared on the same base catalog:
            // committed chunks replay from disk, the rest runs live, and
            // the outcome is bit-identical to the uninterrupted stream.
            let resumed = base_engine(&stream)
                .apply_update_stream_with(&updates, dir.path(), &mut StdVfs, &stream_opts())
                .unwrap_or_else(|e| {
                    panic!("stream resume after write #{nth} {kind:?} failed: {e}")
                });
            assert_eq!(
                resumed.report, expected.report,
                "kill at stream write #{nth} ({kind:?}): report diverged"
            );
            assert_eq!(
                resumed.partitions, expected.partitions,
                "kill at stream write #{nth} ({kind:?}): partitions diverged"
            );
            assert_eq!(
                resumed.chunks_committed + resumed.chunks_replayed,
                expected.chunks_committed,
                "kill at stream write #{nth} ({kind:?}): chunk accounting broken"
            );
        }
    }
}

#[test]
fn update_stream_transient_faults_are_absorbed_by_retry() {
    let (stream, updates) = stream_fixture();
    let dir_clean = TempDir::new("stream_retry_expected");
    let expected = base_engine(&stream)
        .apply_update_stream_with(&updates, dir_clean.path(), &mut StdVfs, &stream_opts())
        .unwrap();

    // A failing write under retry is rewritten; the stream completes in
    // one call wherever the fault lands (spot-checked across the span).
    for nth in [1u64, 2, 3] {
        let dir = TempDir::new(&format!("stream_retry_{nth}"));
        let mut vfs = FaultyVfs::new(FaultPlan::fail_nth_write(nth));
        let out = base_engine(&stream)
            .apply_update_stream_with(&updates, dir.path(), &mut vfs, &stream_opts())
            .unwrap_or_else(|e| panic!("retry should absorb stream write #{nth}: {e}"));
        assert!(out.io_retries >= 1, "stream write #{nth} must cost a retry");
        assert_eq!(out.report, expected.report);
        assert_eq!(out.partitions, expected.partitions);
    }
}

//! Cross-crate property tests: randomized relational catalogs, CSV
//! round-trips, propagation invariants, clustering laws, and the
//! incremental-update ≡ batch equivalence under random base/log splits.

use cluster::{agglomerate, Linkage, MatrixMerger};
use datagen::{AmbiguousSpec, WorldConfig};
use distinct::{Distinct, DistinctConfig, ResolveRequest, UpdateTuple};
use proptest::prelude::*;
use relgraph::{propagate, LinkGraph};
use relstore::{
    csv, enumerate_paths, AttrType, Catalog, PathEnumOptions, Relation, SchemaBuilder, Tuple,
    TupleRef, Value,
};

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

/// A random two-level catalog: `Child(key, parent -> Parent, tag)` and
/// `Parent(key, label)`, with `n_parents` parents and arbitrary child
/// assignments (possibly null).
fn random_catalog(n_parents: usize, assignments: &[Option<usize>]) -> Catalog {
    let mut c = Catalog::new();
    c.add_relation(
        SchemaBuilder::new("Parent")
            .key("key", AttrType::Int)
            .data("label", AttrType::Str)
            .build()
            .unwrap(),
    )
    .unwrap();
    c.add_relation(
        SchemaBuilder::new("Child")
            .key("key", AttrType::Int)
            .fk("parent", AttrType::Int, "Parent")
            .data("tag", AttrType::Str)
            .build()
            .unwrap(),
    )
    .unwrap();
    for p in 0..n_parents {
        c.insert(
            "Parent",
            Tuple::new(vec![
                Value::Int(p as i64),
                Value::str(format!("L{}", p % 3)),
            ]),
        )
        .unwrap();
    }
    for (i, a) in assignments.iter().enumerate() {
        let parent = match a {
            Some(p) => Value::Int((*p % n_parents) as i64),
            None => Value::Null,
        };
        c.insert(
            "Child",
            Tuple::new(vec![
                Value::Int(i as i64),
                parent,
                Value::str(format!("t{}", i % 4)),
            ]),
        )
        .unwrap();
    }
    c.finalize(true).unwrap();
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // -- relstore ----------------------------------------------------------

    #[test]
    fn csv_round_trip_arbitrary_strings(
        rows in proptest::collection::vec(
            (any::<i64>(), "[ -~]*", proptest::option::of(any::<i64>())), 0..25),
    ) {
        let schema = SchemaBuilder::new("R")
            .data("text", AttrType::Str)
            .data("num", AttrType::Int)
            .data("id", AttrType::Int)
            .build()
            .unwrap();
        let mut rel = Relation::new(schema.clone());
        for (i, (id, text, num)) in rows.iter().enumerate() {
            let _ = i;
            rel.insert(Tuple::new(vec![
                Value::str(text),
                num.map(Value::Int).unwrap_or(Value::Null),
                Value::Int(*id),
            ]))
            .unwrap();
        }
        let emitted = csv::to_csv(&rel);
        let mut back = Relation::new(schema);
        csv::load_csv(&mut back, &emitted).unwrap();
        prop_assert_eq!(back.len(), rel.len());
        for (tid, t) in rel.iter() {
            prop_assert_eq!(t, back.tuple(tid));
        }
    }

    #[test]
    fn fk_traversal_round_trips(
        n_parents in 1usize..6,
        assignments in proptest::collection::vec(
            proptest::option::of(0usize..16), 1..30),
    ) {
        let c = random_catalog(n_parents, &assignments);
        let child = c.relation_id("Child").unwrap();
        let fk = c.fk_edges()[0].id;
        // For each child with a parent: the child appears in its parent's
        // backward list exactly once.
        for (tid, t) in c.relation(child).iter() {
            let r = TupleRef::new(child, tid);
            match c.follow_forward(fk, r) {
                Some(parent) => {
                    let back = c.follow_backward(fk, parent);
                    prop_assert_eq!(back.iter().filter(|&&x| x == r).count(), 1);
                    prop_assert_eq!(c.backward_count(fk, parent), back.len());
                }
                None => prop_assert!(t.get(1).is_null()),
            }
        }
    }

    // -- relgraph -----------------------------------------------------------

    #[test]
    fn propagation_mass_conservation_on_random_catalogs(
        n_parents in 1usize..6,
        assignments in proptest::collection::vec(
            proptest::option::of(0usize..16), 1..25),
        start_idx in 0usize..25,
    ) {
        let c = random_catalog(n_parents, &assignments);
        let ex = relstore::expand_values(&c).unwrap();
        let graph = LinkGraph::build(&ex.catalog);
        let child = ex.catalog.relation_id("Child").unwrap();
        let n_children = ex.catalog.relation(child).len();
        let origin = TupleRef::new(child, relstore::TupleId((start_idx % n_children) as u32));
        let opts = PathEnumOptions { max_len: 3, ..Default::default() };
        for path in enumerate_paths(&ex.catalog, child, &opts) {
            let prop = propagate(&graph, &ex.catalog, &path, origin);
            // Forward mass never exceeds 1.
            prop_assert!(prop.total_forward() <= 1.0 + 1e-9);
            // Forward and backward supports coincide; all values in (0, 1].
            for (n, &f) in &prop.forward {
                prop_assert!(f > 0.0 && f <= 1.0 + 1e-9);
                let b = prop.backward[n];
                prop_assert!(b > 0.0 && b <= 1.0 + 1e-9);
            }
            prop_assert_eq!(prop.forward.len(), prop.backward.len());
        }
    }

    // -- cluster -------------------------------------------------------------

    #[test]
    fn clustering_labels_are_a_valid_partition(
        sims in proptest::collection::vec(0.0f64..1.0, 0..36),
        min_sim in 0.0f64..1.0,
    ) {
        // Build a symmetric matrix from the flat triangle.
        let n = (1..).find(|&k| k * (k + 1) / 2 >= sims.len()).unwrap_or(1).min(8);
        let mut m = vec![vec![0.0; n]; n];
        let mut it = sims.iter();
        for i in 0..n {
            for j in (i + 1)..n {
                let v = *it.next().unwrap_or(&0.0);
                m[i][j] = v;
                m[j][i] = v;
            }
        }
        for linkage in [Linkage::Single, Linkage::Complete, Linkage::Average] {
            let mut merger = MatrixMerger::new(m.clone(), linkage);
            let c = agglomerate(n, &mut merger, min_sim);
            prop_assert_eq!(c.labels.len(), n);
            // Labels dense from 0.
            let k = c.cluster_count();
            for &l in &c.labels {
                prop_assert!(l < k);
            }
            for label in 0..k {
                prop_assert!(c.labels.contains(&label));
            }
            // Merges recorded in non-increasing similarity order.
            let merge_sims: Vec<f64> =
                c.dendrogram.merges().iter().map(|mg| mg.similarity).collect();
            for w in merge_sims.windows(2) {
                prop_assert!(w[0] >= w[1] - 1e-12);
            }
        }
    }

    #[test]
    fn higher_threshold_never_produces_fewer_clusters(
        sims in proptest::collection::vec(0.0f64..1.0, 15),
        t_lo in 0.0f64..0.5,
        dt in 0.0f64..0.5,
    ) {
        let n = 6;
        let mut m = vec![vec![0.0; n]; n];
        let mut it = sims.iter();
        for i in 0..n {
            for j in (i + 1)..n {
                let v = *it.next().unwrap();
                m[i][j] = v;
                m[j][i] = v;
            }
        }
        let clusters_at = |t: f64| {
            let mut merger = MatrixMerger::new(m.clone(), Linkage::Average);
            agglomerate(n, &mut merger, t).cluster_count()
        };
        prop_assert!(clusters_at(t_lo + dt) >= clusters_at(t_lo));
    }

    // -- eval ----------------------------------------------------------------

    #[test]
    fn pairwise_and_bcubed_agree_on_perfection(
        gold in proptest::collection::vec(0usize..4, 1..20),
        pred in proptest::collection::vec(0usize..4, 1..20),
    ) {
        let n = gold.len().min(pred.len());
        let (gold, pred) = (&gold[..n], &pred[..n]);
        let pw = eval::pairwise_scores(gold, pred);
        let b3 = eval::bcubed_scores(gold, pred);
        // Same-partition check: pairwise f = 1 iff B3 f = 1.
        prop_assert_eq!(pw.f_measure >= 1.0 - 1e-12, b3.f_measure >= 1.0 - 1e-12);
        // B3 recall 1 iff pairwise recall 1 (no gold pair separated).
        prop_assert_eq!(pw.recall >= 1.0 - 1e-12, b3.recall >= 1.0 - 1e-12);
    }

    // -- incremental updates -------------------------------------------------

    // For a random world and a random base/log split, applying the log
    // incrementally to an engine prepared on the base must reach exactly
    // the partition a cold engine computes on the union catalog — for
    // every planted ambiguous name. On failure the world is first shrunk
    // with `datagen::shrink_world` so the panic message carries a minimal
    // reproducing configuration.
    #[test]
    fn incremental_updates_match_batch_on_random_splits(
        world_seed in 1u64..1_000_000,
        split_seed in 1u64..1_000_000,
        holdout_pct in 5u32..45,
    ) {
        let config = update_world(world_seed);
        let holdout = f64::from(holdout_pct) / 100.0;
        if let Err(why) = streamed_equals_union_batch(&config, holdout, split_seed) {
            let shrunk = datagen::shrink_world(config, |candidate| {
                streamed_equals_union_batch(candidate, holdout, split_seed).is_err()
            });
            prop_assert!(
                false,
                "incremental != batch: {why}\nshrunk reproducing config: {shrunk:?}\n\
                 (holdout {holdout}, split seed {split_seed})"
            );
        }
    }
}

/// Small world for the incremental-update property: two planted names so
/// an update can dirty one name while the other stays cached.
fn update_world(seed: u64) -> WorldConfig {
    let mut config = WorldConfig::tiny(seed);
    config.n_authors = 70;
    config.n_venues = 8;
    config.n_communities = 4;
    config.mean_papers_per_author = 4.0;
    config.ambiguous = vec![
        AmbiguousSpec::new("Wei Wang", vec![5, 4]),
        AmbiguousSpec::new("Hui Fang", vec![4, 3]),
    ];
    config
}

/// `Ok(())` iff streaming the split's log into a base engine reproduces
/// the union-catalog batch partition for every planted name. The check
/// is exact (bit-identical labels and dendrograms), not approximate.
fn streamed_equals_union_batch(
    config: &WorldConfig,
    holdout: f64,
    split_seed: u64,
) -> Result<(), String> {
    let stream = match datagen::update_stream(config, holdout, split_seed) {
        Ok(s) => s,
        Err(e) => return Err(format!("update_stream failed: {e}")),
    };
    let updates: Vec<UpdateTuple> = stream
        .log
        .iter()
        .map(|(rel, values)| UpdateTuple::new(rel.clone(), values.clone()))
        .collect();

    let mut streamed = match Distinct::prepare(
        &stream.base.catalog,
        "Publish",
        "author",
        DistinctConfig::default(),
    ) {
        Ok(e) => e,
        Err(e) => return Err(format!("base prepare failed: {e}")),
    };
    if let Err(e) = streamed.apply_updates(&updates) {
        return Err(format!("apply_updates failed: {e}"));
    }

    let batch = match Distinct::prepare(
        streamed.catalog(),
        "Publish",
        "author",
        DistinctConfig::default(),
    ) {
        Ok(e) => e,
        Err(e) => return Err(format!("union prepare failed: {e}")),
    };

    for truth in &stream.truths {
        let refs = streamed.references_of(&truth.name);
        if refs != truth.refs {
            return Err(format!(
                "{}: streamed references diverge from the split's ground truth",
                truth.name
            ));
        }
        let inc = streamed.resolve(&ResolveRequest::incremental(&refs));
        let cold = batch.resolve(&ResolveRequest::new(&refs));
        if inc.clustering.labels != cold.clustering.labels {
            return Err(format!(
                "{}: labels diverge: incremental {:?} vs batch {:?}",
                truth.name, inc.clustering.labels, cold.clustering.labels
            ));
        }
        if inc.clustering.dendrogram.merges() != cold.clustering.dendrogram.merges() {
            return Err(format!("{}: dendrograms diverge", truth.name));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Pinned regressions (see tests/property_suite.proptest-regressions)
// ---------------------------------------------------------------------------

/// The shrunk counterexample persisted as `cc fbb22b6a…`: one row holding
/// an empty string and a NULL integer. The vendored proptest never replays
/// the `.proptest-regressions` file (its RNG stream is derived from the
/// test name, with no persistence), so the case is pinned here explicitly:
/// a bare empty CSV field must round-trip as `Null` and a quoted `""` as
/// the empty string, or the two collapse into each other.
#[test]
fn regression_csv_round_trip_empty_string_null_int() {
    let schema = SchemaBuilder::new("R")
        .data("text", AttrType::Str)
        .data("num", AttrType::Int)
        .data("id", AttrType::Int)
        .build()
        .unwrap();
    let mut rel = Relation::new(schema.clone());
    rel.insert(Tuple::new(vec![Value::str(""), Value::Null, Value::Int(0)]))
        .unwrap();
    let emitted = csv::to_csv(&rel);
    // The writer must keep the two nothing-like values distinguishable.
    assert!(
        emitted.lines().nth(1).unwrap().starts_with("\"\","),
        "empty string must be emitted quoted, got {emitted:?}"
    );
    let mut back = Relation::new(schema);
    csv::load_csv(&mut back, &emitted).unwrap();
    assert_eq!(back.len(), 1);
    let t = back.tuple(relstore::TupleId(0));
    assert_eq!(t.values()[0], Value::str(""));
    assert_eq!(t.values()[1], Value::Null);
    assert_eq!(t.values()[2], Value::Int(0));
}

//! Error types for the relational store.

use std::fmt;

/// Errors produced by catalog construction, data loading, and traversal.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // variant fields are self-describing
pub enum StoreError {
    /// A relation name was registered twice in the same catalog.
    DuplicateRelation(String),
    /// A relation name was referenced but never registered.
    UnknownRelation(String),
    /// An attribute name was referenced but does not exist on the relation.
    UnknownAttribute { relation: String, attribute: String },
    /// A tuple's arity does not match its relation schema.
    ArityMismatch {
        relation: String,
        expected: usize,
        got: usize,
    },
    /// A value's type does not match the declared attribute type.
    TypeMismatch {
        relation: String,
        attribute: String,
        expected: String,
        got: String,
    },
    /// A key value was inserted twice.
    DuplicateKey { relation: String, key: String },
    /// A foreign key referenced a key value absent from the target relation.
    DanglingForeignKey {
        relation: String,
        attribute: String,
        value: String,
    },
    /// A foreign key definition was structurally invalid (e.g. target has no key).
    InvalidForeignKey {
        relation: String,
        attribute: String,
        reason: String,
    },
    /// CSV input could not be parsed.
    Csv { line: usize, reason: String },
    /// A join path was structurally invalid for this catalog.
    InvalidJoinPath(String),
    /// An underlying filesystem operation failed.
    Io { context: String, reason: String },
    /// A persisted file failed integrity verification (checksum mismatch,
    /// truncation, unparseable framing). The store must not be trusted.
    Corrupt { file: String, reason: String },
    /// A store directory has no manifest: either it predates manifests,
    /// was never fully committed, or isn't a store at all.
    MissingManifest { dir: String },
    /// A persisted file declares a format version this build does not
    /// understand. Unlike [`StoreError::Corrupt`] the bytes are intact —
    /// they were written by a different (older or newer) build.
    VersionMismatch {
        file: String,
        found: u32,
        expected: u32,
    },
    /// An in-memory structure could not be encoded for persistence.
    Serialize { what: String, reason: String },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::DuplicateRelation(name) => {
                write!(f, "relation `{name}` is already defined")
            }
            StoreError::UnknownRelation(name) => write!(f, "unknown relation `{name}`"),
            StoreError::UnknownAttribute {
                relation,
                attribute,
            } => {
                write!(f, "relation `{relation}` has no attribute `{attribute}`")
            }
            StoreError::ArityMismatch {
                relation,
                expected,
                got,
            } => write!(
                f,
                "tuple for `{relation}` has {got} values but the schema declares {expected}"
            ),
            StoreError::TypeMismatch {
                relation,
                attribute,
                expected,
                got,
            } => write!(
                f,
                "value for `{relation}.{attribute}` has type {got}, expected {expected}"
            ),
            StoreError::DuplicateKey { relation, key } => {
                write!(f, "duplicate key {key} in relation `{relation}`")
            }
            StoreError::DanglingForeignKey {
                relation,
                attribute,
                value,
            } => write!(
                f,
                "foreign key `{relation}.{attribute}` = {value} has no matching target tuple"
            ),
            StoreError::InvalidForeignKey {
                relation,
                attribute,
                reason,
            } => write!(f, "invalid foreign key `{relation}.{attribute}`: {reason}"),
            StoreError::Csv { line, reason } => {
                write!(f, "CSV parse error at line {line}: {reason}")
            }
            StoreError::InvalidJoinPath(reason) => write!(f, "invalid join path: {reason}"),
            StoreError::Io { context, reason } => write!(f, "I/O failure ({context}): {reason}"),
            StoreError::Corrupt { file, reason } => {
                write!(f, "corrupt store file `{file}`: {reason}")
            }
            StoreError::MissingManifest { dir } => {
                write!(f, "no manifest.json in `{dir}`: not a committed store")
            }
            StoreError::VersionMismatch {
                file,
                found,
                expected,
            } => write!(
                f,
                "store file `{file}` has format version {found}, this build understands {expected}"
            ),
            StoreError::Serialize { what, reason } => {
                write!(f, "could not serialize {what}: {reason}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, StoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = StoreError::DuplicateRelation("Authors".into());
        assert!(e.to_string().contains("Authors"));

        let e = StoreError::UnknownAttribute {
            relation: "Publish".into(),
            attribute: "zzz".into(),
        };
        assert!(e.to_string().contains("Publish"));
        assert!(e.to_string().contains("zzz"));

        let e = StoreError::ArityMismatch {
            relation: "R".into(),
            expected: 3,
            got: 2,
        };
        assert!(e.to_string().contains('3'));
        assert!(e.to_string().contains('2'));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&StoreError::UnknownRelation("x".into()));
    }
}

//! Process-wide allocation metering for the benchmark rungs.
//!
//! A counting wrapper around the system allocator: every `alloc` and
//! `realloc` bumps two relaxed atomics (call count and bytes requested),
//! and rungs snapshot the counters around a stage to report per-stage
//! `allocs` / `bytes_alloc` next to wall time. The wrapper is compiled
//! unconditionally so it can be unit-tested, but it is only installed as
//! the global allocator under the `bench` cargo feature — metering every
//! allocation costs two atomic adds per call, which the default test and
//! experiment builds should not pay. Without the feature the counters
//! simply stay at zero and [`metering_enabled`] reports `false`, so rung
//! JSON keeps a stable schema either way.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of `alloc`/`realloc` calls since process start.
static ALLOCS: AtomicU64 = AtomicU64::new(0);
/// Total bytes requested by those calls (not peak, not live).
static BYTES: AtomicU64 = AtomicU64::new(0);

/// A [`System`] pass-through that counts allocation calls and bytes.
///
/// The counters are monotonic totals: deallocations are deliberately not
/// subtracted, because the rungs report churn (how much allocator
/// traffic a stage generates), not residency — peak RSS already covers
/// the latter.
pub struct CountingAlloc;

// SAFETY: every method delegates verbatim to `System`, which upholds the
// `GlobalAlloc` contract; the counter updates have no effect on the
// returned pointers or layouts.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[cfg(feature = "bench")]
#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Whether the counting allocator is installed (the `bench` feature).
/// When `false`, snapshots are all-zero and deltas are meaningless.
pub fn metering_enabled() -> bool {
    cfg!(feature = "bench")
}

/// A point-in-time reading of the process allocation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocSnapshot {
    /// `alloc`/`realloc` calls so far.
    pub allocs: u64,
    /// Bytes requested by those calls so far.
    pub bytes_alloc: u64,
}

impl AllocSnapshot {
    /// Read the counters now.
    pub fn now() -> AllocSnapshot {
        AllocSnapshot {
            allocs: ALLOCS.load(Ordering::Relaxed),
            bytes_alloc: BYTES.load(Ordering::Relaxed),
        }
    }

    /// Counter movement since `self` was taken (saturating, so a stale
    /// snapshot can never produce a bogus huge delta on wraparound).
    pub fn delta(&self) -> AllocSnapshot {
        let now = AllocSnapshot::now();
        AllocSnapshot {
            allocs: now.allocs.saturating_sub(self.allocs),
            bytes_alloc: now.bytes_alloc.saturating_sub(self.bytes_alloc),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_move_only_when_the_feature_installs_the_allocator() {
        let before = AllocSnapshot::now();
        let v: Vec<u64> = (0..4096).collect();
        assert_eq!(v.len(), 4096);
        let d = before.delta();
        if metering_enabled() {
            assert!(d.allocs >= 1, "a fresh Vec must be counted: {d:?}");
            assert!(d.bytes_alloc >= 4096 * 8, "bytes under-counted: {d:?}");
        } else {
            assert_eq!(d, AllocSnapshot::default(), "counters must stay zero");
        }
    }

    #[test]
    fn wrapper_round_trips_through_the_system_allocator() {
        // Exercise the wrapper directly (it is not installed globally in
        // default builds): alloc, realloc, dealloc must behave.
        let layout = Layout::from_size_align(64, 8).expect("valid layout");
        // SAFETY: layout is non-zero-sized; the pointer is used and freed
        // with matching layouts within this block.
        unsafe {
            let p = CountingAlloc.alloc(layout);
            assert!(!p.is_null());
            p.write(7);
            let q = CountingAlloc.realloc(p, layout, 128);
            assert!(!q.is_null());
            assert_eq!(q.read(), 7);
            let grown = Layout::from_size_align(128, 8).expect("valid layout");
            CountingAlloc.dealloc(q, grown);
        }
        let base = AllocSnapshot::now();
        assert!(base.allocs >= 2, "direct wrapper calls must be counted");
    }
}

//! The oracle end-to-end engine: profiles → pairwise tables → naive
//! clustering, assembled from the literal per-pillar modules.
//!
//! Unlike the production pipeline there is no link graph, no profile
//! cache, no executor, no heap — just nested loops over `BTreeMap`s in
//! deterministic tuple order. The engine exists so differential tests can
//! ask for exactly the intermediate the production stage produced
//! (per-pair resemblance, directed walk, composite similarity) as well as
//! the final clustering.

use crate::cluster::{naive_agglomerate, OracleClustering};
use crate::profile::{build_profile, OracleProfile};
use crate::resemblance::weighted_jaccard;
use crate::walk::directed_walk;
use relstore::{Catalog, FkId, JoinPath, TupleRef};

/// Which similarity measure drives clustering (paper §4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Measure {
    /// Average-Link weighted set resemblance only.
    SetResemblance,
    /// Collective random walk probability only.
    RandomWalk,
    /// Both, combined per [`Composite`] — the paper's DISTINCT setting.
    Combined,
}

/// How the two measures are combined under [`Measure::Combined`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Composite {
    /// Geometric mean `√(r · w)` (the paper's choice).
    Geometric,
    /// Arithmetic mean `(r + w) / 2`.
    Arithmetic,
}

/// Pairwise per-stage tables for a slice of references.
#[derive(Debug, Clone)]
pub struct OraclePairwise {
    /// Weighted set resemblance per pair (symmetric, zero diagonal).
    pub resemblance: Vec<Vec<f64>>,
    /// Weighted *directed* walk probability `i → j` (asymmetric).
    pub dwalk: Vec<Vec<f64>>,
    /// Symmetrized weighted walk probability `0.5·(d[i][j] + d[j][i])`.
    pub walk: Vec<Vec<f64>>,
    /// Leaf composite similarity per pair under the engine's measure.
    pub similarity: Vec<Vec<f64>>,
}

/// A fully configured reference oracle over one catalog.
#[derive(Debug)]
pub struct OracleEngine<'a> {
    catalog: &'a Catalog,
    paths: Vec<JoinPath>,
    ref_fk: FkId,
    resem_weights: Vec<f64>,
    walk_weights: Vec<f64>,
    measure: Measure,
    composite: Composite,
}

impl<'a> OracleEngine<'a> {
    /// Build an engine from pre-selected paths and per-path weights.
    ///
    /// `resem_weights` and `walk_weights` must have one entry per path —
    /// pass `1/n` everywhere for the unsupervised (uniform) setting.
    pub fn new(
        catalog: &'a Catalog,
        paths: Vec<JoinPath>,
        ref_fk: FkId,
        resem_weights: Vec<f64>,
        walk_weights: Vec<f64>,
        measure: Measure,
        composite: Composite,
    ) -> Self {
        assert_eq!(
            resem_weights.len(),
            paths.len(),
            "one resem weight per path"
        );
        assert_eq!(walk_weights.len(), paths.len(), "one walk weight per path");
        Self {
            catalog,
            paths,
            ref_fk,
            resem_weights,
            walk_weights,
            measure,
            composite,
        }
    }

    /// The join paths the oracle propagates along.
    pub fn paths(&self) -> &[JoinPath] {
        &self.paths
    }

    /// Naive profile of one reference.
    pub fn profile(&self, reference: TupleRef) -> OracleProfile {
        build_profile(self.catalog, &self.paths, self.ref_fk, reference)
    }

    /// Weighted leaf resemblance between two profiles:
    /// `Σ_k w_k · Resem(forward_k(a), forward_k(b))`.
    pub fn pair_resemblance(&self, a: &OracleProfile, b: &OracleProfile) -> f64 {
        let mut sum = 0.0;
        for (k, w) in self.resem_weights.iter().enumerate() {
            sum += w * weighted_jaccard(&a.props[k].forward, &b.props[k].forward);
        }
        sum
    }

    /// Weighted directed walk probability `a → b`:
    /// `Σ_k w_k · Walk_k(a → b)`.
    pub fn pair_directed_walk(&self, a: &OracleProfile, b: &OracleProfile) -> f64 {
        let mut sum = 0.0;
        for (k, w) in self.walk_weights.iter().enumerate() {
            sum += w * directed_walk(&a.props[k].forward, &b.props[k].backward);
        }
        sum
    }

    /// Leaf composite similarity from a symmetric resemblance and the two
    /// directed walk values.
    fn leaf_similarity(&self, resem: f64, d_ab: f64, d_ba: f64) -> f64 {
        let walk = 0.5 * (d_ab + d_ba);
        match self.measure {
            Measure::SetResemblance => resem,
            Measure::RandomWalk => walk,
            Measure::Combined => match self.composite {
                Composite::Geometric => (resem * walk).sqrt(),
                Composite::Arithmetic => 0.5 * (resem + walk),
            },
        }
    }

    /// Compute every pairwise per-stage table for `refs`.
    pub fn pairwise(&self, refs: &[TupleRef]) -> OraclePairwise {
        let n = refs.len();
        let profiles: Vec<OracleProfile> = refs.iter().map(|&r| self.profile(r)).collect();
        let mut resemblance = vec![vec![0.0; n]; n];
        let mut dwalk = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                dwalk[i][j] = self.pair_directed_walk(&profiles[i], &profiles[j]);
                if i < j {
                    let r = self.pair_resemblance(&profiles[i], &profiles[j]);
                    resemblance[i][j] = r;
                    resemblance[j][i] = r;
                }
            }
        }
        let mut walk = vec![vec![0.0; n]; n];
        let mut similarity = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                walk[i][j] = 0.5 * (dwalk[i][j] + dwalk[j][i]);
                similarity[i][j] =
                    self.leaf_similarity(resemblance[i][j], dwalk[i][j], dwalk[j][i]);
            }
        }
        OraclePairwise {
            resemblance,
            dwalk,
            walk,
            similarity,
        }
    }

    /// Resolve: cluster `refs` bottom-up until no pair reaches `min_sim`.
    pub fn resolve(&self, refs: &[TupleRef], min_sim: f64) -> OracleClustering {
        let tables = self.pairwise(refs);
        naive_agglomerate(
            refs.len(),
            &tables.resemblance,
            &tables.dwalk,
            self.measure,
            self.composite,
            min_sim,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paths::select_paths;
    use datagen::{AmbiguousSpec, World, WorldConfig};

    fn engine_fixture() -> (datagen::DblpDataset, relstore::Expanded) {
        let mut config = WorldConfig::tiny(6);
        config.n_authors = 90;
        config.ambiguous = vec![AmbiguousSpec::new("Wei Wang", vec![4, 3])];
        let d = datagen::to_catalog(&World::generate(config)).unwrap();
        let ex = relstore::expand_values(&d.catalog).unwrap();
        (d, ex)
    }

    #[test]
    fn pairwise_tables_are_consistent() {
        let (d, ex) = engine_fixture();
        let (paths, ref_fk) = select_paths(&ex.catalog, "Publish", "author", 3).unwrap();
        let n_paths = paths.len();
        let w = vec![1.0 / n_paths as f64; n_paths];
        let eng = OracleEngine::new(
            &ex.catalog,
            paths,
            ref_fk,
            w.clone(),
            w,
            Measure::Combined,
            Composite::Geometric,
        );
        let refs = &d.truths[0].refs;
        let t = eng.pairwise(refs);
        let n = refs.len();
        for i in 0..n {
            assert_eq!(t.similarity[i][i], 0.0);
            for j in 0..n {
                if i == j {
                    continue;
                }
                // Symmetry of the symmetric tables.
                assert_eq!(t.resemblance[i][j], t.resemblance[j][i]);
                assert_eq!(t.walk[i][j], t.walk[j][i]);
                assert_eq!(t.similarity[i][j], t.similarity[j][i]);
                // Leaf similarity reconstructs from resemblance and walk.
                let expect = (t.resemblance[i][j] * t.walk[i][j]).sqrt();
                assert!((t.similarity[i][j] - expect).abs() < 1e-15);
                assert!(t.resemblance[i][j] >= 0.0 && t.resemblance[i][j] <= 1.0 + 1e-12);
            }
        }
    }

    #[test]
    fn resolve_separates_the_seeded_entities_somewhere() {
        // With a permissive threshold the 4+3 split should produce at
        // least one merge and at most n clusters; exact agreement with
        // production is the differential suite's job, not this unit's.
        let (d, ex) = engine_fixture();
        let (paths, ref_fk) = select_paths(&ex.catalog, "Publish", "author", 3).unwrap();
        let n_paths = paths.len();
        let w = vec![1.0 / n_paths as f64; n_paths];
        let eng = OracleEngine::new(
            &ex.catalog,
            paths,
            ref_fk,
            w.clone(),
            w,
            Measure::Combined,
            Composite::Geometric,
        );
        let refs = &d.truths[0].refs;
        let c = eng.resolve(refs, 1e-6);
        assert_eq!(c.labels.len(), refs.len());
        let k = c.cluster_count();
        assert!(k >= 1 && k <= refs.len());
    }
}

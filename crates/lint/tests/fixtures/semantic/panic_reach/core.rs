//@ path: crates/core/src/pipeline.rs
//@ crate: core
//@ deps: cluster
//@ package: distinct
//! Fixture: a public `resolve` entry point in crates/core that reaches a
//! panic site two crates away. The panic itself lives in `cluster.rs`.

/// The resolver facade.
pub struct Distinct;

impl Distinct {
    /// Entry point: D101 roots the reachability walk here.
    pub fn resolve(&self) -> usize {
        cluster::engine::run(1)
    }
}

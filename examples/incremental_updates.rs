//! Incremental resolution: new tuples stream into a prepared engine and
//! only the touched part of the answer is recomputed — dirty tracking,
//! warm pair caches, component-local re-clustering, and the durable
//! update-stream path. The streaming partitions are bit-identical to
//! cold batch resolves over the same catalog. See DESIGN.md §16 and the
//! convergence oracle in `tests/oracle_metamorphic.rs`.
//!
//! Run: `cargo run --release --example incremental_updates`

use distinct::{Distinct, DistinctConfig, ResolveRequest, UpdateTuple};

fn main() {
    // A small world with one planted ambiguous name, split into a base
    // catalog plus a replayable log of held-out papers.
    let mut config = datagen::WorldConfig::tiny(21);
    config.ambiguous = vec![datagen::AmbiguousSpec::new("Wei Wang", vec![10, 8, 5])];
    let stream = datagen::update_stream(&config, 0.2, 9).expect("valid world");
    println!(
        "base catalog holds back {} papers as a {}-tuple update log",
        stream.held_out_papers,
        stream.log.len()
    );

    let mut engine = Distinct::prepare(
        &stream.base.catalog,
        "Publish",
        "author",
        DistinctConfig::default(),
    )
    .expect("prepare");

    // Warm the name: an *incremental* request caches the pair tables.
    let refs = engine.references_of("Wei Wang");
    let warm = engine.resolve(&ResolveRequest::incremental(&refs));
    println!(
        "warm resolve: {} references, {} pair-units scored",
        refs.len(),
        warm.exec.pairs_total
    );

    // Stream the log one tuple at a time: each apply reports what it
    // touched, each re-resolve pays only for the dirty pairs.
    for (relation, values) in &stream.log {
        let update = UpdateTuple::new(relation.clone(), values.clone());
        let report = engine
            .apply_updates(std::slice::from_ref(&update))
            .expect("apply");
        if report.names.iter().any(|n| n == "Wei Wang") {
            let refs = engine.references_of("Wei Wang");
            let out = engine.resolve(&ResolveRequest::incremental(&refs));
            println!(
                "  +{relation} row: {} refs dirtied, re-scored {} of {} pair-units",
                report.refs_dirtied, out.exec.pairs_dirty, out.exec.pairs_total
            );
        }
    }

    // Streaming converged: the final partition equals a cold batch
    // resolve over the grown catalog, on a fresh engine.
    let refs = engine.references_of("Wei Wang");
    let streamed = engine.resolve(&ResolveRequest::incremental(&refs));
    let cold_engine = Distinct::prepare(
        engine.catalog(),
        "Publish",
        "author",
        DistinctConfig::default(),
    )
    .expect("union prepare");
    let cold = cold_engine.resolve(&ResolveRequest::new(&refs));
    assert_eq!(
        streamed.clustering.labels, cold.clustering.labels,
        "streaming must converge to the cold batch partition"
    );
    let k = cold.clustering.labels.iter().copied().max().unwrap_or(0) + 1;
    println!(
        "streamed ≡ batch: {} references -> {} people",
        refs.len(),
        k
    );

    // The durable variant: the whole log in one resumable, chunked,
    // crash-safe call — checkpoints land in a run directory, and a
    // second call over the same directory is a pure replay.
    let mut fresh = Distinct::prepare(
        &stream.base.catalog,
        "Publish",
        "author",
        DistinctConfig::default(),
    )
    .expect("prepare");
    let updates: Vec<UpdateTuple> = stream
        .log
        .iter()
        .map(|(r, v)| UpdateTuple::new(r.clone(), v.clone()))
        .collect();
    let run_dir = std::env::temp_dir().join(format!("incremental_updates_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&run_dir);
    let outcome = fresh
        .apply_update_stream(&updates, &run_dir)
        .expect("durable stream");
    println!(
        "durable stream: {} applied in {} chunks, {} names affected",
        outcome.report.applied, outcome.chunks_committed, outcome.report.names_affected
    );
    let wei = outcome
        .partitions
        .iter()
        .find(|(n, _)| n == "Wei Wang")
        .expect("Wei Wang partition");
    assert_eq!(wei.1, cold.clustering.labels, "durable stream diverged");
    let _ = std::fs::remove_dir_all(&run_dir);
    println!("durable stream partition matches too");
}

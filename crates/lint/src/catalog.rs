//! The lint registry: every ID, its severity, and the invariant it guards.

use std::fmt;

/// Lint identifiers. `D000` is the meta-lint about the suppression
/// machinery itself; `D001`–`D007` and `D105` guard the project
/// invariants with per-file token scans, and `D101`–`D104` are the
/// interprocedural (call-graph-backed) lints run by `check --semantic`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)] // the catalog below documents each variant
pub enum LintId {
    D000,
    D001,
    D002,
    D003,
    D004,
    D005,
    D006,
    D007,
    D101,
    D102,
    D103,
    D104,
    D105,
}

/// How bad a violation is. `Deny` findings fail the build outright (after
/// baseline resolution); `Warn` findings fail only when new.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Violates a correctness invariant.
    Deny,
    /// Violates a hygiene contract.
    Warn,
}

impl LintId {
    /// All registered lints, in ID order.
    pub const ALL: [LintId; 13] = [
        LintId::D000,
        LintId::D001,
        LintId::D002,
        LintId::D003,
        LintId::D004,
        LintId::D005,
        LintId::D006,
        LintId::D007,
        LintId::D101,
        LintId::D102,
        LintId::D103,
        LintId::D104,
        LintId::D105,
    ];

    /// Parse `"D001"` (case-insensitive) into an ID.
    pub fn parse(s: &str) -> Option<LintId> {
        let s = s.trim().to_ascii_uppercase();
        LintId::ALL.iter().copied().find(|id| id.name() == s)
    }

    /// The canonical `D00x` name.
    pub fn name(self) -> &'static str {
        match self {
            LintId::D000 => "D000",
            LintId::D001 => "D001",
            LintId::D002 => "D002",
            LintId::D003 => "D003",
            LintId::D004 => "D004",
            LintId::D005 => "D005",
            LintId::D006 => "D006",
            LintId::D007 => "D007",
            LintId::D101 => "D101",
            LintId::D102 => "D102",
            LintId::D103 => "D103",
            LintId::D104 => "D104",
            LintId::D105 => "D105",
        }
    }

    /// Severity class.
    pub fn severity(self) -> Severity {
        match self {
            LintId::D000 => Severity::Deny,
            LintId::D001 => Severity::Deny,
            LintId::D002 => Severity::Warn,
            LintId::D003 => Severity::Deny,
            LintId::D004 => Severity::Deny,
            LintId::D005 => Severity::Warn,
            LintId::D006 => Severity::Warn,
            LintId::D007 => Severity::Warn,
            LintId::D101 => Severity::Deny,
            LintId::D102 => Severity::Warn,
            LintId::D103 => Severity::Deny,
            LintId::D104 => Severity::Warn,
            LintId::D105 => Severity::Deny,
        }
    }

    /// One-line description (shown with each finding).
    pub fn title(self) -> &'static str {
        match self {
            LintId::D000 => "malformed, reason-less, or unused lint suppression",
            LintId::D001 => "hash-order iteration feeding float accumulation or ordered output",
            LintId::D002 => "panic path (unwrap/expect/panic!/literal index) in library code",
            LintId::D003 => "raw thread or channel construction outside crates/exec",
            LintId::D004 => "direct wall-clock read outside RunControl internals",
            LintId::D005 => "loop in a budget-scoped hot path without a guard",
            LintId::D006 => "lossy float cast or f32 reduction in numeric code",
            LintId::D007 => "public API item without a doc comment in crates/core",
            LintId::D101 => "panic path reachable from resolve()/train() on the call graph",
            LintId::D102 => "unsanitized probability arithmetic flowing to a cluster sink",
            LintId::D103 => "inconsistent lock order or lock held across a channel send",
            LintId::D104 => "loop on a charge-free call path from a pipeline entry point",
            LintId::D105 => "raw filesystem write bypassing the atomic temp+rename persist path",
        }
    }

    /// Full rationale for `--explain`: which invariant, why it matters for
    /// DISTINCT, and what the sanctioned fix is.
    pub fn rationale(self) -> &'static str {
        match self {
            LintId::D000 => {
                "Suppressions are part of the audit trail: `// distinct-lint: \
                 allow(D00x, reason=\"...\")` must name at least one known lint \
                 and carry a non-empty reason, and must actually match a finding \
                 on its line (or the next line, for a comment standing alone). \
                 Anything else is noise that hides real debt, so the analyzer \
                 rejects it."
            }
            LintId::D001 => {
                "DISTINCT promises bit-identical output at any thread count. \
                 Iterating a HashMap/HashSet/FxHashMap while summing floats or \
                 appending to ordered output makes the result depend on hash \
                 iteration order — float addition is not associative, so the \
                 weighted-Jaccard and walk-probability pillars silently drift \
                 when the map's insertion history changes. Fix: iterate in \
                 sorted key order (collect + sort, or a BTreeMap), as \
                 crates/oracle does, or show the accumulation is order-free \
                 (integer counters, max/min) in an allow reason."
            }
            LintId::D002 => {
                "PR 1's graceful-degradation contract: library code reachable \
                 from resolve()/train_with() must surface failures as typed \
                 errors or Degraded reports, never panics. unwrap(), expect(), \
                 panic!(), unreachable!() and indexing by integer literal are \
                 all panic paths. Fix: propagate a DistinctError / StoreError, \
                 return Option, or document the proven invariant in an allow \
                 reason. Test code is exempt."
            }
            LintId::D003 => {
                "All parallelism goes through crates/exec's ordered-commit \
                 pool: it is the only code that knows how to keep output \
                 deterministic under any thread count and to honor RunControl \
                 at chunk boundaries. A raw std::thread::spawn or mpsc channel \
                 anywhere else bypasses both guarantees. Fix: use \
                 exec::Executor (par_map_guarded / par_chunks), or move the \
                 primitive into crates/exec."
            }
            LintId::D004 => {
                "Deadlines are RunControl's job: it amortizes clock reads and \
                 latches the first trip so every worker observes one coherent \
                 interruption cause. Scattered Instant::now()/SystemTime reads \
                 make timing-dependent control flow that no test can pin down. \
                 Reading the clock for *reporting* (ExecReport wall times, the \
                 eval timing harness) is fine — say so in an allow reason."
            }
            LintId::D005 => {
                "Every hot loop must charge the shared work budget, or a \
                 budget/deadline/cancellation can only trip between stages and \
                 the resilience contract (PR 1) silently weakens as code moves. \
                 In the designated hot-path files, a function that loops must \
                 either accept a guard parameter or call a guard/charge/status \
                 control hook. Bounded per-pair helpers charged by their \
                 caller at pair granularity should say so in an allow reason."
            }
            LintId::D006 => {
                "The numeric pillars accumulate in f64 end to end; an `as f32` \
                 narrowing (or an f32 sum) anywhere in core/cluster/svm/ \
                 relgraph/eval library code silently halves the mantissa and \
                 breaks the 1e-9 oracle-differential tolerance. Fix: stay in \
                 f64; cast only at presentation boundaries (and allow with a \
                 reason there)."
            }
            LintId::D007 => {
                "crates/core is the public API surface of the system; every \
                 public item there must carry a doc comment so the request/ \
                 outcome vocabulary (ResolveRequest, Degraded, ExecReport...) \
                 stays discoverable. rustc's missing_docs warning already \
                 guards rustdoc-visible items; this pass keeps the invariant \
                 in the same report as the rest and covers macro-generated \
                 gaps rustc misses."
            }
            LintId::D101 => {
                "The semantic refinement of D002: a panic site (unwrap/expect/\
                 panic!/literal index) in library code is only a defect when \
                 the workspace call graph can actually reach it from a public \
                 `Distinct::resolve*`/`train*` entry point — those are the \
                 paths PR 1's graceful-degradation contract protects. The \
                 resolver over-approximates (method calls match by name, \
                 constrained to the caller's normal-dependency closure), so a \
                 D101 finding means `no proof of unreachability`, and every \
                 finding names one concrete call chain from the entry point. \
                 Fix: return a typed error along that chain, or prove the \
                 invariant in an allow(D101) reason."
            }
            LintId::D102 => {
                "Definitions 2–3 of the paper require set-resemblance and \
                 walk probabilities to stay inside [0,1]; downstream, \
                 crates/cluster compares them against thresholds, so an \
                 out-of-range or NaN value silently corrupts clustering \
                 decisions. A function whose name or doc comment marks it as \
                 probability-valued, whose body does range-risky arithmetic \
                 (+, *, /, exp, powf, sum) with no in-body sanitizer \
                 (clamp / debug_assert! / min+max pair), and which the \
                 clustering engine transitively calls, is flagged at its \
                 definition. Fix: debug_assert! the range (cheap, checked in \
                 the overflow CI profile) or clamp at the boundary."
            }
            LintId::D103 => {
                "The 16-way sharded ProfileCache and the exec pool's channels \
                 mix locks with message passing; a cycle in the lock-\
                 acquisition order, or a lock held across a blocking \
                 `.send(...)`, is a deadlock that only manifests under \
                 contention. The pass extracts per-function lock acquisitions \
                 (`.lock()`/`.read()`/`.write()` with empty argument lists), \
                 propagates held-lock sets through calls (a `let`-bound guard \
                 is assumed held to end of function — an over-approximation), \
                 and flags ordering cycles and held-across-send sites. Fix: \
                 keep lock scopes single-statement (as ProfileCache does), \
                 impose one global acquisition order, or drop guards before \
                 sending."
            }
            LintId::D104 => {
                "The semantic refinement of D005: a loop only starves \
                 cancellation if some call path from a public resolve*/train* \
                 entry point reaches it without ever passing a budget charge \
                 (a guard parameter, or a guard/shared_guard/charge/status \
                 call). Leaf helpers whose every caller charges per item are \
                 proven safe by the graph instead of needing a syntactic \
                 allow. A finding names the charge-free chain. Fix: charge \
                 the budget somewhere on that chain, or allow(D104) with the \
                 proof if the path is infeasible."
            }
            LintId::D105 => {
                "Durable runs promise that a crash at any write leaves either \
                 the old artifact or the new one, never a torn half — the \
                 resume chaos sweep (tests/resume_chaos.rs) kills a run at \
                 every write index and relies on it. That only holds if every \
                 checkpoint/snapshot byte flows through \
                 relstore::write_atomic (write `.tmp`, then rename), which \
                 also routes I/O through the fault-injectable Vfs seam. A \
                 direct `std::fs::write`, `File::create`, or \
                 `OpenOptions::new` in library code outside the persistence \
                 modules escapes both. Fix: take a `&mut dyn Vfs` and call \
                 write_atomic, or allow(D105) with a reason for genuinely \
                 non-durable output (e.g. the lint baseline itself)."
            }
        }
    }
}

impl fmt::Display for LintId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Which lint fired.
    pub id: LintId,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// What was seen (short, single line).
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {}:{}: {} — {}",
            self.id,
            self.file,
            self.line,
            self.id.title(),
            self.message
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        for id in LintId::ALL {
            assert_eq!(LintId::parse(id.name()), Some(id));
            assert_eq!(LintId::parse(&id.name().to_lowercase()), Some(id));
        }
        assert_eq!(LintId::parse("D999"), None);
        assert_eq!(LintId::parse(""), None);
    }

    #[test]
    fn every_lint_has_title_and_rationale() {
        for id in LintId::ALL {
            assert!(!id.title().is_empty());
            assert!(id.rationale().len() > 80, "{id} rationale too thin");
        }
    }
}

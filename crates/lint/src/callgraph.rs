//! The workspace call graph and the reachability lints built on it:
//! D101 (panic paths reachable from the pipeline entry points) and D104
//! (loops on charge-free call paths). Also serves the `call-graph`
//! subcommand (DOT export, `--reach` queries).

use crate::catalog::{Finding, LintId};
use crate::symbols::Workspace;
use std::collections::{BTreeSet, VecDeque};
use std::fmt::Write as _;

/// The resolved call graph over a [`Workspace`]'s functions.
pub struct CallGraph {
    /// The symbol table the graph was built from.
    pub ws: Workspace,
    /// `edges[i]` — indices of functions `fns[i]` may call, sorted,
    /// deduplicated.
    pub edges: Vec<Vec<usize>>,
}

impl CallGraph {
    /// Resolve every call site of every non-test function.
    pub fn build(ws: Workspace) -> CallGraph {
        let mut edges: Vec<Vec<usize>> = vec![Vec::new(); ws.fns.len()];
        for i in 0..ws.fns.len() {
            if ws.fns[i].is_test {
                continue;
            }
            let mut out = BTreeSet::new();
            for call in &ws.fns[i].facts.calls {
                for t in ws.resolve(i, call) {
                    if t != i {
                        out.insert(t);
                    }
                }
            }
            edges[i] = out.into_iter().collect();
        }
        CallGraph { ws, edges }
    }

    /// The semantic entry points: public non-test `resolve*`/`train*`
    /// functions defined in `crates/core`.
    pub fn entry_points(&self) -> Vec<usize> {
        self.ws
            .fns
            .iter()
            .enumerate()
            .filter(|(_, f)| {
                f.crate_dir == "core"
                    && f.is_pub
                    && !f.is_test
                    && (f.name.starts_with("resolve") || f.name.starts_with("train"))
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// BFS from `roots`; `parent[i] = Some(p)` records the tree edge used
    /// to reach `i` (roots point to themselves). Unreached nodes are
    /// `None`. `pass(i)` gates which nodes the walk may enter.
    pub fn reach(&self, roots: &[usize], pass: impl Fn(usize) -> bool) -> Vec<Option<usize>> {
        let mut parent: Vec<Option<usize>> = vec![None; self.ws.fns.len()];
        let mut queue = VecDeque::new();
        for &r in roots {
            if parent[r].is_none() && pass(r) {
                parent[r] = Some(r);
                queue.push_back(r);
            }
        }
        while let Some(u) = queue.pop_front() {
            for &v in &self.edges[u] {
                if parent[v].is_none() && pass(v) {
                    parent[v] = Some(u);
                    queue.push_back(v);
                }
            }
        }
        parent
    }

    /// Render the BFS-tree call chain from the root down to `target` as
    /// `a → b → c`, eliding the middle of very long chains.
    pub fn chain(&self, parent: &[Option<usize>], target: usize) -> String {
        let mut hops = vec![target];
        let mut cur = target;
        while let Some(p) = parent[cur] {
            if p == cur {
                break;
            }
            hops.push(p);
            cur = p;
        }
        hops.reverse();
        let names: Vec<String> = hops.iter().map(|&i| self.ws.qual(i)).collect();
        if names.len() > 7 {
            let head = names[..3].join(" → ");
            let tail = names[names.len() - 3..].join(" → ");
            format!("{head} → … → {tail} ({} hops)", names.len() - 1)
        } else {
            names.join(" → ")
        }
    }

    /// D101: every panic site in a function reachable from the entry
    /// points is a finding naming one concrete call chain.
    pub fn d101_panic_reach(&self) -> Vec<Finding> {
        let roots = self.entry_points();
        let parent = self.reach(&roots, |_| true);
        let mut out = Vec::new();
        for (i, f) in self.ws.fns.iter().enumerate() {
            if parent[i].is_none() || f.facts.panics.is_empty() {
                continue;
            }
            let chain = self.chain(&parent, i);
            for (line, what) in &f.facts.panics {
                out.push(Finding {
                    id: LintId::D101,
                    file: f.file.clone(),
                    line: *line,
                    message: format!("{what}; reachable via {chain}"),
                });
            }
        }
        out
    }

    /// D104: a looping function reachable from an entry point along a path
    /// where no hop charges the budget (neither a guard/charge call nor a
    /// guard parameter). The charging hop discharges everything below it.
    pub fn d104_unguarded_loops(&self) -> Vec<Finding> {
        let charges = |i: usize| {
            let f = &self.ws.fns[i];
            f.facts.charges || f.has_guard_param
        };
        let roots = self.entry_points();
        let parent = self.reach(&roots, |i| !charges(i));
        let mut out = Vec::new();
        for (i, f) in self.ws.fns.iter().enumerate() {
            let Some(&first_loop) = f.facts.loops.first() else {
                continue;
            };
            if parent[i].is_none() {
                continue;
            }
            let chain = self.chain(&parent, i);
            out.push(Finding {
                id: LintId::D104,
                file: f.file.clone(),
                line: first_loop,
                message: format!(
                    "fn `{}` loops but no hop charges the budget on {chain}",
                    f.name
                ),
            });
        }
        out
    }

    /// Indices of functions whose qualified name contains `query`
    /// (case-insensitive; `::` segments all participate).
    pub fn find_fns(&self, query: &str) -> Vec<usize> {
        let q = query.to_ascii_lowercase();
        (0..self.ws.fns.len())
            .filter(|&i| self.ws.qual(i).to_ascii_lowercase().contains(&q))
            .collect()
    }

    /// Report every function reachable *from* the ones matching `query`,
    /// grouped by crate — the `call-graph --reach` output.
    pub fn reach_report(&self, query: &str) -> String {
        let roots = self.find_fns(query);
        let mut s = String::new();
        if roots.is_empty() {
            let _ = writeln!(s, "no function matches `{query}`");
            return s;
        }
        let _ = writeln!(
            s,
            "roots matching `{query}`: {}",
            roots
                .iter()
                .map(|&i| self.ws.qual(i))
                .collect::<Vec<_>>()
                .join(", ")
        );
        let parent = self.reach(&roots, |_| true);
        let mut by_crate: Vec<(String, String)> = Vec::new();
        for (i, f) in self.ws.fns.iter().enumerate() {
            if parent[i].is_some() {
                by_crate.push((f.crate_dir.clone(), self.ws.qual(i)));
            }
        }
        by_crate.sort();
        by_crate.dedup();
        let crates: BTreeSet<&str> = by_crate.iter().map(|(c, _)| c.as_str()).collect();
        let _ = writeln!(
            s,
            "reachable: {} fns across {} crates ({})",
            by_crate.len(),
            crates.len(),
            crates.into_iter().collect::<Vec<_>>().join(", ")
        );
        for (c, q) in &by_crate {
            let _ = writeln!(s, "  [{c}] {q}");
        }
        s
    }

    /// GraphViz DOT export of the whole call graph (nodes grouped by
    /// crate as subgraph clusters).
    pub fn to_dot(&self) -> String {
        let mut s = String::from("digraph calls {\n  rankdir=LR;\n  node [shape=box];\n");
        let crates: BTreeSet<String> = self.ws.fns.iter().map(|f| f.crate_dir.clone()).collect();
        for (ci, c) in crates.iter().enumerate() {
            let _ = writeln!(s, "  subgraph cluster_{ci} {{\n    label=\"{c}\";");
            for (i, f) in self.ws.fns.iter().enumerate() {
                if &f.crate_dir == c && !f.is_test {
                    let _ = writeln!(s, "    n{i} [label=\"{}\"];", self.ws.qual(i));
                }
            }
            let _ = writeln!(s, "  }}");
        }
        for (i, outs) in self.edges.iter().enumerate() {
            for &j in outs {
                let _ = writeln!(s, "  n{i} -> n{j};");
            }
        }
        s.push_str("}\n");
        s
    }
}

/// Run every interprocedural pass over one built graph.
pub fn run_semantic(graph: &CallGraph, ctxs: &[crate::model::FileCtx]) -> Vec<Finding> {
    let mut out = Vec::new();
    out.extend(graph.d101_panic_reach());
    out.extend(crate::taint::d102_probability_taint(graph));
    out.extend(crate::locks::d103_lock_order(graph));
    out.extend(graph.d104_unguarded_loops());
    out.extend(crate::concur::run(graph, ctxs));
    out.extend(crate::alloc::run(graph, ctxs));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{FileCtx, Role};
    use std::collections::{BTreeMap, BTreeSet};

    fn ws(files: &[(&str, &str, &str)]) -> Workspace {
        let ctxs: Vec<FileCtx> = files
            .iter()
            .map(|(path, krate, src)| FileCtx::new(path, krate, Role::Library, src))
            .collect();
        let refs: Vec<&FileCtx> = ctxs.iter().collect();
        let dirs: BTreeSet<String> = files.iter().map(|(_, k, _)| k.to_string()).collect();
        let mut closures = BTreeMap::new();
        for d in &dirs {
            // Fully connected topology: every crate sees every crate.
            closures.insert(d.clone(), dirs.clone());
        }
        Workspace::build(&refs, BTreeMap::new(), closures)
    }

    #[test]
    fn d101_reports_reachable_panic_with_chain() {
        let g = CallGraph::build(ws(&[
            (
                "crates/core/src/pipeline.rs",
                "core",
                "impl Distinct { pub fn resolve(&self) { stage(); } }\nfn stage() { cluster::engine::run(); }",
            ),
            (
                "crates/cluster/src/engine.rs",
                "cluster",
                "pub fn run() { x.unwrap(); }\npub fn unreached() { y.unwrap(); }",
            ),
        ]));
        let findings = g.d101_panic_reach();
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].file, "crates/cluster/src/engine.rs");
        assert!(findings[0].message.contains("resolve"));
        assert!(findings[0].message.contains("run"));
    }

    #[test]
    fn d104_charge_on_path_discharges_loop() {
        let g = CallGraph::build(ws(&[
            (
                "crates/core/src/pipeline.rs",
                "core",
                "impl Distinct {\n pub fn resolve(&self, ctl: &C) { ctl.charge(1); hot(); }\n pub fn train(&self) { hot(); }\n}\nfn hot() { for i in 0..9 { work(i); } }\nfn work(_i: u32) {}",
            ),
        ]));
        // `resolve` charges, but `train` reaches `hot` charge-free.
        let findings = g.d104_unguarded_loops();
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("train"), "{findings:?}");
        assert!(findings[0].message.contains("hot"));
    }

    #[test]
    fn d104_clean_when_every_path_charges() {
        let g = CallGraph::build(ws(&[(
            "crates/core/src/pipeline.rs",
            "core",
            "impl Distinct { pub fn resolve(&self, ctl: &C) { ctl.charge(1); hot(); } }\nfn hot() { for i in 0..9 {} }",
        )]));
        assert!(g.d104_unguarded_loops().is_empty());
    }

    #[test]
    fn dot_and_reach_report_render() {
        let g = CallGraph::build(ws(&[(
            "crates/core/src/pipeline.rs",
            "core",
            "impl Distinct { pub fn resolve(&self) { stage(); } }\nfn stage() {}",
        )]));
        let dot = g.to_dot();
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("->"));
        let report = g.reach_report("resolve");
        assert!(report.contains("stage"), "{report}");
        assert!(g.reach_report("zzz_nothing").contains("no function"));
    }
}

//! # datagen — synthetic bibliographic world generator
//!
//! The paper evaluates DISTINCT on a DBLP snapshot with manually labelled
//! ground truth for ten ambiguous author names. Neither resource is
//! redistributable, so this crate generates a faithful synthetic
//! substitute (see DESIGN.md §2 for the substitution argument):
//!
//! * [`WorldConfig`] — knobs for scale, community structure, collaboration
//!   stickiness, venue affinity, cross-community noise, and Zipf name
//!   pools; [`WorldConfig::table1_ambiguous`] reproduces Table 1's
//!   (#authors, #references) profile;
//! * [`World::generate`] — deterministic generation of entities,
//!   communities, venues, and papers;
//! * [`to_catalog`] — emission as a [`relstore::Catalog`] in the Fig. 2
//!   DBLP schema, with [`NameGroundTruth`] per planted name.

#![warn(missing_docs)]

pub mod config;
pub mod dblp;
pub mod names;
pub mod shrink;
pub mod updates;
pub mod world;

pub use config::{AmbiguousSpec, WorldConfig};
pub use dblp::{stream_to_catalog, to_catalog, DblpDataset, NameGroundTruth};
pub use names::{NamePool, Zipf};
pub use shrink::shrink_world;
pub use updates::{shuffle_log, update_stream, LogTuple, UpdateStream};
pub use world::{AmbiguousGroup, Entity, EntityId, Paper, Venue, World, WorldStream};

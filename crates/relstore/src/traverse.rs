//! Tuple-level traversal of join steps and join paths.
//!
//! These are the raw navigation primitives used by the probabilistic layer
//! (`relgraph`): given a tuple, which tuples does one step or a whole path
//! reach, and with what fanout?

use crate::catalog::Catalog;
use crate::join::{Direction, JoinPath, JoinStep};
use crate::tuple::TupleRef;

/// The tuples reached from `t` by one join step.
///
/// Forward steps reach zero or one tuple (the referenced key owner);
/// backward steps reach every referrer.
pub fn step_tuples(catalog: &Catalog, step: JoinStep, t: TupleRef) -> Vec<TupleRef> {
    match step.dir {
        Direction::Forward => catalog.follow_forward(step.fk, t).into_iter().collect(),
        Direction::Backward => catalog.follow_backward(step.fk, t),
    }
}

/// Number of tuples [`step_tuples`] would return, without materializing.
pub fn step_fanout(catalog: &Catalog, step: JoinStep, t: TupleRef) -> usize {
    match step.dir {
        Direction::Forward => usize::from(catalog.follow_forward(step.fk, t).is_some()),
        Direction::Backward => catalog.backward_count(step.fk, t),
    }
}

/// All tuples reached from `start` along the whole path, **with
/// multiplicity**: a tuple reachable along `k` distinct traversals appears
/// `k` times. Order is depth-first.
pub fn path_tuples(catalog: &Catalog, path: &JoinPath, start: TupleRef) -> Vec<TupleRef> {
    debug_assert_eq!(
        start.rel, path.start,
        "start tuple not in path start relation"
    );
    let mut frontier = vec![start];
    for step in &path.steps {
        let mut next = Vec::with_capacity(frontier.len());
        for t in frontier {
            next.extend(step_tuples(catalog, *step, t));
        }
        frontier = next;
    }
    frontier
}

/// Distinct tuples reached from `start` along the path.
pub fn path_tuple_set(catalog: &Catalog, path: &JoinPath, start: TupleRef) -> Vec<TupleRef> {
    let mut all = path_tuples(catalog, path, start);
    all.sort_unstable();
    all.dedup();
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::FkId;
    use crate::schema::SchemaBuilder;
    use crate::tuple::TupleId;
    use crate::value::{AttrType, Value};

    /// Two papers at one venue, three authorship records:
    /// paper 1 by (a, b); paper 2 by (a).
    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_relation(
            SchemaBuilder::new("Authors")
                .key("author", AttrType::Str)
                .build()
                .unwrap(),
        )
        .unwrap();
        c.add_relation(
            SchemaBuilder::new("Venues")
                .key("venue", AttrType::Str)
                .build()
                .unwrap(),
        )
        .unwrap();
        c.add_relation(
            SchemaBuilder::new("Papers")
                .key("paper", AttrType::Int)
                .fk("venue", AttrType::Str, "Venues")
                .build()
                .unwrap(),
        )
        .unwrap();
        c.add_relation(
            SchemaBuilder::new("Publish")
                .fk("author", AttrType::Str, "Authors")
                .fk("paper", AttrType::Int, "Papers")
                .build()
                .unwrap(),
        )
        .unwrap();
        for a in ["a", "b"] {
            c.insert("Authors", [Value::str(a)].into()).unwrap();
        }
        c.insert("Venues", [Value::str("VLDB")].into()).unwrap();
        c.insert("Papers", [Value::Int(1), Value::str("VLDB")].into())
            .unwrap();
        c.insert("Papers", [Value::Int(2), Value::str("VLDB")].into())
            .unwrap();
        c.insert("Publish", [Value::str("a"), Value::Int(1)].into())
            .unwrap();
        c.insert("Publish", [Value::str("b"), Value::Int(1)].into())
            .unwrap();
        c.insert("Publish", [Value::str("a"), Value::Int(2)].into())
            .unwrap();
        c.finalize(true).unwrap();
        c
    }

    fn fk(c: &Catalog, label: &str) -> FkId {
        c.fk_edges().iter().find(|e| e.label == label).unwrap().id
    }

    #[test]
    fn forward_step_reaches_one_tuple() {
        let c = catalog();
        let publish = c.relation_id("Publish").unwrap();
        let papers = c.relation_id("Papers").unwrap();
        let s = JoinStep::forward(fk(&c, "Publish.paper->Papers"));
        let t = TupleRef::new(publish, TupleId(0));
        let reached = step_tuples(&c, s, t);
        assert_eq!(reached, vec![TupleRef::new(papers, TupleId(0))]);
        assert_eq!(step_fanout(&c, s, t), 1);
    }

    #[test]
    fn backward_step_reaches_all_referrers() {
        let c = catalog();
        let papers = c.relation_id("Papers").unwrap();
        let s = JoinStep::backward(fk(&c, "Publish.paper->Papers"));
        let p1 = TupleRef::new(papers, TupleId(0));
        let reached = step_tuples(&c, s, p1);
        assert_eq!(reached.len(), 2);
        assert_eq!(step_fanout(&c, s, p1), 2);
    }

    #[test]
    fn coauthor_path_multiplicity_and_set() {
        let c = catalog();
        let publish = c.relation_id("Publish").unwrap();
        let authors = c.relation_id("Authors").unwrap();
        let fk_paper = fk(&c, "Publish.paper->Papers");
        let fk_author = fk(&c, "Publish.author->Authors");
        // Publish -> Papers <- Publish -> Authors from the (a, paper1) record.
        let path = JoinPath::new(
            publish,
            vec![
                JoinStep::forward(fk_paper),
                JoinStep::backward(fk_paper),
                JoinStep::forward(fk_author),
            ],
            &c,
        )
        .unwrap();
        let start = TupleRef::new(publish, TupleId(0));
        let multi = path_tuples(&c, &path, start);
        // paper1 has 2 authorship records -> 2 author tuples (a and b).
        assert_eq!(multi.len(), 2);
        let set = path_tuple_set(&c, &path, start);
        assert_eq!(set.len(), 2);
        assert!(set.iter().all(|t| t.rel == authors));
    }

    #[test]
    fn venue_path_converges() {
        let c = catalog();
        let publish = c.relation_id("Publish").unwrap();
        let venues = c.relation_id("Venues").unwrap();
        let path = JoinPath::new(
            publish,
            vec![
                JoinStep::forward(fk(&c, "Publish.paper->Papers")),
                JoinStep::forward(fk(&c, "Papers.venue->Venues")),
            ],
            &c,
        )
        .unwrap();
        // Both of a's records end at VLDB.
        for tid in [0u32, 2u32] {
            let reached = path_tuples(&c, &path, TupleRef::new(publish, TupleId(tid)));
            assert_eq!(reached, vec![TupleRef::new(venues, TupleId(0))]);
        }
    }

    #[test]
    fn empty_path_returns_start() {
        let c = catalog();
        let publish = c.relation_id("Publish").unwrap();
        let start = TupleRef::new(publish, TupleId(1));
        let path = JoinPath::empty(publish);
        assert_eq!(path_tuples(&c, &path, start), vec![start]);
    }
}

//! The deprecated `resolve_*` / `train_ctl` shims must stay byte-for-byte
//! equivalent to the `ResolveRequest` / `TrainRequest` forms they wrap.
//!
//! Each shim forwards to the request form internally; these tests pin the
//! *observable* equivalence — identical labels, identical dendrograms
//! (`Merge` compares exactly, similarities included), identical
//! degradation status, identical learned weights — so the shims cannot
//! drift while they remain deprecated, and deleting them later is a
//! provable no-op for callers that migrated.

#![allow(deprecated)]

use datagen::{AmbiguousSpec, World, WorldConfig};
use distinct::{
    Distinct, DistinctConfig, ResolveRequest, RunControl, TrainRequest, TrainingConfig,
};
use std::sync::OnceLock;

fn dataset() -> &'static datagen::DblpDataset {
    static DATA: OnceLock<datagen::DblpDataset> = OnceLock::new();
    DATA.get_or_init(|| {
        let mut config = WorldConfig::tiny(21);
        config.ambiguous = vec![
            AmbiguousSpec::new("Wei Wang", vec![10, 8, 5]),
            AmbiguousSpec::new("Hui Fang", vec![5, 4]),
        ];
        datagen::to_catalog(&World::generate(config)).unwrap()
    })
}

fn engine() -> Distinct {
    let config = DistinctConfig {
        training: TrainingConfig {
            positives: 80,
            negatives: 80,
            ..Default::default()
        },
        ..Default::default()
    };
    Distinct::prepare(&dataset().catalog, "Publish", "author", config).unwrap()
}

/// Labels and full dendrogram must match exactly (bitwise similarities).
fn assert_same_clustering(a: &cluster::Clustering, b: &cluster::Clustering) {
    assert_eq!(a.labels, b.labels);
    assert_eq!(a.dendrogram.merges(), b.dendrogram.merges());
}

#[test]
fn resolve_name_matches_references_of_plus_resolve() {
    let engine = engine();
    let (refs, shim) = engine.resolve_name("Wei Wang");
    assert_eq!(refs, engine.references_of("Wei Wang"));
    let request = engine.resolve(&ResolveRequest::new(&refs));
    assert!(request.degraded.is_none());
    assert_same_clustering(&shim, &request.clustering);
}

#[test]
fn resolve_with_min_sim_matches_min_sim_request() {
    let engine = engine();
    let refs = engine.references_of("Wei Wang");
    for min_sim in [1e-5, 2e-3, 0.02, 0.3] {
        let shim = engine.resolve_with_min_sim(&refs, min_sim);
        let request = engine.resolve(&ResolveRequest::new(&refs).min_sim(min_sim));
        assert_same_clustering(&shim, &request.clustering);
    }
}

#[test]
fn resolve_ctl_matches_control_request() {
    let engine = engine();
    let refs = engine.references_of("Hui Fang");
    let ctl_a = RunControl::new();
    let ctl_b = RunControl::new();
    let shim = engine.resolve_ctl(&refs, &ctl_a);
    let request = engine.resolve(&ResolveRequest::new(&refs).control(&ctl_b));
    assert!(shim.degraded.is_none());
    assert!(request.degraded.is_none());
    assert_same_clustering(&shim.clustering, &request.clustering);
}

#[test]
fn resolve_with_min_sim_ctl_matches_full_request() {
    let engine = engine();
    let refs = engine.references_of("Hui Fang");
    let ctl_a = RunControl::new();
    let ctl_b = RunControl::new();
    let shim = engine.resolve_with_min_sim_ctl(&refs, 0.01, &ctl_a);
    let request = engine.resolve(&ResolveRequest::new(&refs).min_sim(0.01).control(&ctl_b));
    assert!(shim.degraded.is_none());
    assert!(request.degraded.is_none());
    assert_same_clustering(&shim.clustering, &request.clustering);
}

#[test]
fn resolve_constrained_matches_constraint_request() {
    let engine = engine();
    let refs = engine.references_of("Wei Wang");
    let must = [(0, 1), (2, 3)];
    let cannot = [(0, 4)];
    let shim = engine.resolve_constrained(&refs, &must, &cannot);
    let request = engine.resolve(
        &ResolveRequest::new(&refs)
            .must_link(&must)
            .cannot_link(&cannot),
    );
    assert_same_clustering(&shim, &request.clustering);
    // Constraints must actually bind: 0-1 together, 0-4 apart.
    assert_eq!(shim.labels[0], shim.labels[1]);
    assert_ne!(shim.labels[0], shim.labels[4]);
}

#[test]
fn train_ctl_matches_train_with() {
    // Two fresh engines over the same catalog: the shim and the request
    // form must learn identical weights and report identical statistics.
    let mut shim_engine = engine();
    let mut request_engine = engine();
    let ctl_a = RunControl::new();
    let ctl_b = RunControl::new();
    let shim = shim_engine.train_ctl(&ctl_a).unwrap();
    let request = request_engine
        .train_with(&TrainRequest::new().control(&ctl_b))
        .unwrap();
    assert_eq!(shim_engine.weights(), request_engine.weights());
    assert_eq!(shim.unique_names, request.unique_names);
    assert_eq!(shim.positives, request.positives);
    assert_eq!(shim.negatives, request.negatives);
    assert_eq!(shim.resem_accuracy, request.resem_accuracy);
    assert_eq!(shim.walk_accuracy, request.walk_accuracy);
    assert_eq!(shim.path_weights, request.path_weights);
    // And resolution under the learned weights stays equivalent too.
    let refs = shim_engine.references_of("Wei Wang");
    let shim_clusters = shim_engine.resolve_with_min_sim(&refs, 0.005);
    let request_clusters = request_engine
        .resolve(&ResolveRequest::new(&refs).min_sim(0.005))
        .clustering;
    assert_same_clustering(&shim_clusters, &request_clusters);
}

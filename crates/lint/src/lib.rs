//! distinct-lint: dependency-free static analysis for this workspace's
//! project invariants (determinism, graceful degradation, budget
//! coverage, exec-pool ownership of parallelism, f64 numerics, core API
//! docs).
//!
//! The pipeline is: discover files ([`workspace`]), lex them ([`lexer`]),
//! build per-file context ([`model`]), run the passes ([`passes`]), apply
//! inline suppressions ([`suppress`]), then resolve what is left against
//! the checked-in debt baseline ([`baseline`]). The [`graph`] module maps
//! the crate topology for the `graph` subcommand and the layering
//! self-checks.
//!
//! `check --semantic` swaps the per-file panic (D002), loop-guard
//! (D005), and hash-order (D001) scans for their interprocedural
//! refinements: [`parse`] recovers function items from the token stream,
//! [`symbols`] resolves call sites across crates, [`callgraph`] runs
//! reachability (D101/D104), [`taint`]/[`locks`] add probability-range
//! (D102) and lock-order (D103) analyses on the same graph, [`concur`]
//! runs the determinism/concurrency dataflow passes (D106–D109) on
//! statement-level CFGs ([`cfg`]) with a forward may/must framework
//! ([`dataflow`]), and [`alloc`] runs the allocation/copy-discipline
//! passes (D110–D113) on the same CFG + dataflow substrate.

pub mod alloc;
pub mod baseline;
pub mod callgraph;
pub mod catalog;
pub mod cfg;
pub mod concur;
pub mod dataflow;
pub mod graph;
pub mod lexer;
pub mod locks;
pub mod model;
pub mod parse;
pub mod passes;
pub mod suppress;
pub mod symbols;
pub mod taint;
pub mod workspace;

use baseline::{Baseline, Diff};
use catalog::{Finding, LintId};
use std::collections::BTreeMap;
use std::path::Path;

/// Which analysis the run performs. The two modes share D000/D003/D004/
/// D006/D007; syntactic mode adds the per-file D001/D002/D005 scans,
/// semantic mode replaces them with the call-graph lints D101–D104 and
/// the dataflow passes D106–D113 (D107 subsumes D001 the way D101/D104
/// subsume D002/D005).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Per-file token scans only (`check`).
    Syntactic,
    /// Per-file scans minus D001/D002/D005, plus the interprocedural
    /// passes (`check --semantic`).
    Semantic,
}

impl Mode {
    /// Whether `id` can fire in this mode. Baseline entries and
    /// suppressions naming only inactive lints are ignored, not stale.
    pub fn is_active(self, id: LintId) -> bool {
        match self {
            Mode::Syntactic => !matches!(
                id,
                LintId::D101
                    | LintId::D102
                    | LintId::D103
                    | LintId::D104
                    | LintId::D106
                    | LintId::D107
                    | LintId::D108
                    | LintId::D109
                    | LintId::D110
                    | LintId::D111
                    | LintId::D112
                    | LintId::D113
            ),
            Mode::Semantic => !matches!(id, LintId::D001 | LintId::D002 | LintId::D005),
        }
    }
}

/// Result of analyzing the whole workspace (before baseline resolution).
#[derive(Debug)]
pub struct Analysis {
    /// Findings that survived inline suppressions, plus D000s for
    /// malformed or unused suppressions. Sorted by (file, line, id).
    pub findings: Vec<Finding>,
    /// Number of files analyzed.
    pub files: usize,
    /// Number of suppressions that matched a finding.
    pub suppressions_used: usize,
}

/// Lex, model, lint, and suppress every analyzable file under `root`
/// with the syntactic passes.
pub fn analyze(root: &Path) -> Result<Analysis, String> {
    analyze_mode(root, Mode::Syntactic)
}

/// Lex, model, lint, and suppress every analyzable file under `root` in
/// the given mode.
pub fn analyze_mode(root: &Path, mode: Mode) -> Result<Analysis, String> {
    let ctxs = workspace::collect_files(root)?;
    // Semantic findings land on concrete files/lines, so they flow
    // through the same per-file suppression machinery as everything else.
    let mut semantic: BTreeMap<String, Vec<Finding>> = BTreeMap::new();
    if mode == Mode::Semantic {
        let ws = symbols::Workspace::from_workspace(root, &ctxs).map_err(|e| e.to_string())?;
        let graph = callgraph::CallGraph::build(ws);
        for f in callgraph::run_semantic(&graph, &ctxs) {
            semantic.entry(f.file.clone()).or_default().push(f);
        }
    }
    let mut findings = Vec::new();
    let mut suppressions_used = 0usize;
    let files = ctxs.len();
    for ctx in &ctxs {
        let (mut sups, malformed) = suppress::collect(ctx);
        findings.extend(malformed);
        let mut raw = match mode {
            Mode::Syntactic => passes::run_all(ctx),
            Mode::Semantic => passes::run_semantic_file(ctx),
        };
        raw.extend(semantic.remove(&ctx.path).unwrap_or_default());
        let kept = suppress::apply(raw, &mut sups);
        findings.extend(kept);
        for s in &sups {
            if s.used {
                suppressions_used += 1;
            } else if s.ids.iter().any(|id| mode.is_active(*id)) {
                findings.push(Finding {
                    id: LintId::D000,
                    file: ctx.path.clone(),
                    line: s.comment_line,
                    message: format!(
                        "suppression for {} matches no finding on line {}",
                        s.ids.iter().map(|i| i.name()).collect::<Vec<_>>().join("/"),
                        s.target_line
                    ),
                });
            }
            // A suppression naming only lints this mode never runs (e.g.
            // allow(D002) under --semantic) is neither used nor unused.
        }
    }
    findings.sort_by(|a, b| (&a.file, a.line, a.id).cmp(&(&b.file, b.line, b.id)));
    Ok(Analysis {
        findings,
        files,
        suppressions_used,
    })
}

/// Outcome of a `check` run, ready for reporting and exit-code mapping.
#[derive(Debug)]
pub struct CheckOutcome {
    /// The underlying analysis.
    pub analysis: Analysis,
    /// The baseline that was applied (empty if `lint.toml` is absent),
    /// restricted to this mode's active lints.
    pub baseline: Baseline,
    /// Exact-count comparison result; clean means exit 0.
    pub diff: Diff,
}

/// Run the full syntactic check: analyze, load `lint.toml` (missing file
/// means an empty baseline), and diff.
pub fn check(root: &Path) -> Result<CheckOutcome, String> {
    check_mode(root, Mode::Syntactic)
}

/// Run the full check in the given mode. Baseline entries for lints the
/// mode does not run are ignored rather than reported stale.
pub fn check_mode(root: &Path, mode: Mode) -> Result<CheckOutcome, String> {
    let analysis = analyze_mode(root, mode)?;
    let full = load_baseline(root)?;
    let baseline = Baseline {
        entries: full
            .entries
            .into_iter()
            .filter(|((id, _), _)| mode.is_active(*id))
            .collect(),
    };
    let diff = baseline.diff(&analysis.findings);
    Ok(CheckOutcome {
        analysis,
        baseline,
        diff,
    })
}

/// Rewrite `lint.toml` to exactly cover the current syntactic findings.
pub fn fix_baseline(root: &Path) -> Result<usize, String> {
    fix_baseline_mode(root, Mode::Syntactic)
}

/// Rewrite `lint.toml` to exactly cover the current findings in `mode`,
/// preserving existing entries for lints the mode does not run (so a
/// semantic `--fix-baseline` cannot silently drop syntactic debt, and
/// vice versa). Returns the number of baselined findings. D000s are never
/// baselined and make this fail, so a broken suppression cannot be
/// ratcheted in; likewise D108 and D112 — an undeclared shared-state cell
/// or scratch structure must get its `shared(...)`/`scratch(...)`
/// declaration, not a debt entry.
pub fn fix_baseline_mode(root: &Path, mode: Mode) -> Result<usize, String> {
    let analysis = analyze_mode(root, mode)?;
    if let Some(d0) = analysis.findings.iter().find(|f| f.id == LintId::D000) {
        return Err(format!(
            "cannot baseline suppression-hygiene findings; fix them first: {d0}"
        ));
    }
    if let Some(d8) = analysis.findings.iter().find(|f| f.id == LintId::D108) {
        return Err(format!(
            "cannot baseline an undeclared shared-state cell; write its shared(...) declaration: {d8}"
        ));
    }
    if let Some(d12) = analysis.findings.iter().find(|f| f.id == LintId::D112) {
        return Err(format!(
            "cannot baseline an undeclared scratch structure; write its scratch(...) declaration: {d12}"
        ));
    }
    let mut baseline = Baseline::from_findings(&analysis.findings);
    for ((id, file), count) in load_baseline(root)?.entries {
        if !mode.is_active(id) {
            baseline.entries.insert((id, file), count);
        }
    }
    // distinct-lint: allow(D105, reason="lint.toml is a dev-tool config, not a durable run artifact; a torn baseline is re-ratcheted, never resumed")
    std::fs::write(root.join("lint.toml"), baseline.render())
        .map_err(|e| format!("write lint.toml: {e}"))?;
    Ok(analysis.findings.len())
}

fn load_baseline(root: &Path) -> Result<Baseline, String> {
    let path = root.join("lint.toml");
    if !path.exists() {
        return Ok(Baseline::default());
    }
    let text = std::fs::read_to_string(&path).map_err(|e| format!("read lint.toml: {e}"))?;
    Baseline::parse(&text)
}

//@ crate: core
//@ path: crates/core/src/bad_d105.rs
//@ role: library

use std::fs::{File, OpenOptions};
use std::path::Path;

/// Writes a checkpoint with bare `fs::write`: a crash mid-write leaves a
/// torn file at the final path, and the fault-injection Vfs never sees it.
pub fn save_raw(dir: &Path, bytes: &[u8]) -> std::io::Result<()> {
    std::fs::write(dir.join("state.ck"), bytes) //~ D105
}

/// Creates the destination in place instead of committing via rename.
pub fn save_handle(dir: &Path) -> std::io::Result<File> {
    File::create(dir.join("state.ck")) //~ D105
}

/// Appending through OpenOptions has the same torn-write exposure.
pub fn append_log(dir: &Path) -> std::io::Result<File> {
    OpenOptions::new() //~ D105
        .append(true)
        .open(dir.join("run.log"))
}

/// Renaming over the target without the `.tmp` protocol: the source may
/// itself be torn, so the rename publishes the tear.
pub fn swap(dir: &Path) -> std::io::Result<()> {
    std::fs::rename(dir.join("a"), dir.join("b")) //~ D105
}

/// Reads are not persistence — no finding.
pub fn load(p: &Path) -> String {
    std::fs::read_to_string(p).unwrap_or_default()
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_writes_are_exempt() {
        std::fs::write("/tmp/x", b"fixture").unwrap();
    }
}

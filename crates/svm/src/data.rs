//! Labeled datasets for binary classification.

use std::fmt;

/// Errors raised by dataset construction and solver configuration.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // variant fields are self-describing
pub enum SvmError {
    /// Feature vectors have inconsistent dimensionality.
    DimensionMismatch { expected: usize, got: usize },
    /// A label was not +1 or −1.
    InvalidLabel(f64),
    /// The dataset is empty or degenerate for the requested operation.
    Degenerate(String),
    /// A hyperparameter was out of range.
    BadParameter { name: &'static str, reason: String },
    /// A guard closure stopped the optimizer before convergence.
    Interrupted {
        /// Full optimization passes completed before the stop.
        passes_done: usize,
    },
}

impl fmt::Display for SvmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SvmError::DimensionMismatch { expected, got } => {
                write!(
                    f,
                    "feature vector has {got} dimensions, expected {expected}"
                )
            }
            SvmError::InvalidLabel(l) => write!(f, "label {l} is not +1 or -1"),
            SvmError::Degenerate(msg) => write!(f, "degenerate dataset: {msg}"),
            SvmError::BadParameter { name, reason } => {
                write!(f, "bad parameter `{name}`: {reason}")
            }
            SvmError::Interrupted { passes_done } => {
                write!(f, "training interrupted after {passes_done} passes")
            }
        }
    }
}

impl std::error::Error for SvmError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, SvmError>;

/// A binary-labeled dataset: dense feature vectors with labels in {−1, +1}.
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    features: Vec<Vec<f64>>,
    labels: Vec<f64>,
    dim: usize,
}

impl Dataset {
    /// An empty dataset; the dimension is fixed by the first push.
    pub fn new() -> Self {
        Dataset::default()
    }

    /// Add one labeled sample. Label must be exactly `+1.0` or `-1.0`.
    pub fn push(&mut self, x: Vec<f64>, y: f64) -> Result<()> {
        if y != 1.0 && y != -1.0 {
            return Err(SvmError::InvalidLabel(y));
        }
        if self.features.is_empty() {
            self.dim = x.len();
        } else if x.len() != self.dim {
            return Err(SvmError::DimensionMismatch {
                expected: self.dim,
                got: x.len(),
            });
        }
        self.features.push(x);
        self.labels.push(y);
        Ok(())
    }

    /// Build from parallel slices.
    pub fn from_parts(features: Vec<Vec<f64>>, labels: Vec<f64>) -> Result<Self> {
        if features.len() != labels.len() {
            return Err(SvmError::Degenerate(format!(
                "{} feature rows vs {} labels",
                features.len(),
                labels.len()
            )));
        }
        let mut d = Dataset::new();
        for (x, y) in features.into_iter().zip(labels) {
            d.push(x, y)?;
        }
        Ok(d)
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// True if there are no samples.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Feature dimensionality (0 until the first sample).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Feature vector of sample `i`.
    pub fn x(&self, i: usize) -> &[f64] {
        &self.features[i]
    }

    /// Label of sample `i`.
    pub fn y(&self, i: usize) -> f64 {
        self.labels[i]
    }

    /// All labels.
    pub fn labels(&self) -> &[f64] {
        &self.labels
    }

    /// Iterate `(features, label)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&[f64], f64)> + '_ {
        self.features
            .iter()
            .map(Vec::as_slice)
            .zip(self.labels.iter().copied())
    }

    /// Counts of (positive, negative) samples.
    pub fn class_counts(&self) -> (usize, usize) {
        let pos = self.labels.iter().filter(|&&y| y > 0.0).count();
        (pos, self.labels.len() - pos)
    }

    /// A new dataset holding the samples at `indices` (cloned).
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let mut d = Dataset::new();
        for &i in indices {
            d.push(self.features[i].clone(), self.labels[i])
                .expect("subset of valid data"); // distinct-lint: allow(D002, reason="source rows were validated by their own push; a subset cannot introduce a new arity or label")
        }
        d
    }

    /// Require at least one sample of each class (solvers need both).
    pub fn require_both_classes(&self) -> Result<()> {
        let (pos, neg) = self.class_counts();
        if pos == 0 || neg == 0 {
            return Err(SvmError::Degenerate(format!(
                "need both classes, got {pos} positive / {neg} negative"
            )));
        }
        Ok(())
    }
}

/// Dot product of two equal-length vectors.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_access() {
        let mut d = Dataset::new();
        d.push(vec![1.0, 2.0], 1.0).unwrap();
        d.push(vec![3.0, 4.0], -1.0).unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.dim(), 2);
        assert_eq!(d.x(1), &[3.0, 4.0]);
        assert_eq!(d.y(0), 1.0);
        assert_eq!(d.class_counts(), (1, 1));
        assert!(!d.is_empty());
        assert_eq!(d.labels(), &[1.0, -1.0]);
        assert_eq!(d.iter().count(), 2);
    }

    #[test]
    fn invalid_label_rejected() {
        let mut d = Dataset::new();
        assert!(matches!(
            d.push(vec![1.0], 0.5),
            Err(SvmError::InvalidLabel(_))
        ));
        assert!(matches!(
            d.push(vec![1.0], 0.0),
            Err(SvmError::InvalidLabel(_))
        ));
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let mut d = Dataset::new();
        d.push(vec![1.0, 2.0], 1.0).unwrap();
        assert!(matches!(
            d.push(vec![1.0], -1.0),
            Err(SvmError::DimensionMismatch {
                expected: 2,
                got: 1
            })
        ));
    }

    #[test]
    fn from_parts_checks_lengths() {
        let r = Dataset::from_parts(vec![vec![1.0]], vec![1.0, -1.0]);
        assert!(matches!(r, Err(SvmError::Degenerate(_))));
        let ok = Dataset::from_parts(vec![vec![1.0], vec![2.0]], vec![1.0, -1.0]).unwrap();
        assert_eq!(ok.len(), 2);
    }

    #[test]
    fn subset_preserves_samples() {
        let d = Dataset::from_parts(vec![vec![1.0], vec![2.0], vec![3.0]], vec![1.0, -1.0, 1.0])
            .unwrap();
        let s = d.subset(&[2, 0]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.x(0), &[3.0]);
        assert_eq!(s.y(1), 1.0);
    }

    #[test]
    fn require_both_classes() {
        let d = Dataset::from_parts(vec![vec![1.0], vec![2.0]], vec![1.0, 1.0]).unwrap();
        assert!(d.require_both_classes().is_err());
        let d = Dataset::from_parts(vec![vec![1.0], vec![2.0]], vec![1.0, -1.0]).unwrap();
        assert!(d.require_both_classes().is_ok());
    }

    #[test]
    fn dot_product() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn errors_display() {
        assert!(SvmError::InvalidLabel(0.3).to_string().contains("0.3"));
        assert!(SvmError::BadParameter {
            name: "c",
            reason: "must be > 0".into()
        }
        .to_string()
        .contains("c"));
    }
}

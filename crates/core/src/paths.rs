//! Join-path selection for a reference relation.
//!
//! DISTINCT enumerates every join path starting at the relation holding
//! the references, up to a length bound, **except** paths whose first step
//! follows the reference attribute's own foreign key. That first step
//! reaches the very tuple the reference's textual name identifies — by the
//! problem statement all resembling references share it, so it carries no
//! distinguishing signal, while on the automatically constructed training
//! set (where names differ across negative pairs) it would perfectly
//! separate the classes and starve every informative path of weight.

use relstore::{enumerate_paths, Catalog, Direction, FkId, JoinPath, PathEnumOptions, RelId};

/// The set of join paths DISTINCT analyzes, with display metadata.
#[derive(Debug, Clone)]
pub struct PathSet {
    /// Relation holding the references.
    pub start: RelId,
    /// The foreign key carrying the reference value (e.g.
    /// `Publish.author -> Authors`), excluded as a first step.
    pub ref_fk: FkId,
    /// The selected paths.
    pub paths: Vec<JoinPath>,
    /// Human-readable description per path.
    pub descriptions: Vec<String>,
}

impl PathSet {
    /// Enumerate paths for references stored in `ref_relation` whose
    /// identity value lives in the foreign-key attribute `ref_attr`.
    ///
    /// Returns `None` if the relation or attribute cannot be resolved, or
    /// the attribute is not a foreign key.
    pub fn build(
        catalog: &Catalog,
        ref_relation: &str,
        ref_attr: &str,
        max_len: usize,
    ) -> Option<PathSet> {
        let start = catalog.relation_id(ref_relation)?;
        let attr_idx = catalog.relation(start).schema().attr_index(ref_attr)?;
        let ref_fk = catalog
            .fk_edges()
            .iter()
            .find(|e| e.from == start && e.attr == attr_idx)?
            .id;
        let opts = PathEnumOptions {
            max_len,
            ..Default::default()
        };
        let paths: Vec<JoinPath> = enumerate_paths(catalog, start, &opts)
            .into_iter()
            .filter(|p| {
                p.steps
                    .first()
                    .is_none_or(|first| !(first.fk == ref_fk && first.dir == Direction::Forward))
            })
            .collect();
        let descriptions = paths.iter().map(|p| p.describe(catalog)).collect();
        Some(PathSet {
            start,
            ref_fk,
            paths,
            descriptions,
        })
    }

    /// Number of paths.
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// True if no paths were selected.
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{AmbiguousSpec, World, WorldConfig};

    fn dblp_paths(max_len: usize) -> (relstore::Catalog, PathSet) {
        let mut config = WorldConfig::tiny(3);
        config.ambiguous = vec![AmbiguousSpec::new("Wei Wang", vec![4, 3])];
        let d = datagen::to_catalog(&World::generate(config)).unwrap();
        let ex = relstore::expand_values(&d.catalog).unwrap();
        let ps = PathSet::build(&ex.catalog, "Publish", "author", max_len).unwrap();
        (ex.catalog, ps)
    }

    #[test]
    fn identity_first_step_is_excluded() {
        let (catalog, ps) = dblp_paths(4);
        for p in &ps.paths {
            let d = p.describe(&catalog);
            assert!(!d.starts_with("Publish ->[author] Authors"), "{d}");
        }
        assert!(!ps.is_empty());
    }

    #[test]
    fn semantic_paths_are_present() {
        let (_, ps) = dblp_paths(4);
        let has = |needle: &str| ps.descriptions.iter().any(|d| d == needle);
        // Coauthor path.
        assert!(has(
            "Publish ->[paper_key] Publications <-[paper_key] Publish ->[author] Authors"
        ));
        // Conference path.
        assert!(has(
            "Publish ->[paper_key] Publications ->[proc_key] Proceedings ->[conference] Conferences"
        ));
        // Year path.
        assert!(has(
            "Publish ->[paper_key] Publications ->[proc_key] Proceedings ->[year] Proceedings#year"
        ));
        // Publisher path (length 4).
        assert!(has("Publish ->[paper_key] Publications ->[proc_key] Proceedings ->[conference] Conferences ->[publisher] Conferences#publisher"));
    }

    #[test]
    fn coauthor_path_via_author_fk_midway_is_kept() {
        // The author FK is only banned as a *first* step; the coauthor path
        // uses it as the third step.
        let (catalog, ps) = dblp_paths(3);
        let coauthor = ps
            .paths
            .iter()
            .find(|p| {
                p.describe(&catalog)
                    == "Publish ->[paper_key] Publications <-[paper_key] Publish ->[author] Authors"
            })
            .unwrap();
        assert_eq!(coauthor.steps[2].fk, ps.ref_fk);
    }

    #[test]
    fn max_len_limits_paths() {
        let (_, ps2) = dblp_paths(2);
        let (_, ps4) = dblp_paths(4);
        assert!(ps2.len() < ps4.len());
        assert!(ps2.paths.iter().all(|p| p.len() <= 2));
    }

    #[test]
    fn unknown_relation_or_attr_returns_none() {
        let (catalog, _) = dblp_paths(2);
        assert!(PathSet::build(&catalog, "Nope", "author", 2).is_none());
        assert!(PathSet::build(&catalog, "Publish", "nope", 2).is_none());
        // Publications.title is a FK (after expansion), so it works; but a
        // key attribute is not a FK:
        assert!(PathSet::build(&catalog, "Publications", "paper_key", 2).is_none());
    }

    #[test]
    fn descriptions_parallel_paths() {
        let (catalog, ps) = dblp_paths(3);
        assert_eq!(ps.paths.len(), ps.descriptions.len());
        for (p, d) in ps.paths.iter().zip(&ps.descriptions) {
            assert_eq!(&p.describe(&catalog), d);
        }
    }
}

//! The analyzer turned on itself: the real workspace must be exactly as
//! clean as `lint.toml` says it is, the crate graph must stay acyclic,
//! and the shipped binary must fail loudly on seeded violations.

use lint::graph::CrateGraph;
use std::path::{Path, PathBuf};
use std::process::Command;

fn workspace_root() -> PathBuf {
    lint::workspace::find_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("lint crate lives inside the workspace")
}

/// The CI gate in library form: no new findings, no stale baseline
/// entries, no suppression-hygiene (D000) debt. An exact match — if a
/// finding was fixed, the baseline must be ratcheted down too.
#[test]
fn workspace_is_exactly_as_clean_as_the_baseline() {
    let outcome = lint::check(&workspace_root()).expect("check runs");
    assert!(
        outcome.diff.is_clean(),
        "workspace drifted from lint.toml\n  new debt: {:#?}\n  stale: {:?}",
        outcome.diff.new_debt,
        outcome.diff.stale
    );
}

#[test]
fn crate_graph_is_acyclic_with_exec_below_core() {
    let g = CrateGraph::load(&workspace_root()).expect("graph loads");
    let order = g.topo_order().expect("workspace crate graph is acyclic");
    let pos = |dir: &str| {
        order
            .iter()
            .position(|c| c == dir)
            .unwrap_or_else(|| panic!("crate `{dir}` missing from topo order"))
    };
    // The layering D003 enforces textually, structurally: the exec pool
    // underlies core, which underlies nothing below it.
    assert!(pos("exec") < pos("core"));
    assert!(pos("relstore") < pos("relgraph"));
}

/// Drive the real `lint` binary over a scratch workspace seeded with
/// D001/D002/D003 violations: check fails with each ID reported, the
/// baseline ratchet accepts the debt, new debt fails again, and removing
/// a baselined finding without ratcheting down is itself an error.
#[test]
fn binary_fails_on_seeded_violations_and_ratchets() {
    let scratch =
        std::env::temp_dir().join(format!("distinct-lint-selfcheck-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    let src_dir = scratch.join("crates/app/src");
    std::fs::create_dir_all(&src_dir).expect("mkdir scratch workspace");
    std::fs::write(scratch.join("Cargo.toml"), "[workspace]\n").expect("write manifest");

    let seeded = "\
use rustc_hash::FxHashMap;

pub fn total(weights: &FxHashMap<u32, f64>) -> f64 {
    weights.values().sum()
}

pub fn head(xs: &[f64]) -> f64 {
    xs.first().unwrap()
}

pub fn go() {
    std::thread::spawn(|| {});
}
";
    let lib = src_dir.join("lib.rs");
    std::fs::write(&lib, seeded).expect("write seeded lib");

    let run = |args: &[&str]| {
        let out = Command::new(env!("CARGO_BIN_EXE_lint"))
            .args(args)
            .arg("--root")
            .arg(&scratch)
            .output()
            .expect("spawn lint binary");
        let text = format!(
            "{}{}",
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr)
        );
        (out.status.code(), text)
    };

    // 1. No baseline: every seeded violation is new debt, exit 1.
    let (code, text) = run(&["check"]);
    assert_eq!(code, Some(1), "seeded workspace must fail check:\n{text}");
    for id in ["D001", "D002", "D003"] {
        assert!(text.contains(id), "missing {id} in:\n{text}");
    }

    // 2. Ratchet the debt in, then check is clean.
    let (code, text) = run(&["check", "--fix-baseline"]);
    assert_eq!(code, Some(0), "fix-baseline failed:\n{text}");
    let (code, text) = run(&["check"]);
    assert_eq!(code, Some(0), "baselined workspace must pass:\n{text}");

    // 3. New debt on top of the baseline still fails.
    std::fs::write(
        &lib,
        format!("{seeded}\npub fn more(xs: &[f64]) -> f64 {{\n    xs.last().unwrap()\n}}\n"),
    )
    .expect("append new debt");
    let (code, text) = run(&["check"]);
    assert_eq!(code, Some(1), "new debt must fail:\n{text}");
    assert!(text.contains("D002"), "new unwrap not reported:\n{text}");

    // 4. Fixing a finding without ratcheting the baseline down is stale.
    std::fs::write(&lib, seeded.replace("xs.first().unwrap()", "42.0")).expect("fix a finding");
    let (code, text) = run(&["check"]);
    assert_eq!(code, Some(1), "stale baseline must fail:\n{text}");
    assert!(
        text.contains("[stale]"),
        "stale entry not reported:\n{text}"
    );

    let _ = std::fs::remove_dir_all(&scratch);
}

//! Offline drop-in subset of `serde_json`.
//!
//! Serializes the vendored serde [`Content`] model to JSON text and parses
//! it back. Floats print via Rust's shortest-round-trip formatting (the
//! `float_roundtrip` behavior); non-finite floats serialize as `null`,
//! matching upstream. The parser is a recursive-descent reader with a
//! depth cap so corrupt or adversarial input fails with an [`Error`]
//! instead of exhausting the stack.

#![warn(missing_docs)]

use serde::{Content, Deserialize, Serialize};
use std::fmt;

/// Maximum nesting depth accepted by the parser (matches upstream's
/// default recursion limit).
const MAX_DEPTH: usize = 128;

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Result alias mirroring `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

// --------------------------------------------------------------- writing

/// Serialize to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_content(&mut out, &value.to_content(), None, 0);
    Ok(out)
}

/// Serialize to a pretty-printed JSON string (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_content(&mut out, &value.to_content(), Some(2), 0);
    Ok(out)
}

fn write_content(out: &mut String, c: &Content, indent: Option<usize>, level: usize) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => write_f64(out, *v),
        Content::Str(s) => write_escaped(out, s),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_content(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(out, v, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
        return;
    }
    // Rust's float Display is shortest-round-trip; add `.0` when the
    // output would otherwise read back as an integer.
    let s = v.to_string();
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// --------------------------------------------------------------- reading

/// Deserialize a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let content = parse(s)?;
    T::from_content(&content).map_err(|e| Error::new(e.to_string()))
}

/// Deserialize a value from JSON bytes (must be valid UTF-8).
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes)
        .map_err(|e| Error::new(format!("invalid UTF-8 in JSON input: {e}")))?;
    from_str(s)
}

/// Parse JSON text into the [`Content`] model.
pub fn parse(s: &str) -> Result<Content> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: usize) -> Result<Content> {
        if depth > MAX_DEPTH {
            return Err(self.err("recursion limit exceeded"));
        }
        match self.peek() {
            Some(b'n') if self.literal("null") => Ok(Content::Null),
            Some(b't') if self.literal("true") => Ok(Content::Bool(true)),
            Some(b'f') if self.literal("false") => Ok(Content::Bool(false)),
            Some(b'"') => self.string().map(Content::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Content::Seq(items));
                        }
                        _ => return Err(self.err("expected `,` or `]` in array")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.eat(b':', "expected `:` after object key")?;
                    self.skip_ws();
                    let val = self.value(depth + 1)?;
                    entries.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Content::Map(entries));
                        }
                        _ => return Err(self.err("expected `,` or `}` in object")),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn number(&mut self) -> Result<Content> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let int_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == int_start {
            return Err(self.err("malformed number"));
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(self.err("malformed number fraction"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(self.err("malformed number exponent"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ASCII");
        if float {
            text.parse::<f64>()
                .map(Content::F64)
                .map_err(|_| self.err("number out of range"))
        } else if let Ok(v) = text.parse::<i64>() {
            Ok(Content::I64(v))
        } else if let Ok(v) = text.parse::<u64>() {
            Ok(Content::U64(v))
        } else {
            text.parse::<f64>()
                .map(Content::F64)
                .map_err(|_| self.err("number out of range"))
        }
    }

    fn string(&mut self) -> Result<String> {
        self.eat(b'"', "expected string")?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !(self.literal("\\u")) {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            match char::from_u32(code) {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                0x00..=0x1F => return Err(self.err("raw control character in string")),
                _ => {
                    // Multi-byte UTF-8: copy the full character.
                    let rest = &self.bytes[self.pos - 1..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let ch = s.chars().next().expect("non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8() - 1;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let chunk = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("non-ASCII in \\u escape"))?;
        let v = u32::from_str_radix(chunk, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&42i64).unwrap(), "42");
        assert_eq!(from_str::<i64>("42").unwrap(), 42);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        let x = 0.1f64 + 0.2;
        assert_eq!(from_str::<f64>(&to_string(&x).unwrap()).unwrap(), x);
    }

    #[test]
    fn strings_escape_and_round_trip() {
        let nasty = "a\"b\\c\nd\te\u{8}\u{c}\u{1}é→\u{10348}";
        let json = to_string(&nasty.to_string()).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), nasty);
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(from_str::<String>(r#""\u00e9""#).unwrap(), "é");
        assert_eq!(
            from_str::<String>(r#""\ud800\udf48""#).unwrap(),
            "\u{10348}"
        );
        assert!(from_str::<String>(r#""\ud800""#).is_err());
    }

    #[test]
    fn containers_round_trip() {
        let v: Vec<Option<i64>> = vec![Some(1), None, Some(-3)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,null,-3]");
        assert_eq!(from_str::<Vec<Option<i64>>>(&json).unwrap(), v);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v: Vec<Vec<u32>> = vec![vec![1, 2], vec![], vec![3]];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Vec<Vec<u32>>>(&pretty).unwrap(), v);
    }

    #[test]
    fn malformed_inputs_error() {
        for bad in [
            "", "{", "[1,", "{\"a\"1}", "tru", "01x", "\"\\q\"", "1 2", "{\"a\":}", "nul", "-", "[",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn deep_nesting_is_rejected_not_overflowed() {
        let deep = "[".repeat(100_000);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn large_integers_widen() {
        assert_eq!(
            parse("18446744073709551615").unwrap(),
            Content::U64(u64::MAX)
        );
        assert!(matches!(parse("1e400").unwrap(), Content::F64(v) if v.is_infinite()));
    }
}

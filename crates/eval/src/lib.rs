//! # eval — evaluation toolkit for object distinction experiments
//!
//! * [`PairCounts`] / [`pairwise_scores`] — the paper's §5 pairwise
//!   precision / recall / f-measure over reference pairs;
//! * [`bcubed_scores`] — B³ metrics as a per-item complement;
//! * [`adjusted_rand_index`] — chance-corrected pairwise agreement;
//! * [`Confusion`] — cluster-vs-gold contingency analysis (splits, merges,
//!   purity) backing the Fig. 5 report;
//! * [`Table`] — aligned ASCII tables so harness output mirrors the
//!   paper's tables;
//! * [`PhaseTimer`] — wall-clock phase timing for the §5 runtime numbers.

#![warn(missing_docs)]

pub mod bcubed;
pub mod confusion;
pub mod pairwise;
pub mod rand_index;
pub mod table;
pub mod timing;

pub use bcubed::bcubed_scores;
pub use confusion::Confusion;
pub use pairwise::{pairwise_scores, PairCounts, PrfScores};
pub use rand_index::{adjusted_rand_index, rand_index};
pub use table::{f3, f4, Align, Table};
pub use timing::PhaseTimer;

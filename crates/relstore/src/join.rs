//! Join paths: sequences of foreign-key traversals through the schema graph.
//!
//! A *join path* starts at a designated relation and follows foreign-key
//! edges, each either *forward* (referencing relation to referenced
//! relation, many-to-one) or *backward* (referenced to referencing,
//! one-to-many). In the DBLP schema of the paper, the path
//! `Publish -> Publications -> Publish -> Authors` (forward, backward,
//! forward) reaches the coauthors of a reference's paper.
//!
//! Path semantics differ per path, so the enumeration in
//! [`enumerate_paths`] yields *every* path up to a length bound; the
//! DISTINCT layer weighs them by supervised learning rather than pruning
//! them by hand.

use crate::catalog::{Catalog, FkId};
use crate::error::{Result, StoreError};
use crate::tuple::RelId;
use std::fmt;

/// Direction of one foreign-key traversal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Direction {
    /// From the referencing relation to the referenced relation (many -> 1).
    Forward,
    /// From the referenced relation to the referencing relation (1 -> many).
    Backward,
}

impl Direction {
    /// The opposite direction.
    pub fn reverse(self) -> Self {
        match self {
            Direction::Forward => Direction::Backward,
            Direction::Backward => Direction::Forward,
        }
    }
}

/// One step of a join path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JoinStep {
    /// The foreign-key edge traversed.
    pub fk: FkId,
    /// Traversal direction.
    pub dir: Direction,
}

impl JoinStep {
    /// Forward step over `fk`.
    pub fn forward(fk: FkId) -> Self {
        JoinStep {
            fk,
            dir: Direction::Forward,
        }
    }

    /// Backward step over `fk`.
    pub fn backward(fk: FkId) -> Self {
        JoinStep {
            fk,
            dir: Direction::Backward,
        }
    }

    /// Source relation of this step.
    pub fn source(&self, catalog: &Catalog) -> RelId {
        let edge = catalog.fk(self.fk);
        match self.dir {
            Direction::Forward => edge.from,
            Direction::Backward => edge.to,
        }
    }

    /// Destination relation of this step.
    pub fn dest(&self, catalog: &Catalog) -> RelId {
        let edge = catalog.fk(self.fk);
        match self.dir {
            Direction::Forward => edge.to,
            Direction::Backward => edge.from,
        }
    }

    /// The same edge traversed in the opposite direction.
    pub fn reversed(&self) -> Self {
        JoinStep {
            fk: self.fk,
            dir: self.dir.reverse(),
        }
    }
}

/// A join path: a start relation plus a sequence of steps.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JoinPath {
    /// Relation the path starts at (where the references live, for DISTINCT).
    pub start: RelId,
    /// Steps in traversal order.
    pub steps: Vec<JoinStep>,
}

impl JoinPath {
    /// A zero-step path anchored at `start`.
    pub fn empty(start: RelId) -> Self {
        JoinPath {
            start,
            steps: Vec::new(),
        }
    }

    /// Build a path and validate that its steps chain correctly.
    pub fn new(start: RelId, steps: Vec<JoinStep>, catalog: &Catalog) -> Result<Self> {
        let path = JoinPath { start, steps };
        path.validate(catalog)?;
        Ok(path)
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True if the path has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Verify each step's source matches the previous step's destination.
    pub fn validate(&self, catalog: &Catalog) -> Result<()> {
        let mut at = self.start;
        for (i, step) in self.steps.iter().enumerate() {
            let src = step.source(catalog);
            if src != at {
                return Err(StoreError::InvalidJoinPath(format!(
                    "step {i} starts at relation {:?} but the path is at {:?}",
                    src, at
                )));
            }
            at = step.dest(catalog);
        }
        Ok(())
    }

    /// The relation the path ends at.
    pub fn end(&self, catalog: &Catalog) -> RelId {
        self.steps.last().map_or(self.start, |s| s.dest(catalog))
    }

    /// The sequence of relations visited, including start and end.
    pub fn relations(&self, catalog: &Catalog) -> Vec<RelId> {
        let mut rels = Vec::with_capacity(self.steps.len() + 1);
        rels.push(self.start);
        for step in &self.steps {
            rels.push(step.dest(catalog));
        }
        rels
    }

    /// The reverse path: from the end relation back to the start.
    pub fn reversed(&self, catalog: &Catalog) -> JoinPath {
        let end = self.end(catalog);
        let steps = self.steps.iter().rev().map(JoinStep::reversed).collect();
        JoinPath { start: end, steps }
    }

    /// Append a step, returning the extended path (no validation).
    pub fn extended(&self, step: JoinStep) -> JoinPath {
        let mut steps = Vec::with_capacity(self.steps.len() + 1);
        steps.extend_from_slice(&self.steps);
        steps.push(step);
        JoinPath {
            start: self.start,
            steps,
        }
    }

    /// Human-readable description, e.g.
    /// `Publish ->[paper_key] Publications <-[paper_key] Publish ->[author] Authors`.
    pub fn describe(&self, catalog: &Catalog) -> String {
        let mut out = catalog.relation(self.start).name().to_string();
        for step in &self.steps {
            let edge = catalog.fk(step.fk);
            let attr = &catalog.relation(edge.from).schema().attributes[edge.attr].name;
            let dest = catalog.relation(step.dest(catalog)).name();
            match step.dir {
                Direction::Forward => {
                    out.push_str(&format!(" ->[{attr}] {dest}"));
                }
                Direction::Backward => {
                    out.push_str(&format!(" <-[{attr}] {dest}"));
                }
            }
        }
        out
    }
}

impl fmt::Display for JoinPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "path(r{}", self.start.0)?;
        for s in &self.steps {
            match s.dir {
                Direction::Forward => write!(f, " f{}", s.fk.0)?,
                Direction::Backward => write!(f, " b{}", s.fk.0)?,
            }
        }
        write!(f, ")")
    }
}

/// Options controlling [`enumerate_paths`].
#[derive(Debug, Clone)]
pub struct PathEnumOptions {
    /// Maximum number of steps per path.
    pub max_len: usize,
    /// If true, prune a step that immediately undoes the previous step
    /// (same FK, opposite direction) *when the previous step was backward*.
    ///
    /// A backward-then-forward round trip over one FK (e.g.
    /// `Publications <- Publish -> Publications`) returns to a superset of
    /// where it started and carries no new linkage, whereas forward-then-
    /// backward (`Publish -> Publications <- Publish`) reaches *sibling*
    /// tuples — in DBLP, the coauthor references — and must be kept.
    pub prune_backward_forward_roundtrip: bool,
    /// Maximum number of paths to produce (safety valve for dense schemas).
    pub max_paths: usize,
}

impl Default for PathEnumOptions {
    fn default() -> Self {
        PathEnumOptions {
            max_len: 4,
            prune_backward_forward_roundtrip: true,
            max_paths: 10_000,
        }
    }
}

/// Enumerate all join paths starting at `start`, up to the option limits,
/// in breadth-first (shortest-first) order. The zero-step path is not
/// included.
pub fn enumerate_paths(catalog: &Catalog, start: RelId, opts: &PathEnumOptions) -> Vec<JoinPath> {
    let mut out = Vec::new();
    let mut frontier = vec![JoinPath::empty(start)];
    for _ in 0..opts.max_len {
        let mut next = Vec::new();
        for path in &frontier {
            let at = path.end(catalog);
            let mut candidates: Vec<JoinStep> = Vec::new();
            for &fk in catalog.out_edges(at) {
                candidates.push(JoinStep::forward(fk));
            }
            for &fk in catalog.in_edges(at) {
                candidates.push(JoinStep::backward(fk));
            }
            for step in candidates {
                if opts.prune_backward_forward_roundtrip {
                    if let Some(prev) = path.steps.last() {
                        if prev.fk == step.fk
                            && prev.dir == Direction::Backward
                            && step.dir == Direction::Forward
                        {
                            continue;
                        }
                    }
                }
                let ext = path.extended(step);
                if out.len() + next.len() < opts.max_paths {
                    next.push(ext);
                }
            }
        }
        if next.is_empty() {
            break;
        }
        out.extend(next.iter().cloned());
        frontier = next;
        if out.len() >= opts.max_paths {
            out.truncate(opts.max_paths);
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::SchemaBuilder;
    use crate::value::{AttrType, Value};

    /// Publish(author->Authors, paper->Papers), Papers(paper KEY, venue->Venues),
    /// Venues(venue KEY), Authors(author KEY).
    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_relation(
            SchemaBuilder::new("Authors")
                .key("author", AttrType::Str)
                .build()
                .unwrap(),
        )
        .unwrap();
        c.add_relation(
            SchemaBuilder::new("Venues")
                .key("venue", AttrType::Str)
                .build()
                .unwrap(),
        )
        .unwrap();
        c.add_relation(
            SchemaBuilder::new("Papers")
                .key("paper", AttrType::Int)
                .fk("venue", AttrType::Str, "Venues")
                .build()
                .unwrap(),
        )
        .unwrap();
        c.add_relation(
            SchemaBuilder::new("Publish")
                .fk("author", AttrType::Str, "Authors")
                .fk("paper", AttrType::Int, "Papers")
                .build()
                .unwrap(),
        )
        .unwrap();
        c.insert("Authors", [Value::str("wei wang")].into())
            .unwrap();
        c.insert("Venues", [Value::str("VLDB")].into()).unwrap();
        c.insert("Papers", [Value::Int(1), Value::str("VLDB")].into())
            .unwrap();
        c.insert("Publish", [Value::str("wei wang"), Value::Int(1)].into())
            .unwrap();
        c.finalize(true).unwrap();
        c
    }

    fn fk_by_label(c: &Catalog, label: &str) -> FkId {
        c.fk_edges().iter().find(|e| e.label == label).unwrap().id
    }

    #[test]
    fn step_endpoints() {
        let c = catalog();
        let fk = fk_by_label(&c, "Publish.paper->Papers");
        let publish = c.relation_id("Publish").unwrap();
        let papers = c.relation_id("Papers").unwrap();
        let f = JoinStep::forward(fk);
        assert_eq!(f.source(&c), publish);
        assert_eq!(f.dest(&c), papers);
        let b = f.reversed();
        assert_eq!(b.source(&c), papers);
        assert_eq!(b.dest(&c), publish);
        assert_eq!(b.reversed(), f);
    }

    #[test]
    fn path_validation() {
        let c = catalog();
        let publish = c.relation_id("Publish").unwrap();
        let fk_paper = fk_by_label(&c, "Publish.paper->Papers");
        let fk_venue = fk_by_label(&c, "Papers.venue->Venues");
        // Publish -> Papers -> Venues is valid.
        let ok = JoinPath::new(
            publish,
            vec![JoinStep::forward(fk_paper), JoinStep::forward(fk_venue)],
            &c,
        );
        assert!(ok.is_ok());
        // Publish -> Venues directly is not.
        let bad = JoinPath::new(publish, vec![JoinStep::forward(fk_venue)], &c);
        assert!(bad.is_err());
    }

    #[test]
    fn path_end_and_relations() {
        let c = catalog();
        let publish = c.relation_id("Publish").unwrap();
        let papers = c.relation_id("Papers").unwrap();
        let venues = c.relation_id("Venues").unwrap();
        let fk_paper = fk_by_label(&c, "Publish.paper->Papers");
        let fk_venue = fk_by_label(&c, "Papers.venue->Venues");
        let p = JoinPath::new(
            publish,
            vec![JoinStep::forward(fk_paper), JoinStep::forward(fk_venue)],
            &c,
        )
        .unwrap();
        assert_eq!(p.end(&c), venues);
        assert_eq!(p.relations(&c), vec![publish, papers, venues]);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
        assert!(JoinPath::empty(publish).is_empty());
    }

    #[test]
    fn reversed_path_is_valid_and_mirrors() {
        let c = catalog();
        let publish = c.relation_id("Publish").unwrap();
        let fk_paper = fk_by_label(&c, "Publish.paper->Papers");
        let fk_venue = fk_by_label(&c, "Papers.venue->Venues");
        let p = JoinPath::new(
            publish,
            vec![JoinStep::forward(fk_paper), JoinStep::forward(fk_venue)],
            &c,
        )
        .unwrap();
        let r = p.reversed(&c);
        assert_eq!(r.start, c.relation_id("Venues").unwrap());
        assert_eq!(r.end(&c), publish);
        r.validate(&c).unwrap();
        assert_eq!(r.reversed(&c), p);
    }

    #[test]
    fn describe_is_readable() {
        let c = catalog();
        let publish = c.relation_id("Publish").unwrap();
        let fk_paper = fk_by_label(&c, "Publish.paper->Papers");
        let coauthor = JoinPath::new(
            publish,
            vec![
                JoinStep::forward(fk_paper),
                JoinStep::backward(fk_paper),
                JoinStep::forward(fk_by_label(&c, "Publish.author->Authors")),
            ],
            &c,
        )
        .unwrap();
        let d = coauthor.describe(&c);
        assert_eq!(
            d,
            "Publish ->[paper] Papers <-[paper] Publish ->[author] Authors"
        );
    }

    #[test]
    fn enumerate_includes_semantic_paths() {
        let c = catalog();
        let publish = c.relation_id("Publish").unwrap();
        let paths = enumerate_paths(&c, publish, &PathEnumOptions::default());
        let descs: Vec<String> = paths.iter().map(|p| p.describe(&c)).collect();
        // The coauthor path (forward-backward-forward) must be present.
        assert!(descs
            .iter()
            .any(|d| d == "Publish ->[paper] Papers <-[paper] Publish ->[author] Authors"));
        // The venue path must be present.
        assert!(descs
            .iter()
            .any(|d| d == "Publish ->[paper] Papers ->[venue] Venues"));
        // All enumerated paths validate.
        for p in &paths {
            p.validate(&c).unwrap();
        }
        // Shortest-first ordering.
        for w in paths.windows(2) {
            assert!(w[0].len() <= w[1].len());
        }
    }

    #[test]
    fn backward_forward_roundtrip_pruned() {
        let c = catalog();
        let papers = c.relation_id("Papers").unwrap();
        let opts = PathEnumOptions {
            max_len: 2,
            ..Default::default()
        };
        let paths = enumerate_paths(&c, papers, &opts);
        // Papers <-[paper] Publish ->[paper] Papers must be pruned.
        assert!(!paths
            .iter()
            .any(|p| p.describe(&c) == "Papers <-[paper] Publish ->[paper] Papers"));
        // But Papers <-[paper] Publish ->[author] Authors survives.
        assert!(paths
            .iter()
            .any(|p| p.describe(&c) == "Papers <-[paper] Publish ->[author] Authors"));
    }

    #[test]
    fn roundtrip_kept_when_pruning_disabled() {
        let c = catalog();
        let papers = c.relation_id("Papers").unwrap();
        let opts = PathEnumOptions {
            max_len: 2,
            prune_backward_forward_roundtrip: false,
            ..Default::default()
        };
        let paths = enumerate_paths(&c, papers, &opts);
        assert!(paths
            .iter()
            .any(|p| p.describe(&c) == "Papers <-[paper] Publish ->[paper] Papers"));
    }

    #[test]
    fn max_paths_is_respected() {
        let c = catalog();
        let publish = c.relation_id("Publish").unwrap();
        let opts = PathEnumOptions {
            max_len: 6,
            max_paths: 5,
            ..Default::default()
        };
        let paths = enumerate_paths(&c, publish, &opts);
        assert!(paths.len() <= 5);
    }

    #[test]
    fn max_len_bounds_path_length() {
        let c = catalog();
        let publish = c.relation_id("Publish").unwrap();
        let opts = PathEnumOptions {
            max_len: 2,
            ..Default::default()
        };
        for p in enumerate_paths(&c, publish, &opts) {
            assert!(p.len() <= 2);
        }
    }
}

//! Item-level recursive descent over the token stream: function
//! definitions with the body facts the semantic passes need.
//!
//! This is deliberately not a full Rust parser. It recovers exactly the
//! structure the interprocedural lints reason about — which `impl` block
//! a function sits in, whether it is `pub`, its doc text, and a skeleton
//! of its body (call sites, loops, panic sites, lock acquisitions,
//! channel sends, budget charges, sanitizers, risky arithmetic) — and
//! leaves expression grammar to the token heuristics the per-file passes
//! already use. Every approximation is one-sided: the symbol resolver
//! built on top over-approximates reachability, never under-approximates.

use crate::lexer::TokKind;
use crate::model::{FileCtx, FnSpan};
use crate::passes;

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Last path segment / method name (`resemblance`).
    pub name: String,
    /// Leading path segments for path calls (`["WeightedSet"]`,
    /// `["relstore", "persist"]`); empty for bare and method calls.
    pub path: Vec<String>,
    /// Whether this is a `.name(...)` method call.
    pub is_method: bool,
    /// 1-based source line.
    pub line: u32,
    /// Token index of the name, for lock-scope overlap tests.
    pub idx: usize,
}

/// One lock acquisition (`recv.lock()` / `.read()` / `.write()` with an
/// empty argument list, which disambiguates from `io::Write::write(buf)`).
#[derive(Debug, Clone)]
pub struct LockSite {
    /// Textual receiver label (`self.shard()`, `inner.state`); two
    /// acquisitions with the same label are treated as the same lock.
    pub label: String,
    /// 1-based source line.
    pub line: u32,
    /// Token index of the method name.
    pub idx: usize,
    /// Token index one past where the guard is last held: end of the
    /// enclosing statement for inline uses, end of the function body for
    /// `let`-bound guards (an over-approximation — no drop tracking).
    pub hold_end: usize,
    /// The `let` binding holding the guard, if the acquisition is
    /// `let`-bound (`let cache = self.names.lock()` → `Some("cache")`).
    /// D106's liveness dataflow kills the guard at `drop(binding)`.
    pub binding: Option<String>,
}

/// What a function body does, as far as the semantic passes care.
#[derive(Debug, Clone, Default)]
pub struct BodyFacts {
    /// Call sites, in source order.
    pub calls: Vec<CallSite>,
    /// Lines of `for`/`while`/`loop` keywords.
    pub loops: Vec<u32>,
    /// Panic sites `(line, message)` (same scan as D002).
    pub panics: Vec<(u32, String)>,
    /// Lock acquisitions.
    pub locks: Vec<LockSite>,
    /// `.send(...)` sites as `(line, token index)`.
    pub sends: Vec<(u32, usize)>,
    /// `.recv()`/`.try_recv()`/`.recv_timeout(...)` sites as
    /// `(line, token index)` — the other half of a channel rendezvous.
    pub recvs: Vec<(u32, usize)>,
    /// Whether the body calls a budget hook
    /// (`guard(`/`shared_guard(`/`charge(`/`status(`).
    pub charges: bool,
    /// Whether the body contains a range sanitizer: `clamp(`,
    /// `debug_assert!`, or both `.min(` and `.max(`.
    pub sanitizes: bool,
    /// Whether the body does range-risky arithmetic (binary `+ - * /`,
    /// or `exp`/`powf`/`ln`/`sqrt`/`sum` calls).
    pub risky_arith: bool,
}

/// One parsed function item.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Bare function name.
    pub name: String,
    /// Enclosing `impl` block's self type, if any (`Distinct`,
    /// `WeightedSet`); trait impls record the implementing type.
    pub impl_type: Option<String>,
    /// Whether the item is `pub` (not `pub(crate)`/`pub(super)`).
    pub is_pub: bool,
    /// Workspace-relative file path.
    pub file: String,
    /// Owning crate's directory name (`core`, `relgraph`, `.`).
    pub crate_dir: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Whether the function is test code.
    pub is_test: bool,
    /// Whether a parameter names `guard` (the budget-guard convention).
    pub has_guard_param: bool,
    /// Concatenated doc-comment text above the item.
    pub doc: String,
    /// Body skeleton.
    pub facts: BodyFacts,
}

const KEYWORDS: [&str; 34] = [
    "if", "else", "while", "for", "loop", "match", "return", "fn", "as", "in", "move", "ref",
    "unsafe", "let", "mut", "pub", "use", "where", "impl", "dyn", "break", "continue", "struct",
    "enum", "trait", "type", "const", "static", "mod", "crate", "super", "async", "await", "box",
];

pub(crate) fn is_keyword(s: &str) -> bool {
    KEYWORDS.contains(&s)
}

/// Parse every function item in `ctx` into a [`FnDef`].
pub fn parse_fns(ctx: &FileCtx) -> Vec<FnDef> {
    let toks = &ctx.toks;
    let n = toks.len();
    // Pass 1: map each fn span's start token to its impl-block self type.
    let mut impl_of: Vec<Option<String>> = vec![None; ctx.fns.len()];
    {
        let mut stack: Vec<(String, usize)> = Vec::new(); // (type, open depth)
        let mut pending: Option<String> = None;
        let mut depth = 0usize;
        let mut i = 0usize;
        while i < n {
            let t = &toks[i];
            if matches!(t.kind, TokKind::Comment | TokKind::DocComment) {
                i += 1;
                continue;
            }
            if t.is_punct('{') {
                depth += 1;
                if let Some(ty) = pending.take() {
                    stack.push((ty, depth));
                }
            } else if t.is_punct('}') {
                if stack.last().is_some_and(|f| f.1 == depth) {
                    stack.pop();
                }
                depth = depth.saturating_sub(1);
            } else if t.is_ident("impl") && at_item_position(ctx, i) {
                if let Some((ty, brace)) = parse_impl_header(ctx, i) {
                    pending = Some(ty);
                    i = brace; // next iteration sees the `{`
                    continue;
                }
            } else if t.is_ident("fn") {
                if let Some(k) = ctx.fns.iter().position(|f| f.start == i) {
                    impl_of[k] = stack.last().filter(|f| f.1 == depth).map(|f| f.0.clone());
                }
            }
            i += 1;
        }
    }
    // Pass 2: one FnDef per span, with header attributes and body facts.
    ctx.fns
        .iter()
        .enumerate()
        .map(|(k, f)| {
            let (is_pub, doc) = header_info(ctx, f.start);
            FnDef {
                name: f.name.clone(),
                impl_type: impl_of[k].clone(),
                is_pub,
                file: ctx.path.clone(),
                crate_dir: ctx.crate_name.clone(),
                line: f.line,
                is_test: f.is_test,
                has_guard_param: f.has_guard_param,
                doc,
                facts: body_facts(ctx, f),
            }
        })
        .collect()
}

/// Whether the token at `i` sits at item position (so `impl` opens a
/// block rather than appearing in `-> impl Trait` / `impl Fn(..)` type
/// positions).
fn at_item_position(ctx: &FileCtx, i: usize) -> bool {
    match ctx.prev_code(i) {
        None => true,
        Some(p) => {
            let t = &ctx.toks[p];
            t.is_punct(';')
                || t.is_punct('{')
                || t.is_punct('}')
                || t.is_punct(']') // end of an attribute
                || t.is_ident("unsafe")
        }
    }
}

/// Parse an `impl` header starting at token `i` (the `impl` keyword):
/// returns the self type's last path segment and the token index of the
/// body `{`. `impl [<..>] [Trait for] Type [<..>] [where ..] {`.
fn parse_impl_header(ctx: &FileCtx, i: usize) -> Option<(String, usize)> {
    let toks = &ctx.toks;
    let n = toks.len();
    let mut j = ctx.next_code(i);
    let mut angle = 0i32;
    let mut paren = 0i32;
    let mut ty: Option<String> = None;
    let mut in_where = false;
    while j < n {
        let t = &toks[j];
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            angle -= 1;
        } else if t.is_punct('(') {
            paren += 1;
        } else if t.is_punct(')') {
            paren -= 1;
        } else if angle == 0 && paren == 0 {
            if t.is_punct('{') {
                return ty.map(|s| (s, j));
            }
            if t.is_punct(';') {
                return None;
            }
            if t.is_ident("for") {
                ty = None; // the self type follows `for`
            } else if t.is_ident("where") {
                in_where = true;
            } else if !in_where && t.kind == TokKind::Ident && !is_keyword(&t.text) {
                // Path segments overwrite so the last one wins
                // (`relstore::Catalog` -> `Catalog`).
                ty = Some(t.text.clone());
            }
        }
        j += 1;
    }
    None
}

/// Backward scan over the item header: is it `pub` (exactly), and what
/// doc text precedes it?
fn header_info(ctx: &FileCtx, fn_start: usize) -> (bool, String) {
    let toks = &ctx.toks;
    let mut is_pub = false;
    let mut docs: Vec<&str> = Vec::new();
    let mut j = fn_start;
    let mut steps = 0;
    while j > 0 && steps < 64 {
        steps += 1;
        j -= 1;
        let t = &toks[j];
        match t.kind {
            TokKind::Comment => continue,
            TokKind::DocComment => {
                docs.push(&t.text);
                continue;
            }
            TokKind::Ident
                if matches!(t.text.as_str(), "const" | "async" | "unsafe" | "extern") =>
            {
                continue;
            }
            TokKind::Literal => continue, // `extern "C"`
            TokKind::Ident if t.text == "pub" => {
                // `pub(crate)` is not public API.
                let nx = ctx.next_code(j);
                if !(nx < toks.len() && toks[nx].is_punct('(')) {
                    is_pub = true;
                }
                continue;
            }
            TokKind::Punct if t.is_punct(']') => {
                // Skip a `#[...]` attribute backwards.
                let mut depth = 0usize;
                loop {
                    if toks[j].is_punct(']') {
                        depth += 1;
                    } else if toks[j].is_punct('[') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    if j == 0 {
                        break;
                    }
                    j -= 1;
                }
                if j > 0 && toks[j - 1].is_punct('#') {
                    j -= 1;
                    continue;
                }
                break;
            }
            TokKind::Punct if t.is_punct(')') => continue, // `pub(crate)` tail
            TokKind::Ident if matches!(t.text.as_str(), "crate" | "super" | "self") => continue,
            TokKind::Punct if t.is_punct('(') => continue,
            _ => break,
        }
    }
    docs.reverse();
    (is_pub, docs.join("\n"))
}

/// Token ranges of functions nested strictly inside `f` (their facts
/// must not be attributed to `f`).
fn child_ranges(ctx: &FileCtx, f: &FnSpan) -> Vec<(usize, usize)> {
    ctx.fns
        .iter()
        .filter(|g| g.start > f.start && g.end <= f.end && g.start < f.end)
        .map(|g| (g.start, g.end))
        .collect()
}

/// Extract the body skeleton of one function span.
fn body_facts(ctx: &FileCtx, f: &FnSpan) -> BodyFacts {
    let toks = &ctx.toks;
    let n = toks.len();
    let mut facts = BodyFacts::default();
    if f.body_start >= f.end {
        return facts;
    }
    let children = child_ranges(ctx, f);
    let skip = |i: usize| children.iter().any(|&(a, b)| a <= i && i < b);
    facts.panics = passes::panic_sites(ctx, f.body_start, f.end)
        .into_iter()
        .filter(|&(line, _)| {
            // Re-locate by line to drop panics inside nested fns.
            !children
                .iter()
                .any(|&(a, b)| a < n && toks[a].line <= line && b > a && line <= toks[b - 1].line)
        })
        .collect();
    let mut saw_min = false;
    let mut saw_max = false;
    let mut i = f.body_start;
    while i < f.end.min(n) {
        if skip(i) || matches!(toks[i].kind, TokKind::Comment | TokKind::DocComment) {
            i += 1;
            continue;
        }
        let t = &toks[i];
        // Arithmetic operators in binary position.
        if t.kind == TokKind::Punct
            && matches!(t.text.as_str(), "+" | "*" | "/" | "-")
            && !facts.risky_arith
        {
            let prev_ok = ctx.prev_code(i).is_some_and(|p| {
                let u = &toks[p];
                matches!(u.kind, TokKind::Ident | TokKind::Int | TokKind::Float)
                    || u.is_punct(')')
                    || u.is_punct(']')
            });
            // `->` lexes as `-` `>`; not arithmetic.
            let arrow = t.text == "-" && i + 1 < n && toks[i + 1].is_punct('>');
            if prev_ok && !arrow {
                facts.risky_arith = true;
            }
        }
        if t.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        let next = ctx.next_code(i);
        let prev_dot = ctx
            .prev_code(i)
            .map(|p| toks[p].is_punct('.'))
            .unwrap_or(false);
        match t.text.as_str() {
            "for" | "while" => facts.loops.push(t.line),
            "loop" if next < n && toks[next].is_punct('{') => facts.loops.push(t.line),
            "debug_assert" | "debug_assert_eq" if next < n && toks[next].is_punct('!') => {
                facts.sanitizes = true;
            }
            "clamp" if next < n && toks[next].is_punct('(') => facts.sanitizes = true,
            "min" if prev_dot && next < n && toks[next].is_punct('(') => saw_min = true,
            "max" if prev_dot && next < n && toks[next].is_punct('(') => saw_max = true,
            "guard" | "shared_guard" | "charge" | "status"
                if next < n && toks[next].is_punct('(') =>
            {
                facts.charges = true;
            }
            "exp" | "powf" | "ln" | "sqrt" | "sum"
                if prev_dot
                    && next < n
                    && (toks[next].is_punct('(') || toks[next].is_punct(':')) =>
            {
                facts.risky_arith = true;
            }
            "send" if prev_dot && next < n && toks[next].is_punct('(') => {
                facts.sends.push((t.line, i));
            }
            "recv" | "try_recv" | "recv_timeout"
                if prev_dot && next < n && toks[next].is_punct('(') =>
            {
                facts.recvs.push((t.line, i));
            }
            "lock" | "read" | "write" if prev_dot && next < n && toks[next].is_punct('(') => {
                let close = ctx.next_code(next);
                if close < n && toks[close].is_punct(')') {
                    facts.locks.push(LockSite {
                        label: receiver_label(ctx, i),
                        line: t.line,
                        idx: i,
                        hold_end: hold_end(ctx, i, f),
                        binding: let_binding(ctx, i),
                    });
                }
            }
            _ => {}
        }
        // Call sites: Ident [::<..>] `(`, excluding keywords and macros.
        if !is_keyword(&t.text) {
            let (open, generic) = after_turbofish(ctx, i);
            if open < n && toks[open].is_punct('(') {
                let _ = generic;
                let mut path = Vec::new();
                if !prev_dot {
                    // Walk back over `seg::`... pairs.
                    let mut at = i;
                    while let Some(p) = ctx.prev_code(at) {
                        if !toks[p].is_punct(':') {
                            break;
                        }
                        let Some(p2) = ctx.prev_code(p) else { break };
                        if !toks[p2].is_punct(':') {
                            break;
                        }
                        let Some(p3) = ctx.prev_code(p2) else { break };
                        if toks[p3].kind == TokKind::Ident {
                            path.insert(0, toks[p3].text.clone());
                            at = p3;
                        } else if toks[p3].is_punct('>') {
                            // `Foo::<T>::new` — give up on the prefix.
                            break;
                        } else {
                            break;
                        }
                    }
                }
                facts.calls.push(CallSite {
                    name: t.text.clone(),
                    path,
                    is_method: prev_dot,
                    line: t.line,
                    idx: i,
                });
            }
        }
        i += 1;
    }
    if saw_min && saw_max {
        facts.sanitizes = true;
    }
    facts
}

/// Skip a turbofish after the identifier at `i`: returns the token index
/// that should be `(` for a call, and whether a turbofish was present.
fn after_turbofish(ctx: &FileCtx, i: usize) -> (usize, bool) {
    let toks = &ctx.toks;
    let n = toks.len();
    let j = ctx.next_code(i);
    if j < n && toks[j].is_punct(':') {
        let k = ctx.next_code(j);
        if k < n && toks[k].is_punct(':') {
            let l = ctx.next_code(k);
            if l < n && toks[l].is_punct('<') {
                let mut depth = 0i32;
                let mut m = l;
                while m < n {
                    if toks[m].is_punct('<') {
                        depth += 1;
                    } else if toks[m].is_punct('>') {
                        depth -= 1;
                        if depth == 0 {
                            return (ctx.next_code(m), true);
                        }
                    }
                    m += 1;
                }
                return (n, true);
            }
        }
    }
    (j, false)
}

/// Textual receiver of a method call: walk the `a.b(..).c` chain
/// backwards from the method-name token, rendering call/index groups as
/// `()`/`[]` so equal receivers get equal labels.
fn receiver_label(ctx: &FileCtx, method_idx: usize) -> String {
    let toks = &ctx.toks;
    let mut parts: Vec<String> = Vec::new();
    let Some(dot) = ctx.prev_code(method_idx) else {
        return String::new();
    };
    // `dot` is the method's own `.`; the chain starts before it.
    let Some(mut j) = ctx.prev_code(dot) else {
        return String::new();
    };
    let mut steps = 0;
    loop {
        steps += 1;
        if steps > 32 {
            break;
        }
        let t = &toks[j];
        if t.is_punct('.') {
            parts.push(".".into());
        } else if t.kind == TokKind::Ident && !is_keyword(&t.text) || t.is_ident("self") {
            parts.push(t.text.clone());
            // A `::` before an ident extends the chain (`Arc::clone`).
            if let Some(p) = ctx.prev_code(j) {
                if toks[p].is_punct(':') {
                    if let Some(p2) = ctx.prev_code(p) {
                        if toks[p2].is_punct(':') {
                            parts.push("::".into());
                            if let Some(p3) = ctx.prev_code(p2) {
                                j = p3;
                                continue;
                            }
                        }
                    }
                    break;
                }
            }
        } else if t.is_punct(')') || t.is_punct(']') {
            // Skip the group backwards.
            let (open, close) = if t.is_punct(')') {
                ('(', ')')
            } else {
                ('[', ']')
            };
            let mut depth = 0usize;
            loop {
                if toks[j].is_punct(close) {
                    depth += 1;
                } else if toks[j].is_punct(open) {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                match ctx.prev_code(j) {
                    Some(p) => j = p,
                    None => break,
                }
                if depth == 0 {
                    break;
                }
            }
            parts.push(if open == '(' {
                "()".into()
            } else {
                "[]".into()
            });
        } else {
            break;
        }
        match ctx.prev_code(j) {
            Some(p) => {
                let u = &toks[p];
                if u.is_punct('.')
                    || u.kind == TokKind::Ident && !is_keyword(&u.text)
                    || u.is_punct(')')
                    || u.is_punct(']')
                    || u.is_punct(':')
                {
                    j = p;
                    continue;
                }
                break;
            }
            None => break,
        }
    }
    parts.reverse();
    parts.concat()
}

/// The name a `let`-bound statement binds, if the call at `idx` sits on
/// the right-hand side of one: walk back to the statement's `let`, then
/// forward to its `=`, taking the last plain identifier of the pattern
/// (`let mut g = ..` → `g`, `let Some(g) = ..` → `g`).
fn let_binding(ctx: &FileCtx, idx: usize) -> Option<String> {
    let toks = &ctx.toks;
    let mut j = idx;
    let mut let_at = None;
    while let Some(p) = ctx.prev_code(j) {
        let t = &toks[p];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            break;
        }
        if t.is_ident("let") {
            let_at = Some(p);
            break;
        }
        j = p;
        if idx - j > 64 {
            break;
        }
    }
    let start = let_at?;
    let mut name = None;
    let mut k = ctx.next_code(start);
    while k < idx {
        let t = &toks[k];
        if t.is_punct('=') {
            break;
        }
        if t.is_punct(':') {
            // A single `:` starts the ascribed type; `::` is a path.
            let k2 = ctx.next_code(k);
            if k2 < idx && toks[k2].is_punct(':') {
                k = ctx.next_code(k2);
                continue;
            }
            break;
        }
        if t.kind == TokKind::Ident && !is_keyword(&t.text) {
            name = Some(t.text.clone());
        }
        k = ctx.next_code(k);
    }
    name
}

/// Where a lock guard acquired at `idx` stops being held: end of the
/// function body for `let`-bound (or `if let`/`while let`) guards, end
/// of the enclosing statement otherwise.
fn hold_end(ctx: &FileCtx, idx: usize, f: &FnSpan) -> usize {
    let toks = &ctx.toks;
    // Backward: does a `let` open this statement?
    let mut j = idx;
    let mut bound = false;
    while let Some(p) = ctx.prev_code(j) {
        let t = &toks[p];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            break;
        }
        if t.is_ident("let") {
            bound = true;
            break;
        }
        j = p;
        if idx - j > 64 {
            break;
        }
    }
    if bound {
        return f.end;
    }
    // Forward to the statement's `;` (or the body end).
    let mut depth = 0i32;
    let mut k = idx;
    while k < f.end.min(toks.len()) {
        let t = &toks[k];
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if depth <= 0 && (t.is_punct(';') || t.is_punct('{') || t.is_punct('}')) {
            return k;
        }
        k += 1;
    }
    f.end
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{FileCtx, Role};

    fn parse(src: &str) -> Vec<FnDef> {
        parse_fns(&FileCtx::new(
            "crates/core/src/x.rs",
            "core",
            Role::Library,
            src,
        ))
    }

    #[test]
    fn impl_blocks_and_pubness() {
        let src = "\
/// Engine.
pub struct Distinct;
impl Distinct {
    /// Resolve.
    pub fn resolve(&self) -> u32 { self.helper() + 1 }
    fn helper(&self) -> u32 { 0 }
}
pub(crate) fn internal() {}
pub fn free() {}
";
        let fns = parse(src);
        let resolve = fns.iter().find(|f| f.name == "resolve").unwrap();
        assert_eq!(resolve.impl_type.as_deref(), Some("Distinct"));
        assert!(resolve.is_pub);
        assert!(resolve.doc.contains("Resolve"));
        let helper = fns.iter().find(|f| f.name == "helper").unwrap();
        assert_eq!(helper.impl_type.as_deref(), Some("Distinct"));
        assert!(!helper.is_pub);
        let internal = fns.iter().find(|f| f.name == "internal").unwrap();
        assert!(!internal.is_pub, "pub(crate) is not public");
        let free = fns.iter().find(|f| f.name == "free").unwrap();
        assert!(free.is_pub);
        assert_eq!(free.impl_type, None);
    }

    #[test]
    fn trait_impl_records_self_type() {
        let src = "impl Display for Finding { fn fmt(&self) -> u32 { 1 } }";
        let fns = parse(src);
        assert_eq!(fns[0].impl_type.as_deref(), Some("Finding"));
    }

    #[test]
    fn return_position_impl_is_not_a_block() {
        let src = "pub fn f() -> u32 { g() }\nimpl S { fn m(&self) {} }";
        let fns = parse(src);
        assert_eq!(fns[0].impl_type, None);
        assert_eq!(fns[1].impl_type.as_deref(), Some("S"));
    }

    #[test]
    fn call_sites_classified() {
        let src = "\
fn f() {
    helper();
    other.method(1);
    WeightedSet::from_pairs(it);
    relstore::persist::save(x);
    println!(\"not a call\");
    if cond() { }
}
";
        let fns = parse(src);
        let calls = &fns[0].facts.calls;
        let names: Vec<(&str, bool)> = calls
            .iter()
            .map(|c| (c.name.as_str(), c.is_method))
            .collect();
        assert!(names.contains(&("helper", false)));
        assert!(names.contains(&("method", true)));
        assert!(names.contains(&("from_pairs", false)));
        assert!(names.contains(&("save", false)));
        assert!(names.contains(&("cond", false)));
        assert!(!names.iter().any(|(n, _)| *n == "println"));
        let fp = calls.iter().find(|c| c.name == "from_pairs").unwrap();
        assert_eq!(fp.path, vec!["WeightedSet".to_string()]);
        let sv = calls.iter().find(|c| c.name == "save").unwrap();
        assert_eq!(sv.path, vec!["relstore".to_string(), "persist".to_string()]);
    }

    #[test]
    fn body_facts_flags() {
        let src = "\
fn f(xs: &[f64], ctl: &C) -> f64 {
    let mut t = 0.0;
    for x in xs { ctl.charge(1); t += x; }
    t.clamp(0.0, 1.0)
}
fn g(x: f64) -> f64 { x.exp() }
";
        let fns = parse(src);
        assert!(fns[0].facts.charges);
        assert!(fns[0].facts.sanitizes);
        assert_eq!(fns[0].facts.loops.len(), 1);
        assert!(fns[0].facts.risky_arith);
        assert!(fns[1].facts.risky_arith);
        assert!(!fns[1].facts.charges);
    }

    #[test]
    fn locks_and_sends() {
        let src = "\
fn a(&self) {
    let g = self.inner.lock();
    self.tx.send(1);
}
fn b(&self) {
    self.shard(r).lock().insert(k, v);
}
fn c(w: &mut W) {
    w.write(buf);
}
";
        let fns = parse(src);
        let a = &fns[0].facts;
        assert_eq!(a.locks.len(), 1);
        assert_eq!(a.locks[0].label, "self.inner");
        assert_eq!(a.sends.len(), 1);
        // let-bound: held to end of fn, covering the send.
        assert!(a.locks[0].hold_end > a.sends[0].1);
        let b = &fns[1].facts;
        assert_eq!(b.locks.len(), 1);
        assert_eq!(b.locks[0].label, "self.shard()");
        // inline: held to end of statement only.
        assert!(
            b.locks[0].hold_end
                < fns[1]
                    .facts
                    .calls
                    .last()
                    .map(|c| c.idx)
                    .unwrap_or(usize::MAX)
                    + 100
        );
        // `.write(buf)` with arguments is io, not a lock.
        assert!(fns[2].facts.locks.is_empty());
    }

    #[test]
    fn panics_in_nested_fns_not_attributed_to_parent() {
        let src = "\
fn outer() {
    fn inner() { x.unwrap(); }
    inner();
}
";
        let fns = parse(src);
        let outer = fns.iter().find(|f| f.name == "outer").unwrap();
        let inner = fns.iter().find(|f| f.name == "inner").unwrap();
        assert!(outer.facts.panics.is_empty(), "{:?}", outer.facts.panics);
        assert_eq!(inner.facts.panics.len(), 1);
    }

    #[test]
    fn guard_param_and_test_flags_carry_over() {
        let src = "#[test]\nfn t() {}\npub fn h(guard: &mut dyn FnMut(u64) -> bool) { loop {} }";
        let fns = parse(src);
        assert!(fns.iter().find(|f| f.name == "t").unwrap().is_test);
        let h = fns.iter().find(|f| f.name == "h").unwrap();
        assert!(h.has_guard_param);
        assert_eq!(h.facts.loops.len(), 1);
    }
}

//! Tuples and the identifiers used to address them.

use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a relation within a catalog (dense, assigned at registration).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RelId(pub u32);

impl RelId {
    /// The id as an index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of a tuple within one relation (dense, insertion order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TupleId(pub u32);

impl TupleId {
    /// The id as an index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Globally addressable tuple: a (relation, tuple) pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TupleRef {
    /// Relation the tuple lives in.
    pub rel: RelId,
    /// Tuple id within that relation.
    pub tid: TupleId,
}

impl TupleRef {
    /// Construct from raw parts.
    #[inline]
    pub fn new(rel: RelId, tid: TupleId) -> Self {
        TupleRef { rel, tid }
    }
}

impl fmt::Display for TupleRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}@r{}", self.tid.0, self.rel.0)
    }
}

/// A stored tuple: just its attribute values, addressed positionally.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Tuple {
    values: Vec<Value>,
}

impl Tuple {
    /// Build a tuple from values.
    pub fn new(values: Vec<Value>) -> Self {
        Tuple { values }
    }

    /// Number of values.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Value at position `i`.
    #[inline]
    pub fn get(&self, i: usize) -> &Value {
        &self.values[i]
    }

    /// All values.
    pub fn values(&self) -> &[Value] {
        &self.values
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl<const N: usize> From<[Value; N]> for Tuple {
    fn from(values: [Value; N]) -> Self {
        Tuple::new(values.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuple_accessors() {
        let t = Tuple::new(vec![Value::Int(1), Value::str("a")]);
        assert_eq!(t.arity(), 2);
        assert_eq!(t.get(0), &Value::Int(1));
        assert_eq!(t.get(1).as_str(), Some("a"));
        assert_eq!(t.values().len(), 2);
    }

    #[test]
    fn tuple_display() {
        let t = Tuple::new(vec![Value::Int(1), Value::str("x"), Value::Null]);
        assert_eq!(t.to_string(), "(1, x, NULL)");
    }

    #[test]
    fn tuple_from_array() {
        let t: Tuple = [Value::Int(1), Value::Int(2)].into();
        assert_eq!(t.arity(), 2);
    }

    #[test]
    fn ids_are_ordered_and_display() {
        let a = TupleRef::new(RelId(0), TupleId(3));
        let b = TupleRef::new(RelId(1), TupleId(0));
        assert!(a < b);
        assert_eq!(a.to_string(), "t3@r0");
        assert_eq!(RelId(5).index(), 5);
        assert_eq!(TupleId(7).index(), 7);
    }
}

//! Attribute-value expansion (paper §2.1).
//!
//! DISTINCT treats "each value of each attribute (except keys and
//! foreign-keys) as an individual tuple": two proceedings sharing the same
//! `publisher` value should be linked through that value just as two papers
//! sharing a venue are linked through the venue tuple.
//!
//! [`expand_values`] rewrites a catalog so that every data attribute of
//! every relation becomes a foreign key to a new *pseudo-relation* holding
//! the attribute's distinct values (the value itself is the key). After
//! expansion, one uniform join-path machinery covers both tuple linkage and
//! attribute-value sharing.

use crate::catalog::Catalog;
use crate::error::Result;
use crate::schema::{AttrRole, RelationSchema};
use crate::tuple::Tuple;
use crate::value::Value;

/// Report of one expanded attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExpandedAttr {
    /// Original relation name.
    pub relation: String,
    /// Original attribute name.
    pub attribute: String,
    /// Name of the pseudo-relation created for its values.
    pub pseudo_relation: String,
    /// Number of distinct non-null values.
    pub distinct_values: usize,
}

/// Result of [`expand_values`]: the rewritten catalog plus a report.
#[derive(Debug, Clone)]
pub struct Expanded {
    /// The rewritten, finalized catalog. Original relations keep their ids
    /// (they are registered first, in the original order); pseudo-relations
    /// follow.
    pub catalog: Catalog,
    /// One entry per expanded attribute.
    pub expanded: Vec<ExpandedAttr>,
}

/// Name of the pseudo-relation holding values of `relation.attribute`.
pub fn pseudo_relation_name(relation: &str, attribute: &str) -> String {
    format!("{relation}#{attribute}")
}

/// Rewrite `catalog` so every data attribute becomes a foreign key into a
/// pseudo-relation of its distinct values.
///
/// The input catalog does not need to be finalized; the output is finalized
/// with integrity checking on (expansion cannot dangle by construction, and
/// original foreign keys are revalidated).
pub fn expand_values(catalog: &Catalog) -> Result<Expanded> {
    let mut out = Catalog::new();
    let mut expanded = Vec::new();

    // Pass 1: register original relations with data attrs rewritten to FKs.
    for (_, rel) in catalog.relations() {
        let mut attrs = rel.schema().attributes.clone();
        for idx in rel.schema().data_attrs().collect::<Vec<_>>() {
            let pseudo = pseudo_relation_name(rel.name(), &attrs[idx].name);
            attrs[idx].role = AttrRole::ForeignKey { target: pseudo };
        }
        out.add_relation(RelationSchema::new(rel.name(), attrs)?)?;
    }

    // Pass 2: register pseudo-relations and collect their value sets.
    for (_, rel) in catalog.relations() {
        for idx in rel.schema().data_attrs() {
            let attr = &rel.schema().attributes[idx];
            let pseudo = pseudo_relation_name(rel.name(), &attr.name);
            let schema = RelationSchema::new(
                pseudo.clone(),
                vec![crate::schema::Attribute::key("value", attr.ty)],
            )?;
            out.add_relation(schema)?;
            let mut values: Vec<Value> = rel.value_counts(idx).into_keys().collect();
            values.sort();
            let n = values.len();
            for v in values {
                out.insert(&pseudo, Tuple::new(vec![v]))?;
            }
            expanded.push(ExpandedAttr {
                relation: rel.name().to_string(),
                attribute: attr.name.clone(),
                pseudo_relation: pseudo,
                distinct_values: n,
            });
        }
    }

    // Pass 3: copy tuples (values are unchanged — the FK *is* the value).
    for (_, rel) in catalog.relations() {
        for (_, t) in rel.iter() {
            out.insert(rel.name(), t.clone())?;
        }
    }

    out.finalize(true)?;
    Ok(Expanded {
        catalog: out,
        expanded,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::SchemaBuilder;
    use crate::tuple::TupleRef;
    use crate::value::AttrType;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_relation(
            SchemaBuilder::new("Conferences")
                .key("conference", AttrType::Str)
                .data("publisher", AttrType::Str)
                .build()
                .unwrap(),
        )
        .unwrap();
        c.insert(
            "Conferences",
            [Value::str("VLDB"), Value::str("ACM")].into(),
        )
        .unwrap();
        c.insert(
            "Conferences",
            [Value::str("SIGMOD"), Value::str("ACM")].into(),
        )
        .unwrap();
        c.insert(
            "Conferences",
            [Value::str("LNCS-Conf"), Value::str("Springer")].into(),
        )
        .unwrap();
        c.insert("Conferences", [Value::str("Mystery"), Value::Null].into())
            .unwrap();
        c
    }

    #[test]
    fn pseudo_relation_created_with_distinct_values() {
        let ex = expand_values(&catalog()).unwrap();
        assert_eq!(ex.expanded.len(), 1);
        let info = &ex.expanded[0];
        assert_eq!(info.pseudo_relation, "Conferences#publisher");
        assert_eq!(info.distinct_values, 2);
        let pid = ex.catalog.relation_id("Conferences#publisher").unwrap();
        assert_eq!(ex.catalog.relation(pid).len(), 2);
    }

    #[test]
    fn original_relation_ids_preserved() {
        let orig = catalog();
        let ex = expand_values(&orig).unwrap();
        assert_eq!(
            orig.relation_id("Conferences"),
            ex.catalog.relation_id("Conferences")
        );
        // Tuples are copied unchanged.
        let rid = ex.catalog.relation_id("Conferences").unwrap();
        assert_eq!(ex.catalog.relation(rid).len(), 4);
    }

    #[test]
    fn data_attr_becomes_traversable_fk() {
        let ex = expand_values(&catalog()).unwrap();
        let c = &ex.catalog;
        let conf = c.relation_id("Conferences").unwrap();
        let fk = c
            .fk_edges()
            .iter()
            .find(|e| e.label == "Conferences.publisher->Conferences#publisher")
            .unwrap();
        // VLDB -> ACM pseudo-tuple.
        let vldb = c.relation(conf).by_key(&Value::str("VLDB")).unwrap();
        let acm = c.follow_forward(fk.id, TupleRef::new(conf, vldb)).unwrap();
        assert_eq!(c.value(acm, 0).as_str(), Some("ACM"));
        // ACM pseudo-tuple links back to both ACM conferences.
        let back = c.follow_backward(fk.id, acm);
        assert_eq!(back.len(), 2);
    }

    #[test]
    fn null_values_stay_null_and_unlinked() {
        let ex = expand_values(&catalog()).unwrap();
        let c = &ex.catalog;
        let conf = c.relation_id("Conferences").unwrap();
        let fk = c.fk_edges().iter().find(|e| e.from == conf).unwrap();
        let mystery = c.relation(conf).by_key(&Value::str("Mystery")).unwrap();
        assert_eq!(c.follow_forward(fk.id, TupleRef::new(conf, mystery)), None);
    }

    #[test]
    fn expansion_without_data_attrs_is_identity_shaped() {
        let mut c = Catalog::new();
        c.add_relation(
            SchemaBuilder::new("A")
                .key("a", AttrType::Int)
                .build()
                .unwrap(),
        )
        .unwrap();
        c.insert("A", [Value::Int(1)].into()).unwrap();
        let ex = expand_values(&c).unwrap();
        assert!(ex.expanded.is_empty());
        assert_eq!(ex.catalog.relation_count(), 1);
        assert_eq!(ex.catalog.tuple_count(), 1);
    }

    #[test]
    fn multi_relation_expansion() {
        let mut c = catalog();
        c.add_relation(
            SchemaBuilder::new("Proceedings")
                .key("proc", AttrType::Int)
                .fk("conference", AttrType::Str, "Conferences")
                .data("year", AttrType::Int)
                .data("location", AttrType::Str)
                .build()
                .unwrap(),
        )
        .unwrap();
        c.insert(
            "Proceedings",
            [
                Value::Int(1),
                Value::str("VLDB"),
                Value::Int(1997),
                Value::str("Athens"),
            ]
            .into(),
        )
        .unwrap();
        c.insert(
            "Proceedings",
            [
                Value::Int(2),
                Value::str("VLDB"),
                Value::Int(1998),
                Value::str("NYC"),
            ]
            .into(),
        )
        .unwrap();
        let ex = expand_values(&c).unwrap();
        let names: Vec<_> = ex
            .expanded
            .iter()
            .map(|e| e.pseudo_relation.clone())
            .collect();
        assert!(names.contains(&"Conferences#publisher".to_string()));
        assert!(names.contains(&"Proceedings#year".to_string()));
        assert!(names.contains(&"Proceedings#location".to_string()));
        // Original FK preserved alongside new pseudo FKs.
        assert!(ex
            .catalog
            .fk_edges()
            .iter()
            .any(|e| e.label == "Proceedings.conference->Conferences"));
    }
}

//! Reference profiles and per-path pairwise features.
//!
//! A reference's *profile* is one probability propagation per join path:
//! its weighted neighbor-tuple sets (`Prob_P(r → t)`) together with the
//! return probabilities (`Prob_P(t → r)`). All pairwise quantities DISTINCT
//! needs — per-path set resemblance (Definition 2) and per-path random
//! walk probability (§2.4) — are computed from two profiles without
//! touching the database again.
//!
//! The tuple identified by the reference's own name (its author tuple) is
//! removed from every per-path map: resembling references share it by
//! definition, so it carries no distinguishing signal but would otherwise
//! contribute a large constant resemblance along the coauthor path.

use crate::paths::PathSet;
use relgraph::{directed_walk, LinkGraph, Propagation, Resemblance, WeightedSet};
use relstore::{Catalog, TupleRef};

/// Per-path propagation results for one reference.
#[derive(Debug, Clone)]
pub struct Profile {
    /// The reference this profile describes.
    pub reference: TupleRef,
    /// One propagation per path (order matches the [`PathSet`]).
    pub props: Vec<Propagation>,
    /// Forward maps as weighted sets, for resemblance computation.
    pub sets: Vec<WeightedSet>,
    /// True for zero-mass placeholders fabricated when a control limit cut
    /// profiling short (see [`empty_profile`]). Placeholders must never
    /// enter the profile cache: a later, unrestricted run has to recompute
    /// the real profile instead of reusing the empty one.
    pub placeholder: bool,
}

impl Profile {
    /// Number of paths profiled.
    pub fn path_count(&self) -> usize {
        self.props.len()
    }

    /// Total neighbor tuples across all paths (diagnostics).
    pub fn neighbor_total(&self) -> usize {
        self.props.iter().map(Propagation::neighbor_count).sum()
    }
}

/// Build the profile of one reference.
pub fn build_profile(
    graph: &LinkGraph,
    catalog: &Catalog,
    paths: &PathSet,
    reference: TupleRef,
) -> Profile {
    build_profile_guarded(graph, catalog, paths, reference, &mut |_| true)
        // distinct-lint: allow(D002, reason="guard is the constant true closure above, so profiling can never be abandoned")
        .expect("permissive guard never stops profiling")
}

/// Like [`build_profile`], but cooperatively interruptible: `guard` is
/// charged per propagation level (see
/// [`relgraph::propagate_blocked_guarded`]) and returning `false` abandons
/// the profile — `None` comes back and no partial per-path maps escape.
pub fn build_profile_guarded(
    graph: &LinkGraph,
    catalog: &Catalog,
    paths: &PathSet,
    reference: TupleRef,
    guard: &mut dyn FnMut(u64) -> bool,
) -> Option<Profile> {
    // Block the tuple identified by the reference's own name: linkage
    // routed through the shared name tuple (at any path level) is vacuous
    // for distinguishing resembling references.
    let blocked: Vec<relgraph::NodeId> = catalog
        .follow_forward(paths.ref_fk, reference)
        .map(|t| graph.node(t))
        .into_iter()
        .collect();
    let mut props = Vec::with_capacity(paths.paths.len());
    let mut sets = Vec::with_capacity(paths.paths.len());
    for path in &paths.paths {
        let prop =
            relgraph::propagate_blocked_guarded(graph, catalog, path, reference, &blocked, guard)?;
        sets.push(WeightedSet::from_map(prop.forward.clone()));
        props.push(prop);
    }
    Some(Profile {
        reference,
        props,
        sets,
        placeholder: false,
    })
}

/// A placeholder profile with no propagated mass: every pairwise feature
/// against it is zero, so under a positive `min_sim` its reference stays a
/// singleton. Degraded resolution uses these for references whose real
/// profiles could not be computed before the budget ran out.
pub fn empty_profile(paths: &PathSet, reference: TupleRef) -> Profile {
    let n = paths.len();
    Profile {
        reference,
        props: vec![Propagation::default(); n],
        sets: vec![WeightedSet::from_map(Default::default()); n],
        placeholder: true,
    }
}

/// Per-path set resemblance between two profiles (Definition 2), via the
/// exact kernel — the canonical reference the pruned engine must match
/// bit for bit.
pub fn resemblance_features(a: &Profile, b: &Profile) -> Vec<f64> {
    resemblance_features_with(&Resemblance::Exact, a, b)
}

/// Per-path set resemblance under an explicit [`Resemblance`] kernel.
/// Every kernel computes the same function (losslessness contract), so
/// this exists for pair-at-a-time callers that want the sketch pre-check;
/// the similarity stage batches the pruned path through arenas instead.
pub fn resemblance_features_with(kernel: &Resemblance, a: &Profile, b: &Profile) -> Vec<f64> {
    debug_assert_eq!(a.path_count(), b.path_count());
    a.sets
        .iter()
        .zip(&b.sets)
        .map(|(x, y)| kernel.weighted(x, y))
        .collect()
}

/// Per-path symmetrized random walk probability between two profiles.
pub fn walk_features(a: &Profile, b: &Profile) -> Vec<f64> {
    debug_assert_eq!(a.path_count(), b.path_count());
    a.props
        .iter()
        .zip(&b.props)
        .map(|(x, y)| 0.5 * (directed_walk(x, y) + directed_walk(y, x)))
        .collect()
}

/// Per-path *directed* walk probability `a → b` (used for the collective
/// cluster measure, which is directional before symmetrization).
pub fn directed_walk_features(a: &Profile, b: &Profile) -> Vec<f64> {
    debug_assert_eq!(a.path_count(), b.path_count());
    a.props
        .iter()
        .zip(&b.props)
        .map(|(x, y)| directed_walk(x, y))
        .collect()
}

/// Weighted sum of a feature vector: `Σ w_i · f_i`.
pub fn weighted_sum(features: &[f64], weights: &[f64]) -> f64 {
    debug_assert_eq!(features.len(), weights.len());
    features.iter().zip(weights).map(|(f, w)| f * w).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{AmbiguousSpec, DblpDataset, World, WorldConfig};

    struct Fixture {
        catalog: Catalog,
        graph: LinkGraph,
        paths: PathSet,
        truth_refs: Vec<TupleRef>,
        truth_labels: Vec<usize>,
    }

    fn fixture() -> Fixture {
        let mut config = WorldConfig::tiny(4);
        config.ambiguous = vec![AmbiguousSpec::new("Wei Wang", vec![8, 6])];
        let d: DblpDataset = datagen::to_catalog(&World::generate(config)).unwrap();
        let ex = relstore::expand_values(&d.catalog).unwrap();
        let paths = PathSet::build(&ex.catalog, "Publish", "author", 3).unwrap();
        let graph = LinkGraph::build(&ex.catalog);
        Fixture {
            catalog: ex.catalog,
            graph,
            paths,
            truth_refs: d.truths[0].refs.clone(),
            truth_labels: d.truths[0].labels.clone(),
        }
    }

    #[test]
    fn profile_shape() {
        let f = fixture();
        let p = build_profile(&f.graph, &f.catalog, &f.paths, f.truth_refs[0]);
        assert_eq!(p.path_count(), f.paths.len());
        assert!(p.neighbor_total() > 0);
        assert_eq!(p.reference, f.truth_refs[0]);
    }

    #[test]
    fn own_identity_tuple_is_excluded() {
        let f = fixture();
        let r = f.truth_refs[0];
        let own = f.catalog.follow_forward(f.paths.ref_fk, r).unwrap();
        let own_node = f.graph.node(own);
        let p = build_profile(&f.graph, &f.catalog, &f.paths, r);
        for prop in &p.props {
            assert!(!prop.forward.contains_key(&own_node));
            assert!(!prop.backward.contains_key(&own_node));
        }
    }

    #[test]
    fn feature_vectors_are_path_aligned_and_bounded() {
        let f = fixture();
        let a = build_profile(&f.graph, &f.catalog, &f.paths, f.truth_refs[0]);
        let b = build_profile(&f.graph, &f.catalog, &f.paths, f.truth_refs[1]);
        let r = resemblance_features(&a, &b);
        let w = walk_features(&a, &b);
        assert_eq!(r.len(), f.paths.len());
        assert_eq!(w.len(), f.paths.len());
        for &v in r.iter().chain(&w) {
            assert!((0.0..=1.0 + 1e-9).contains(&v), "feature {v}");
        }
    }

    #[test]
    fn features_are_symmetric() {
        let f = fixture();
        let a = build_profile(&f.graph, &f.catalog, &f.paths, f.truth_refs[0]);
        let b = build_profile(&f.graph, &f.catalog, &f.paths, f.truth_refs[2]);
        assert_eq!(resemblance_features(&a, &b), resemblance_features(&b, &a));
        let w_ab = walk_features(&a, &b);
        let w_ba = walk_features(&b, &a);
        for (x, y) in w_ab.iter().zip(&w_ba) {
            assert!((x - y).abs() < 1e-15);
        }
    }

    #[test]
    fn directed_walks_symmetrize_to_walk_features() {
        let f = fixture();
        let a = build_profile(&f.graph, &f.catalog, &f.paths, f.truth_refs[0]);
        let b = build_profile(&f.graph, &f.catalog, &f.paths, f.truth_refs[1]);
        let ab = directed_walk_features(&a, &b);
        let ba = directed_walk_features(&b, &a);
        let sym = walk_features(&a, &b);
        for i in 0..sym.len() {
            assert!((0.5 * (ab[i] + ba[i]) - sym[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn same_entity_pairs_are_more_similar_on_average() {
        // The structural heart of the method: references to the same real
        // entity share more context than references to different entities
        // behind the same name.
        let f = fixture();
        let profiles: Vec<Profile> = f
            .truth_refs
            .iter()
            .map(|&r| build_profile(&f.graph, &f.catalog, &f.paths, r))
            .collect();
        let mut same = Vec::new();
        let mut diff = Vec::new();
        for i in 0..profiles.len() {
            for j in (i + 1)..profiles.len() {
                let total: f64 = resemblance_features(&profiles[i], &profiles[j])
                    .iter()
                    .sum();
                if f.truth_labels[i] == f.truth_labels[j] {
                    same.push(total);
                } else {
                    diff.push(total);
                }
            }
        }
        // Unweighted sums include deliberately uninformative paths
        // (publisher, location), so the gap is modest here; the SVM
        // weighting is what sharpens it in the full pipeline.
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&same) > 1.3 * mean(&diff),
            "same-entity mean {} vs cross-entity mean {}",
            mean(&same),
            mean(&diff)
        );
    }

    #[test]
    fn kernel_selection_is_invisible_in_the_features() {
        let f = fixture();
        let a = build_profile(&f.graph, &f.catalog, &f.paths, f.truth_refs[0]);
        let b = build_profile(&f.graph, &f.catalog, &f.paths, f.truth_refs[3]);
        let exact = resemblance_features_with(&Resemblance::Exact, &a, &b);
        let pruned = resemblance_features_with(&Resemblance::default(), &a, &b);
        assert_eq!(exact, resemblance_features(&a, &b));
        for (x, y) in exact.iter().zip(&pruned) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn weighted_sum_helper() {
        assert_eq!(weighted_sum(&[1.0, 2.0, 3.0], &[0.5, 0.0, 1.0]), 3.5);
        assert_eq!(weighted_sum(&[], &[]), 0.0);
    }
}

//! Crash-safe resumable resolution: a durable run is killed at an
//! arbitrary checkpoint write, then resumed from its run directory on a
//! fresh engine — and lands on exactly the answer of an uninterrupted
//! resolve. See DESIGN.md §14 and `tests/resume_chaos.rs` for the
//! exhaustive sweep.
//!
//! Run: `cargo run --release --example durable_resume`

use datagen::{AmbiguousSpec, World, WorldConfig};
use distinct::{Distinct, DistinctConfig, ResolveRequest, RunOptions};
use relstore::{FaultKind, FaultPlan, FaultyVfs, StdVfs};

fn main() {
    // A small world with one planted three-way ambiguous name.
    let mut config = WorldConfig::tiny(21);
    config.ambiguous = vec![AmbiguousSpec::new("Wei Wang", vec![10, 8, 5])];
    let dataset = datagen::to_catalog(&World::generate(config)).expect("valid world");
    let engine = Distinct::prepare(
        &dataset.catalog,
        "Publish",
        "author",
        DistinctConfig::default(),
    )
    .expect("prepare");
    let refs = engine.references_of("Wei Wang");

    // The uninterrupted answer, for comparison.
    let cold = engine.resolve(&ResolveRequest::new(&refs));
    let k = cold.clustering.labels.iter().copied().max().unwrap_or(0) + 1;
    println!("plain resolve: {} references -> {} people", refs.len(), k);

    // A durable run writes staged checkpoints into a run directory.
    let run_dir = std::env::temp_dir().join(format!("durable_resume_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&run_dir);
    let req = ResolveRequest::new(&refs).resume(&run_dir);
    let opts = RunOptions {
        chunk_size: 8, // 23 refs -> 3 profile chunks
        ..Default::default()
    };

    // Crash it: the third write (a profile chunk) tears mid-write and the
    // retry budget is exhausted, as if the process had been killed.
    let fatal = RunOptions {
        max_retries: 0,
        ..opts.clone()
    };
    let mut vfs = FaultyVfs::new(FaultPlan::new(42).with_fault(3, FaultKind::Torn));
    let err = engine
        .resolve_durable_with(&req, &mut vfs, &fatal)
        .expect_err("the torn write must surface");
    println!("injected crash at write #3: {err}");

    // Resume on a cold engine: committed chunks are restored, the torn
    // file was never renamed over a checkpoint, and the answer matches.
    let resumed = engine
        .resolve_durable_with(&req, &mut StdVfs, &opts)
        .expect("resume");
    println!(
        "resumed: {} profiles restored, {} chunks committed, complete = {}",
        resumed.run.profiles_restored,
        resumed.run.chunks_committed,
        resumed.outcome.is_complete()
    );
    assert_eq!(
        resumed.outcome.clustering.labels, cold.clustering.labels,
        "resume must be bit-identical to the uninterrupted resolve"
    );

    // Re-running the same request is now a pure replay: everything is
    // restored from `clustering.ck`, nothing is recomputed.
    let replay = engine.resolve_durable(&req).expect("replay");
    assert!(replay.run.clustering_restored);
    assert_eq!(replay.outcome.clustering.labels, cold.clustering.labels);
    println!("replay: clustering restored from disk, zero recomputation");

    let _ = std::fs::remove_dir_all(&run_dir);
    println!("durable resume is invisible in the answer ({k} people either way)");
}

//! Experiment A1 — ablations of the design choices DESIGN.md calls out:
//!
//! 1. geometric vs arithmetic composition of the two cluster measures;
//! 2. DISTINCT's Average-Link + collective-walk cluster similarity vs the
//!    classic single / complete / average linkages over the same leaf
//!    similarities (the §4.1 argument);
//! 3. connection-strength-weighted Jaccard (Definition 2) vs unweighted
//!    Jaccard over the same neighbor sets.
//!
//! Every arm gets its best `min-sim` from the grid so differences reflect
//! the design choice, not a threshold.
//!
//! Run: `cargo run --release -p distinct-bench --bin exp_ablation`

use cluster::{agglomerate, Linkage, MatrixMerger};
use distinct::{min_sim_grid, weighted_sum, CompositeMode, Distinct, DistinctConfig, Profile};
use distinct_bench::{build_dataset, sweep_best_min_sim, STANDARD_SEED};
use eval::{f3, f4, Align, PairCounts, Table};

/// Mean accuracy and f-measure of a matrix-linkage clustering over all
/// names, sweeping min-sim.
fn sweep_matrix(
    per_name: &[(Vec<Vec<f64>>, Vec<usize>)],
    linkage: Linkage,
    grid: &[f64],
) -> (f64, f64, f64) {
    let mut best: Option<(f64, f64, f64)> = None;
    for &min_sim in grid {
        let mut acc_sum = 0.0;
        let mut f_sum = 0.0;
        for (matrix, gold) in per_name {
            let mut merger = MatrixMerger::new(matrix.clone(), linkage);
            let c = agglomerate(gold.len(), &mut merger, min_sim);
            let counts = PairCounts::from_labels(gold, &c.labels);
            acc_sum += counts.accuracy();
            f_sum += counts.scores().f_measure;
        }
        let acc = acc_sum / per_name.len() as f64;
        let f = f_sum / per_name.len() as f64;
        if best.is_none_or(|(_, ba, _)| acc > ba) {
            best = Some((min_sim, acc, f));
        }
    }
    best.expect("non-empty grid")
}

fn main() {
    let dataset = build_dataset(STANDARD_SEED);
    let grid = min_sim_grid();
    let mut table = Table::new(
        &["Arm", "best min-sim", "accuracy", "f-measure"],
        &[Align::Left, Align::Right, Align::Right, Align::Right],
    )
    .with_title("A1. Ablations of DISTINCT's design choices (standard world)");

    // --- 1. Composite mode --------------------------------------------------
    for (label, composite) in [
        (
            "composite: geometric mean (paper)",
            CompositeMode::Geometric,
        ),
        ("composite: arithmetic mean", CompositeMode::Arithmetic),
    ] {
        let config = DistinctConfig {
            composite,
            ..Default::default()
        };
        let mut engine =
            Distinct::prepare(&dataset.catalog, "Publish", "author", config).expect("prepare");
        engine.train().expect("train");
        let (min_sim, results) = sweep_best_min_sim(&engine, &dataset.truths, &grid);
        table.row(vec![
            label.to_string(),
            f4(min_sim),
            f3(distinct_bench::mean_accuracy(&results)),
            f3(distinct_bench::mean_f(&results)),
        ]);
        eprintln!("done: {label}");
    }

    // One trained engine supplies profiles for the matrix-based arms.
    let mut engine = Distinct::prepare(
        &dataset.catalog,
        "Publish",
        "author",
        DistinctConfig::default(),
    )
    .expect("prepare");
    engine.train().expect("train");
    let weights = engine.weights().clone();

    // Leaf matrices per name: composite similarity, weighted resemblance,
    // unweighted resemblance.
    let mut composite_mats = Vec::new();
    let mut weighted_mats = Vec::new();
    let mut unweighted_mats = Vec::new();
    for truth in &dataset.truths {
        let profiles: Vec<Profile> = truth
            .refs
            .iter()
            .map(|&r| (*engine.profile(r)).clone())
            .collect();
        let n = profiles.len();
        let mut comp = vec![vec![0.0; n]; n];
        let mut wj = vec![vec![0.0; n]; n];
        let mut uj = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in (i + 1)..n {
                let r = weighted_sum(
                    &distinct::resemblance_features(&profiles[i], &profiles[j]),
                    &weights.resem,
                );
                let w = weighted_sum(
                    &distinct::walk_features(&profiles[i], &profiles[j]),
                    &weights.walk,
                );
                let u: f64 = profiles[i]
                    .sets
                    .iter()
                    .zip(&profiles[j].sets)
                    .zip(&weights.resem)
                    .map(|((a, b), &wt)| wt * a.jaccard_unweighted(b))
                    .sum();
                comp[i][j] = (r * w).sqrt();
                comp[j][i] = comp[i][j];
                wj[i][j] = r;
                wj[j][i] = r;
                uj[i][j] = u;
                uj[j][i] = u;
            }
        }
        composite_mats.push((comp, truth.labels.clone()));
        weighted_mats.push((wj, truth.labels.clone()));
        unweighted_mats.push((uj, truth.labels.clone()));
    }
    eprintln!("leaf matrices built");

    // --- 2. Cluster-similarity definition ----------------------------------
    let (min_sim, results) = sweep_best_min_sim(&engine, &dataset.truths, &grid);
    table.row(vec![
        "cluster sim: Average-Link x collective walk (paper)".to_string(),
        f4(min_sim),
        f3(distinct_bench::mean_accuracy(&results)),
        f3(distinct_bench::mean_f(&results)),
    ]);
    for (label, linkage) in [
        (
            "cluster sim: Single-Link on composite leaves",
            Linkage::Single,
        ),
        (
            "cluster sim: Complete-Link on composite leaves",
            Linkage::Complete,
        ),
        (
            "cluster sim: Average-Link on composite leaves",
            Linkage::Average,
        ),
    ] {
        let (min_sim, acc, f) = sweep_matrix(&composite_mats, linkage, &grid);
        table.row(vec![label.to_string(), f4(min_sim), f3(acc), f3(f)]);
        eprintln!("done: {label}");
    }

    // --- 3. Weighted vs unweighted Jaccard (resemblance-only, avg link) ----
    for (label, mats) in [
        (
            "resemblance: strength-weighted Jaccard (paper)",
            &weighted_mats,
        ),
        ("resemblance: unweighted Jaccard", &unweighted_mats),
    ] {
        let (min_sim, acc, f) = sweep_matrix(mats, Linkage::Average, &grid);
        table.row(vec![label.to_string(), f4(min_sim), f3(acc), f3(f)]);
        eprintln!("done: {label}");
    }

    println!("{}", table.render());
}

//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the small slice of `rand` it actually uses: a seedable deterministic
//! generator ([`rngs::StdRng`]), the [`Rng`] extension trait (`gen`,
//! `gen_range`, `gen_bool`), and [`seq::SliceRandom`] (`shuffle`,
//! `choose`). The core generator is xoshiro256++ seeded through SplitMix64,
//! which passes the statistical needs of the datagen distribution tests.
//!
//! Streams differ from upstream `rand` (which uses ChaCha12 for `StdRng`),
//! so seeds produce different — but still deterministic — sequences.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Seed type (fixed-width byte array upstream; mirrored here).
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` seed (SplitMix64-expanded).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types that [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Draw one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for i64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types with uniform sampling over a range.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform draw from `[low, high)`; `high` is exclusive.
    fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;

    /// Uniform draw from `[low, high]`; `high` is inclusive.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

/// Debiased uniform integer in `[0, span)` via 128-bit multiply.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Lemire's method with rejection for exact uniformity.
    let mut x = rng.next_u64();
    let mut m = (x as u128) * (span as u128);
    let mut lo = m as u64;
    if lo < span {
        let t = span.wrapping_neg() % span;
        while lo < t {
            x = rng.next_u64();
            m = (x as u128) * (span as u128);
            lo = m as u64;
        }
    }
    (m >> 64) as u64
}

macro_rules! impl_uniform_int {
    ($($t:ty => $u:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as $u).wrapping_sub(low as $u) as u64;
                low.wrapping_add(uniform_u64(rng, span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let span = (high as $u).wrapping_sub(low as $u) as u64;
                if span == u64::MAX {
                    return <$t>::draw_full(rng);
                }
                low.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

trait DrawFull {
    fn draw_full<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}
macro_rules! impl_draw_full {
    ($($t:ty),*) => {$(
        impl DrawFull for $t {
            fn draw_full<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_draw_full!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl_uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => u64, i16 => u64, i32 => u64, i64 => u64, isize => u64,
);

impl SampleUniform for f64 {
    fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        let u = f64::draw(rng);
        let v = low + (high - low) * u;
        // Floating rounding can land exactly on `high`; clamp just inside.
        if v >= high {
            high - (high - low) * f64::EPSILON
        } else {
            v
        }
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low <= high, "gen_range: empty range");
        low + (high - low) * f64::draw(rng)
    }
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a value uniformly from this range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_exclusive(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A random value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// A uniform value in `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not a probability");
        f64::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic seedable generator (xoshiro256++ here; upstream uses
    /// ChaCha12 — streams differ, determinism and quality hold).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // An all-zero state would be a fixed point; nudge it.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xBB67_AE85_84CA_A73B,
                    0x3C6E_F372_FE94_F82B,
                ];
            }
            StdRng { s }
        }
    }
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling and choosing.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_floats_in_range_and_spread() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut lo = 0usize;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            if u < 0.5 {
                lo += 1;
            }
        }
        assert!((4_000..6_000).contains(&lo), "half-mass {lo}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1_000 {
            let v = rng.gen_range(3..7);
            assert!((3..7).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(-0.5..0.5);
            assert!((-0.5..0.5).contains(&f));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "bucket {c}");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
        assert!([1u32, 2, 3].choose(&mut rng).is_some());
        assert!(<[u32] as SliceRandom>::choose(&[], &mut rng).is_none());
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits {hits}");
    }
}

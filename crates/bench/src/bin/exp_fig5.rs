//! Experiment F5 — regenerate **Figure 5**: the clustering of the hardest
//! name ("Wei Wang", 14 entities, 141 references) against ground truth,
//! with split and merge mistakes called out, plus Graphviz DOT output.
//!
//! Run: `cargo run --release -p distinct-bench --bin exp_fig5`

use distinct::{render_name_dot, render_name_report, Distinct, DistinctConfig};
use distinct_bench::{build_dataset, evaluate_name, STANDARD_SEED};

fn main() {
    let dataset = build_dataset(STANDARD_SEED);
    let config = DistinctConfig::default();
    let min_sim = config.min_sim;
    let mut engine =
        Distinct::prepare(&dataset.catalog, "Publish", "author", config).expect("prepare");
    engine.train().expect("train");

    let truth = dataset
        .truths
        .iter()
        .find(|t| t.name == "Wei Wang")
        .expect("Wei Wang planted");
    let result = evaluate_name(&engine, truth, min_sim);

    // Entity display labels in the spirit of Fig. 5's affiliations.
    let entity_names: Vec<String> = (0..truth.entity_count())
        .map(|k| {
            let refs = truth.labels.iter().filter(|&&l| l == k).count();
            format!("Wei Wang #{k} ({refs} refs)")
        })
        .collect();

    println!(
        "{}",
        render_name_report(
            "Wei Wang",
            &truth.labels,
            &result.labels,
            Some(&entity_names)
        )
    );
    println!("--- Graphviz DOT (pipe into `dot -Tsvg`) ---");
    println!(
        "{}",
        render_name_dot("Wei Wang", &truth.labels, &result.labels)
    );
}

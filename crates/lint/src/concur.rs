//! Determinism & concurrency dataflow passes (D106–D109) plus the
//! shared-state facts registry behind `distinct-lint facts`.
//!
//! All four passes run on statement-level CFGs ([`crate::cfg`]) with the
//! forward may/must framework ([`crate::dataflow`]), against the same
//! call graph the D101–D104 passes use:
//!
//! - **D106 guard liveness** — a lock guard must not be *may-live* at any
//!   statement that submits to the exec pool, touches a channel, or calls
//!   a function that transitively does. Gen at the acquiring statement,
//!   kill at `drop(binding)`; the guard's lexical scope bounds the walk.
//! - **D107 determinism taint** — values born from unordered hash
//!   iteration, thread-count reads, or channel-arrival order must not
//!   reach f64 accumulation, `ExecReport`/`ParStats` counters, checkpoint
//!   writes, or clustering inputs. A `.sort*()` on the carrying binding
//!   kills the taint (the ordered-commit discipline). Subsumes the
//!   syntactic D001 scan under `--semantic`.
//! - **D108 shared-state registry** — every interior-mutability cell
//!   (Mutex/RwLock/atomics/Cell/RefCell) declared as a field or static
//!   and reachable from the resolve/train/apply_updates spine must carry
//!   a `// distinct-lint: shared(<merge-discipline>)` declaration.
//! - **D109 send-across-commit** — closures handed to the exec pool must
//!   not mutate captured state; results travel through return values or
//!   channel sends and are committed in input order by the pool.

use crate::callgraph::CallGraph;
use crate::catalog::{Finding, LintId};
use crate::cfg::Cfg;
use crate::dataflow::{forward, GenKill, Join};
use crate::lexer::TokKind;
use crate::model::{FileCtx, FnSpan};
use crate::parse::{is_keyword, FnDef};
use crate::suppress;
use std::collections::{BTreeMap, BTreeSet};

/// Calls that hand work (and captured state) to another thread: the exec
/// pool primitives plus raw `spawn` (already fenced by D003, but a guard
/// held across one is a D106 regardless of who spawned).
const POOL_SUBMITS: [&str; 4] = ["par_map_guarded", "par_map_indexed", "par_chunks", "spawn"];

/// Run every concurrency pass. Called from [`crate::callgraph::run_semantic`].
pub fn run(graph: &CallGraph, ctxs: &[FileCtx]) -> Vec<Finding> {
    let by_path: BTreeMap<&str, &FileCtx> = ctxs.iter().map(|c| (c.path.as_str(), c)).collect();
    let b = boundaries(graph);
    let mut out = Vec::new();
    out.extend(d106_guard_liveness(graph, &by_path, &b));
    out.extend(d107_determinism_taint(graph, &by_path));
    out.extend(d108_shared_registry(graph, ctxs));
    out.extend(d109_send_across_commit(graph, &by_path));
    out
}

/// The (ctx, span) pair backing a symbol-table function, matched by file
/// path plus the `fn` keyword's line.
pub(crate) fn site<'a>(
    by_path: &BTreeMap<&str, &'a FileCtx>,
    f: &FnDef,
) -> Option<(&'a FileCtx, &'a FnSpan)> {
    let ctx = by_path.get(f.file.as_str())?;
    let span = ctx
        .fns
        .iter()
        .find(|s| s.line == f.line && s.name == f.name)?;
    Some((*ctx, span))
}

// ----------------------------------------------------- pool boundaries --

/// Which functions (transitively) hit a pool/channel boundary, what makes
/// each a boundary directly, and a witness callee for transitive ones.
struct Boundaries {
    reaches: Vec<bool>,
    direct: Vec<Option<String>>,
    via: Vec<Option<usize>>,
}

fn boundaries(graph: &CallGraph) -> Boundaries {
    let ws = &graph.ws;
    let n = ws.fns.len();
    let mut direct: Vec<Option<String>> = vec![None; n];
    for (i, f) in ws.fns.iter().enumerate() {
        if let Some(c) = f
            .facts
            .calls
            .iter()
            .find(|c| POOL_SUBMITS.contains(&c.name.as_str()))
        {
            direct[i] = Some(format!("`{}`", c.name));
        } else if !f.facts.sends.is_empty() {
            direct[i] = Some("a channel send".into());
        } else if !f.facts.recvs.is_empty() {
            direct[i] = Some("a channel recv".into());
        }
    }
    let mut reaches: Vec<bool> = direct.iter().map(|d| d.is_some()).collect();
    let mut via: Vec<Option<usize>> = vec![None; n];
    // Callee→caller fixpoint; flags only flip false→true, so it terminates.
    loop {
        let mut changed = false;
        for i in 0..n {
            if reaches[i] {
                continue;
            }
            if let Some(&j) = graph.edges[i].iter().find(|&&j| reaches[j]) {
                reaches[i] = true;
                via[i] = Some(j);
                changed = true;
            }
        }
        if !changed {
            return Boundaries {
                reaches,
                direct,
                via,
            };
        }
    }
}

/// Human-readable call chain from `j` down to the concrete boundary.
fn boundary_trail(graph: &CallGraph, b: &Boundaries, j: usize) -> String {
    let mut names = Vec::new();
    let mut cur = j;
    for _ in 0..8 {
        names.push(graph.ws.qual(cur));
        match (&b.direct[cur], b.via[cur]) {
            (Some(what), _) => return format!("{} ({what})", names.join(" → ")),
            (None, Some(next)) => cur = next,
            (None, None) => break,
        }
    }
    format!("{} (a pool boundary)", names.join(" → "))
}

// ------------------------------------------------------------ D106 --

fn d106_guard_liveness(
    graph: &CallGraph,
    by_path: &BTreeMap<&str, &FileCtx>,
    b: &Boundaries,
) -> Vec<Finding> {
    let ws = &graph.ws;
    let mut out = Vec::new();
    for (i, f) in ws.fns.iter().enumerate() {
        if f.is_test || f.facts.locks.is_empty() {
            continue;
        }
        let Some((ctx, span)) = site(by_path, f) else {
            continue;
        };
        let cfg = Cfg::build(ctx, span);
        for lock in &f.facts.locks {
            match &lock.binding {
                None => {
                    // Inline guard: the temporary lives to the end of its
                    // full statement, so the whole statement is suspect.
                    let (lo, hi) = match cfg.stmt_of(lock.idx) {
                        Some(s) => (cfg.stmts[s].lo, cfg.stmts[s].hi),
                        None => (lock.idx, lock.hold_end + 1),
                    };
                    if let Some(hit) = boundary_in_range(graph, b, i, f, lo, hi) {
                        out.push(Finding {
                            id: LintId::D106,
                            file: f.file.clone(),
                            line: lock.line,
                            message: format!(
                                "temporary guard on `{}` in `{}` is live across {hit}; \
                                 bind and drop it before the pool boundary",
                                lock.label,
                                ws.qual(i)
                            ),
                        });
                    }
                }
                Some(binding) => {
                    let Some(gen_stmt) = cfg.stmt_of(lock.idx) else {
                        continue;
                    };
                    let scope_end = enclosing_block_end(ctx, span, lock.idx);
                    let n = cfg.stmts.len();
                    let mut gk = GenKill::new(n);
                    gk.gen[gen_stmt].insert(binding.clone());
                    for c in &f.facts.calls {
                        if c.name == "drop" && !c.is_method && drops_binding(ctx, c.idx, binding) {
                            if let Some(s) = cfg.stmt_of(c.idx) {
                                gk.kill[s].insert(binding.clone());
                            }
                        }
                    }
                    let flow = forward(&cfg, &gk, Join::May);
                    for s in 0..n {
                        let st = &cfg.stmts[s];
                        if st.lo >= scope_end || !flow.during(s).contains(binding) {
                            continue;
                        }
                        // The guard dies inside a killing statement; don't
                        // charge the drop itself.
                        if gk.kill[s].contains(binding) && !gk.gen[s].contains(binding) {
                            continue;
                        }
                        if let Some(hit) = boundary_in_range(graph, b, i, f, st.lo, st.hi) {
                            out.push(Finding {
                                id: LintId::D106,
                                file: f.file.clone(),
                                line: st.line,
                                message: format!(
                                    "guard `{binding}` on `{}` (acquired line {}) in `{}` is \
                                     live across {hit}; drop it before the pool boundary",
                                    lock.label,
                                    lock.line,
                                    ws.qual(i)
                                ),
                            });
                            break; // one finding per guard
                        }
                    }
                }
            }
        }
    }
    out
}

/// Whether `drop(` at call index `idx` names exactly `binding`.
fn drops_binding(ctx: &FileCtx, idx: usize, binding: &str) -> bool {
    let open = ctx.next_code(idx);
    if open >= ctx.toks.len() || !ctx.toks[open].is_punct('(') {
        return false;
    }
    let arg = ctx.next_code(open);
    arg < ctx.toks.len() && ctx.toks[arg].is_ident(binding)
}

/// First pool/channel boundary inside token range `[lo, hi)` of `fns[i]`:
/// a direct send/recv, a direct pool-primitive call, or a call whose
/// callee transitively reaches one. Returns the message fragment.
fn boundary_in_range(
    graph: &CallGraph,
    b: &Boundaries,
    i: usize,
    f: &FnDef,
    lo: usize,
    hi: usize,
) -> Option<String> {
    if f.facts.sends.iter().any(|&(_, idx)| lo <= idx && idx < hi) {
        return Some("a channel send".into());
    }
    if f.facts.recvs.iter().any(|&(_, idx)| lo <= idx && idx < hi) {
        return Some("a channel recv".into());
    }
    for c in &f.facts.calls {
        if c.idx < lo || c.idx >= hi {
            continue;
        }
        if POOL_SUBMITS.contains(&c.name.as_str()) {
            return Some(format!("a `{}` pool submit", c.name));
        }
        for j in graph.ws.resolve(i, c) {
            if b.reaches[j] {
                return Some(format!(
                    "a call to `{}`, which reaches {}",
                    c.name,
                    boundary_trail(graph, b, j)
                ));
            }
        }
    }
    None
}

/// Token index of the `}` closing the innermost block containing `idx`.
fn enclosing_block_end(ctx: &FileCtx, f: &FnSpan, idx: usize) -> usize {
    let mut stack: Vec<usize> = Vec::new();
    let hi = f.end.min(ctx.toks.len());
    let mut k = f.body_start;
    while k < hi {
        let t = &ctx.toks[k];
        if matches!(t.kind, TokKind::Comment | TokKind::DocComment) {
            k += 1;
            continue;
        }
        if t.is_punct('{') {
            stack.push(k);
        } else if t.is_punct('}') {
            if let Some(open) = stack.pop() {
                // Scanning forward, the first close whose open precedes
                // `idx` is the innermost enclosing block.
                if open <= idx && idx < k {
                    return k;
                }
            }
        }
        k += 1;
    }
    f.end
}

// ------------------------------------------------------------ D107 --

fn d107_determinism_taint(graph: &CallGraph, by_path: &BTreeMap<&str, &FileCtx>) -> Vec<Finding> {
    let ws = &graph.ws;
    let mut out = Vec::new();
    let mut hash_cache: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for f in ws.fns.iter() {
        if f.is_test {
            continue;
        }
        let Some((ctx, span)) = site(by_path, f) else {
            continue;
        };
        let hashes = hash_cache
            .entry(ctx.path.clone())
            .or_insert_with(|| file_hash_bindings(ctx))
            .clone();
        taint_fn(ctx, span, f, &hashes, &mut out);
    }
    out.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    out.dedup_by(|a, b| a.file == b.file && a.line == b.line && a.message == b.message);
    out
}

/// Per-function taint: seed sources, propagate through `let`s and `for`
/// headers to a fixpoint, then test each statement's sinks.
fn taint_fn(
    ctx: &FileCtx,
    span: &FnSpan,
    f: &FnDef,
    hashes: &BTreeSet<String>,
    out: &mut Vec<Finding>,
) {
    let cfg = Cfg::build(ctx, span);
    let n = cfg.stmts.len();
    if n == 0 {
        return;
    }
    let chans = channel_bindings(ctx, span);
    let mut gk = GenKill::new(n);
    // Where each tainted binding came from, for the finding message.
    let mut origin: BTreeMap<String, String> = BTreeMap::new();
    // Static kills: `.sort*()` on a binding re-orders it deterministically.
    for s in 0..n {
        let st = &cfg.stmts[s];
        for c in &f.facts.calls {
            if c.idx >= st.lo && c.idx < st.hi && c.is_method && c.name.starts_with("sort") {
                for r in receiver_chain(ctx, c.idx, st.lo) {
                    gk.kill[s].insert(r);
                }
            }
        }
    }
    // Seed direct sources.
    for s in 0..n {
        let st = &cfg.stmts[s];
        if stmt_has_orderer(ctx, st.lo, st.hi) {
            continue;
        }
        let mut src: Option<(u32, String)> = None;
        for c in &f.facts.calls {
            if c.idx < st.lo || c.idx >= st.hi {
                continue;
            }
            if c.is_method && is_unordered_iter(&c.name) {
                let recv = receiver_chain(ctx, c.idx, st.lo);
                if recv.iter().any(|r| hashes.contains(r)) {
                    src = Some((c.line, "unordered hash-map iteration".into()));
                } else if recv.iter().any(|r| chans.contains(r)) {
                    src = Some((c.line, "channel arrival order".into()));
                }
            } else if c.name == "available_parallelism" || c.name == "auto_threads" {
                src = Some((c.line, "the thread count".into()));
            } else if c.name == "var" && names_threads_env(ctx, c.idx) {
                src = Some((c.line, "the thread-count environment override".into()));
            }
        }
        if let Some(&(line, _)) = f
            .facts
            .recvs
            .iter()
            .find(|&&(_, idx)| idx >= st.lo && idx < st.hi)
        {
            src = Some((line, "channel arrival order".into()));
        }
        let Some((src_line, src)) = src else { continue };
        for var in bound_vars(ctx, st.lo, st.hi) {
            origin.entry(var.clone()).or_insert_with(|| src.clone());
            gk.gen[s].insert(var);
        }
        // Single-statement source → sink chains have no binding to track.
        if let Some(sink) = immediate_sink(ctx, f, st.lo, st.hi) {
            out.push(Finding {
                id: LintId::D107,
                file: f.file.clone(),
                line: src_line,
                message: format!(
                    "{src} flows straight into {sink} in `{}`; sort or commit in input order first",
                    f.name
                ),
            });
        }
    }
    // Propagate through assignments until the gen sets stop growing.
    loop {
        let flow = forward(&cfg, &gk, Join::May);
        let mut changed = false;
        for s in 0..n {
            let st = &cfg.stmts[s];
            if stmt_has_orderer(ctx, st.lo, st.hi) {
                continue;
            }
            let live = flow.during(s);
            if live.is_empty() {
                continue;
            }
            let Some(used) = stmt_idents(ctx, st.lo, st.hi)
                .into_iter()
                .find(|t| live.contains(t))
            else {
                continue;
            };
            for var in bound_vars(ctx, st.lo, st.hi) {
                if !gk.gen[s].contains(&var) {
                    let via = format!("`{used}` (from {})", origin_of(&origin, &used));
                    origin.entry(var.clone()).or_insert(via);
                    gk.gen[s].insert(var);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    // Sinks.
    let flow = forward(&cfg, &gk, Join::May);
    for s in 0..n {
        let st = &cfg.stmts[s];
        let live = flow.during(s);
        if live.is_empty() {
            continue;
        }
        let tainted: Vec<String> = stmt_idents(ctx, st.lo, st.hi)
            .into_iter()
            .filter(|t| live.contains(t))
            .collect();
        let Some(first) = tainted.first().cloned() else {
            continue;
        };
        if let Some(sink) = stmt_sink(ctx, span, f, st.lo, st.hi, &tainted) {
            out.push(Finding {
                id: LintId::D107,
                file: f.file.clone(),
                line: st.line,
                message: format!(
                    "`{first}` carries {} and reaches {sink} in `{}`; \
                     sort or commit in input order before folding",
                    origin_of(&origin, &first),
                    f.name
                ),
            });
        }
    }
    // Counter-struct sink: an ExecReport/ParStats literal built from a
    // tainted part. Checked over the literal's brace span because the CFG
    // splits statements at depth-0 braces.
    let len = ctx.toks.len();
    for k in span.body_start..span.end.min(len) {
        let t = &ctx.toks[k];
        if !(t.is_ident("ExecReport") || t.is_ident("ParStats")) {
            continue;
        }
        let open = ctx.next_code(k);
        if open >= len || !ctx.toks[open].is_punct('{') {
            continue;
        }
        let close = crate::cfg::match_brace_from(ctx, open, span.end.min(len));
        for j in open..close {
            let u = &ctx.toks[j];
            if u.kind != TokKind::Ident {
                continue;
            }
            let Some(s) = cfg.stmt_of(j) else { continue };
            if flow.during(s).contains(&u.text) {
                out.push(Finding {
                    id: LintId::D107,
                    file: f.file.clone(),
                    line: u.line,
                    message: format!(
                        "`{}` carries {} into `{}` counters in `{}`; \
                         nondeterministic values must not shape the report",
                        u.text,
                        origin_of(&origin, &u.text),
                        t.text,
                        f.name
                    ),
                });
                break;
            }
        }
    }
}

fn origin_of(origin: &BTreeMap<String, String>, var: &str) -> String {
    origin
        .get(var)
        .cloned()
        .unwrap_or_else(|| "a nondeterministic source".into())
}

fn is_unordered_iter(name: &str) -> bool {
    matches!(
        name,
        "iter" | "iter_mut" | "into_iter" | "keys" | "values" | "values_mut" | "drain" | "try_iter"
    )
}

fn is_hash_type(s: &str) -> bool {
    matches!(s, "HashMap" | "HashSet" | "FxHashMap" | "FxHashSet")
}

/// Whether the statement already imposes an order (sorting, an ordered
/// container) — such statements neither seed nor propagate taint.
fn stmt_has_orderer(ctx: &FileCtx, lo: usize, hi: usize) -> bool {
    ctx.toks[lo..hi.min(ctx.toks.len())].iter().any(|t| {
        t.kind == TokKind::Ident
            && (t.text.starts_with("sort")
                || t.text == "BTreeMap"
                || t.text == "BTreeSet"
                || t.text == "BinaryHeap")
    })
}

/// All identifier texts in a statement (code tokens only).
pub(crate) fn stmt_idents(ctx: &FileCtx, lo: usize, hi: usize) -> Vec<String> {
    ctx.toks[lo..hi.min(ctx.toks.len())]
        .iter()
        .filter(|t| t.kind == TokKind::Ident && !is_keyword(&t.text))
        .map(|t| t.text.clone())
        .collect()
}

/// Variables a statement binds: `let [mut] x`, `let (a, b)`, or a `for`
/// header's loop pattern.
pub(crate) fn bound_vars(ctx: &FileCtx, lo: usize, hi: usize) -> Vec<String> {
    let hi = hi.min(ctx.toks.len());
    let mut vars = Vec::new();
    let mut k = lo;
    while k < hi && matches!(ctx.toks[k].kind, TokKind::Comment | TokKind::DocComment) {
        k += 1;
    }
    if k >= hi {
        return vars;
    }
    let (stop_at_in, start) = if ctx.toks[k].is_ident("let") {
        (false, ctx.next_code(k))
    } else if ctx.toks[k].is_ident("for") {
        (true, ctx.next_code(k))
    } else {
        return vars;
    };
    let mut j = start;
    while j < hi {
        let t = &ctx.toks[j];
        if t.is_punct('=') || (stop_at_in && t.is_ident("in")) {
            break;
        }
        // Stop at a type ascription's `:` (but step over `::` paths).
        if t.is_punct(':') {
            let nx = ctx.next_code(j);
            if nx < hi && ctx.toks[nx].is_punct(':') {
                j = ctx.next_code(nx);
                continue;
            }
            break;
        }
        if t.kind == TokKind::Ident && !is_keyword(&t.text) {
            vars.push(t.text.clone());
        }
        j = ctx.next_code(j);
    }
    vars
}

/// The receiver chain's identifiers, walking back from the method-name
/// token at `idx` across `.`-joined segments, index and call groups.
pub(crate) fn receiver_chain(ctx: &FileCtx, idx: usize, lo: usize) -> Vec<String> {
    let mut names = Vec::new();
    let Some(mut j) = ctx.prev_code(idx) else {
        return names;
    };
    // idx names the method; prev must be the `.`.
    if !ctx.toks[j].is_punct('.') {
        return names;
    }
    while let Some(p) = ctx.prev_code(j) {
        if p < lo {
            break;
        }
        let t = &ctx.toks[p];
        if t.is_punct(')') || t.is_punct(']') {
            // Skip the bracketed group.
            let (open, close) = if t.is_punct(')') {
                ('(', ')')
            } else {
                ('[', ']')
            };
            let mut depth = 0i32;
            let mut q = p;
            loop {
                let u = &ctx.toks[q];
                if u.is_punct(close) {
                    depth += 1;
                } else if u.is_punct(open) {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if q == 0 {
                    break;
                }
                q -= 1;
            }
            if q <= lo {
                break;
            }
            j = q;
            continue;
        }
        if t.kind == TokKind::Ident {
            if !is_keyword(&t.text) {
                names.push(t.text.clone());
            }
            let Some(pp) = ctx.prev_code(p) else { break };
            if ctx.toks[pp].is_punct('.') {
                j = pp;
                continue;
            }
        }
        break;
    }
    names
}

/// Bindings whose declaration mentions a hash container anywhere in the
/// file — `let` statements, parameters, and struct fields alike (a field
/// read through `self.name` then matches by name).
fn file_hash_bindings(ctx: &FileCtx) -> BTreeSet<String> {
    let toks = &ctx.toks;
    let n = toks.len();
    let mut out = BTreeSet::new();
    let mut i = 0usize;
    while i < n {
        if toks[i].is_ident("let") {
            let mut j = ctx.next_code(i);
            if j < n && toks[j].is_ident("mut") {
                j = ctx.next_code(j);
            }
            if j < n && toks[j].kind == TokKind::Ident {
                let name = &toks[j].text;
                let mut k = j;
                let mut depth = 0i32;
                while k < n {
                    let t = &toks[k];
                    if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                        depth += 1;
                    } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                        depth -= 1;
                        if depth < 0 {
                            break;
                        }
                    } else if depth == 0 && t.is_punct(';') {
                        break;
                    } else if t.kind == TokKind::Ident && is_hash_type(&t.text) {
                        out.insert(name.clone());
                        break;
                    }
                    k += 1;
                }
            }
        } else if toks[i].kind == TokKind::Ident && !is_keyword(&toks[i].text) {
            // `name : [& mut] [path ::] FxHashMap` — parameter or field.
            let j = ctx.next_code(i);
            if j < n && toks[j].is_punct(':') && {
                let nx = ctx.next_code(j);
                !(nx < n && toks[nx].is_punct(':'))
            } {
                let mut k = ctx.next_code(j);
                for _ in 0..8 {
                    if k >= n {
                        break;
                    }
                    let t = &toks[k];
                    if t.is_punct('&') || t.is_ident("mut") || t.is_punct(':') {
                        k = ctx.next_code(k);
                    } else if t.kind == TokKind::Ident && is_hash_type(&t.text) {
                        out.insert(toks[i].text.clone());
                        break;
                    } else if t.kind == TokKind::Ident {
                        let nx = ctx.next_code(k);
                        if nx < n && toks[nx].is_punct(':') {
                            k = nx;
                        } else {
                            break;
                        }
                    } else {
                        break;
                    }
                }
            }
        }
        i += 1;
    }
    out
}

/// Bindings bound from an `mpsc::channel()` tuple inside this function —
/// iterating one yields values in nondeterministic arrival order.
fn channel_bindings(ctx: &FileCtx, span: &FnSpan) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let hi = span.end.min(ctx.toks.len());
    let mut i = span.body_start;
    while i < hi {
        if ctx.toks[i].is_ident("channel") || ctx.toks[i].is_ident("sync_channel") {
            // Walk back to the `let` of this statement and take the
            // second tuple element (the receiver half).
            let mut j = i;
            let mut back = 0;
            while j > span.body_start && back < 24 {
                j -= 1;
                back += 1;
                let t = &ctx.toks[j];
                if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
                    break;
                }
                if t.is_ident("let") {
                    let vars: Vec<String> = bound_vars(ctx, j, i);
                    if let Some(rx) = vars.last() {
                        out.insert(rx.clone());
                    }
                    break;
                }
            }
        }
        i += 1;
    }
    out
}

/// `var(THREADS_ENV)` — the env-override read of the worker count.
fn names_threads_env(ctx: &FileCtx, call_idx: usize) -> bool {
    let open = ctx.next_code(call_idx);
    if open >= ctx.toks.len() || !ctx.toks[open].is_punct('(') {
        return false;
    }
    let arg = ctx.next_code(open);
    arg < ctx.toks.len() && ctx.toks[arg].is_ident("THREADS_ENV")
}

/// An accumulation sink inside the same statement as its source
/// (`m.values().map(..).sum()` — no binding ever carries the taint).
fn immediate_sink(ctx: &FileCtx, f: &FnDef, lo: usize, hi: usize) -> Option<&'static str> {
    for c in &f.facts.calls {
        if c.idx >= lo && c.idx < hi && c.is_method {
            match c.name.as_str() {
                "sum" | "product" => return Some("a float fold"),
                "fold" | "reduce" => return Some("an order-dependent fold"),
                _ => {}
            }
        }
    }
    let _ = ctx;
    None
}

/// A deterministic sink this statement feeds `tainted` values into.
fn stmt_sink(
    ctx: &FileCtx,
    span: &FnSpan,
    f: &FnDef,
    lo: usize,
    hi: usize,
    tainted: &[String],
) -> Option<String> {
    let hi = hi.min(ctx.toks.len());
    // Compound accumulation with a tainted right-hand side.
    let mut k = lo;
    while k + 1 < hi {
        let t = &ctx.toks[k];
        if (t.is_punct('+') || t.is_punct('-') || t.is_punct('*') || t.is_punct('/'))
            && ctx.toks[k + 1].is_punct('=')
        {
            let rhs_tainted = ctx.toks[k + 2..hi]
                .iter()
                .any(|u| u.kind == TokKind::Ident && tainted.iter().any(|v| v == &u.text));
            if rhs_tainted {
                return Some("a running accumulation (`+=`)".into());
            }
        }
        k += 1;
    }
    for c in &f.facts.calls {
        if c.idx < lo || c.idx >= hi {
            continue;
        }
        let args_tainted = || {
            let open = ctx.next_code(c.idx);
            if open >= hi || !ctx.toks[open].is_punct('(') {
                return false;
            }
            ctx.toks[open..hi]
                .iter()
                .any(|u| u.kind == TokKind::Ident && tainted.iter().any(|v| v == &u.text))
        };
        match c.name.as_str() {
            "sum" | "product" | "fold" | "reduce" if c.is_method => {
                let recv = receiver_chain(ctx, c.idx, lo);
                if recv.iter().any(|r| tainted.iter().any(|v| v == r)) || args_tainted() {
                    return Some(format!("a `.{}()` fold", c.name));
                }
            }
            // Ordered output: pushing tainted values is only safe when the
            // buffer is sorted afterwards (the ordered-commit discipline).
            "push" | "extend" | "push_str" if c.is_method => {
                if !args_tainted() {
                    continue;
                }
                let recv = receiver_chain(ctx, c.idx, lo);
                let sorted_later = recv.iter().any(|r| buffer_is_sorted(ctx, span, f, r));
                if !sorted_later {
                    return Some(format!("ordered output via `.{}()`", c.name));
                }
            }
            name if (name.contains("checkpoint")
                || name.contains("persist")
                || name == "write_atomic")
                && args_tainted() =>
            {
                return Some(format!("a durable write (`{name}`)"));
            }
            "agglomerate" | "agglomerate_exec" | "connected_components" | "compose"
                if args_tainted() =>
            {
                return Some(format!("clustering input (`{}`)", c.name));
            }
            _ => {}
        }
    }
    None
}

/// Whether `buf` gets a `.sort*()` call anywhere later in the function —
/// the ordered-commit pattern that makes push-order irrelevant.
fn buffer_is_sorted(ctx: &FileCtx, span: &FnSpan, f: &FnDef, buf: &str) -> bool {
    f.facts.calls.iter().any(|c| {
        c.is_method
            && c.name.starts_with("sort")
            && c.idx < span.end
            && receiver_chain(ctx, c.idx, span.body_start)
                .iter()
                .any(|r| r == buf)
    })
}

// ------------------------------------------------------------ D108 --

/// One interior-mutability cell discovered in library code.
#[derive(Debug, Clone)]
pub struct SharedCell {
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line of the field/static declaration.
    pub line: u32,
    /// Enclosing struct/enum name, or the static's name.
    pub owner: String,
    /// Field name (`None` for tuple-struct positions).
    pub field: Option<String>,
    /// The cell type (`Mutex`, `AtomicU64`, ...).
    pub kind: String,
    /// The `shared(...)` merge discipline, if declared.
    pub discipline: Option<String>,
    /// Whether code touching the owner is reachable from the
    /// resolve/train/apply_updates spine.
    pub reachable: bool,
}

/// A lock acquisition site in library code, for the facts export.
#[derive(Debug, Clone)]
pub struct GuardSite {
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based acquisition line.
    pub line: u32,
    /// Qualified function holding the guard.
    pub func: String,
    /// Textual receiver label (`self.names`).
    pub label: String,
    /// The guard's binding when let-bound.
    pub binding: Option<String>,
}

/// Everything `distinct-lint facts` exports.
#[derive(Debug, Default)]
pub struct ConcurFacts {
    /// Discovered interior-mutability cells.
    pub cells: Vec<SharedCell>,
    /// Discovered reusable scratch-structure construction sites (D112).
    pub scratch: Vec<crate::alloc::ScratchSite>,
    /// Discovered lock-guard sites.
    pub guards: Vec<GuardSite>,
}

const CELL_TYPES: [&str; 5] = ["Mutex", "RwLock", "Cell", "RefCell", "UnsafeCell"];

fn is_cell_type(s: &str) -> bool {
    CELL_TYPES.contains(&s) || (s.starts_with("Atomic") && s.len() > "Atomic".len())
}

/// Entry points plus the `apply_update*` maintenance spine — the roots
/// D108 measures reachability from.
pub fn spine_roots(graph: &CallGraph) -> Vec<usize> {
    let mut roots = graph.entry_points();
    for (i, f) in graph.ws.fns.iter().enumerate() {
        if f.crate_dir == "core"
            && !f.is_test
            && f.name.starts_with("apply_update")
            && !roots.contains(&i)
        {
            roots.push(i);
        }
    }
    roots
}

/// Scan library files for interior-mutability cells declared as struct
/// fields or statics, pair them with `shared(...)` declarations, and mark
/// spine reachability.
pub fn collect_cells(graph: &CallGraph, ctxs: &[FileCtx]) -> Vec<SharedCell> {
    let ws = &graph.ws;
    let parent = graph.reach(&spine_roots(graph), |_| true);
    let mut cells = Vec::new();
    for ctx in ctxs {
        if !ctx.is_library() {
            continue;
        }
        let owners = owner_spans(ctx);
        let decls = shared_decls(ctx);
        let mut seen_anchor: BTreeSet<usize> = BTreeSet::new();
        for (k, t) in ctx.toks.iter().enumerate() {
            if t.kind != TokKind::Ident || !is_cell_type(&t.text) || ctx.in_test(k) {
                continue;
            }
            // Function-local cells are exempt by design: the passes reason
            // about them through D106/D109 instead.
            if ctx.fns.iter().any(|f| f.start <= k && k < f.end) {
                continue;
            }
            if in_use_item(ctx, k) {
                continue;
            }
            let Some(anchor) = decl_anchor(ctx, k) else {
                continue;
            };
            if !seen_anchor.insert(anchor) {
                continue;
            }
            let first = &ctx.toks[anchor];
            if first.is_ident("use")
                || first.is_ident("impl")
                || first.is_ident("type")
                || first.is_ident("trait")
                || first.is_ident("fn")
            {
                continue;
            }
            let line = first.line;
            let field = field_name(ctx, anchor);
            let owner = owners
                .iter()
                .filter(|(_, open, close)| *open < k && k < *close)
                .map(|(name, _, _)| name.clone())
                .next_back() // innermost
                .or_else(|| static_name(ctx, anchor))
                .unwrap_or_else(|| "<file>".into());
            let discipline = decls
                .iter()
                .find(|(dl, _)| *dl == line || *dl + 1 == line)
                .map(|(_, d)| d.clone());
            let reachable = cell_reachable(ws, &parent, &ctx.path, &owner);
            cells.push(SharedCell {
                file: ctx.path.clone(),
                line,
                owner,
                field,
                kind: t.text.clone(),
                discipline,
                reachable,
            });
        }
    }
    cells.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    cells
}

fn d108_shared_registry(graph: &CallGraph, ctxs: &[FileCtx]) -> Vec<Finding> {
    let cells = collect_cells(graph, ctxs);
    let mut out = Vec::new();
    for c in &cells {
        if c.reachable && c.discipline.is_none() {
            let what = match &c.field {
                Some(f) => format!("{}.{f}", c.owner),
                None => c.owner.clone(),
            };
            out.push(Finding {
                id: LintId::D108,
                file: c.file.clone(),
                line: c.line,
                message: format!(
                    "interior-mutability cell `{what}: {}` is reachable from the \
                     resolve/train/apply_updates spine but has no \
                     `// distinct-lint: shared(<merge-discipline>)` declaration",
                    c.kind
                ),
            });
        }
    }
    // Hygiene: a shared(...) declaration adjacent to no cell is as dead as
    // an unused allow().
    for ctx in ctxs {
        if !ctx.is_library() {
            continue;
        }
        for (dl, _) in shared_decls(ctx) {
            let covers = cells
                .iter()
                .any(|c| c.file == ctx.path && (c.line == dl || c.line == dl + 1));
            if !covers {
                out.push(Finding {
                    id: LintId::D000,
                    file: ctx.path.clone(),
                    line: dl,
                    message: "shared(...) declaration matches no interior-mutability cell \
                              declaration on this or the next line"
                        .into(),
                });
            }
        }
    }
    out
}

/// Whether the cell's owner has spine-reachable code: an impl method of
/// `owner`, or (for statics / free cells) any reachable fn in the file.
fn cell_reachable(
    ws: &crate::symbols::Workspace,
    parent: &[Option<usize>],
    path: &str,
    owner: &str,
) -> bool {
    let mut any_impl = false;
    for (i, f) in ws.fns.iter().enumerate() {
        if f.impl_type.as_deref() == Some(owner) {
            any_impl = true;
            if parent[i].is_some() {
                return true;
            }
        }
    }
    if any_impl {
        return false;
    }
    ws.fns
        .iter()
        .enumerate()
        .any(|(i, f)| f.file == path && parent[i].is_some())
}

/// `(name, open, close)` spans of struct/enum bodies in the file.
fn owner_spans(ctx: &FileCtx) -> Vec<(String, usize, usize)> {
    let mut out = Vec::new();
    let n = ctx.toks.len();
    for i in 0..n {
        let t = &ctx.toks[i];
        if !(t.is_ident("struct") || t.is_ident("enum")) {
            continue;
        }
        let name_at = ctx.next_code(i);
        if name_at >= n || ctx.toks[name_at].kind != TokKind::Ident {
            continue;
        }
        // Find the body's `{` or a tuple struct's `(` (skip generics).
        let mut j = name_at;
        let mut open = None;
        for _ in 0..64 {
            j = ctx.next_code(j);
            if j >= n {
                break;
            }
            let u = &ctx.toks[j];
            if u.is_punct('{') || u.is_punct('(') {
                open = Some(j);
                break;
            }
            if u.is_punct(';') {
                break; // unit struct
            }
        }
        let Some(open) = open else { continue };
        let (oc, cc) = if ctx.toks[open].is_punct('{') {
            ('{', '}')
        } else {
            ('(', ')')
        };
        let mut depth = 0i32;
        let mut close = open;
        for (off, u) in ctx.toks[open..n].iter().enumerate() {
            if u.is_punct(oc) {
                depth += 1;
            } else if u.is_punct(cc) {
                depth -= 1;
                if depth == 0 {
                    close = open + off;
                    break;
                }
            }
        }
        out.push((ctx.toks[name_at].text.clone(), open, close));
    }
    out
}

/// All `shared(...)` declarations in the file as `(line, discipline)`.
fn shared_decls(ctx: &FileCtx) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    for t in &ctx.toks {
        if t.kind != TokKind::Comment {
            continue;
        }
        let Some(pos) = t.text.find("distinct-lint:") else {
            continue;
        };
        let body = t.text[pos + "distinct-lint:".len()..].trim();
        if !body.starts_with("shared") {
            continue;
        }
        if let Ok(d) = suppress::parse_shared(body) {
            out.push((t.line, d));
        }
    }
    out
}

/// Whether token `k` sits inside a `use` import (possibly a `{...}`
/// group) — type names there are imports, not cell declarations.
fn in_use_item(ctx: &FileCtx, k: usize) -> bool {
    let mut j = k;
    for _ in 0..64 {
        let Some(p) = ctx.prev_code(j) else {
            return false;
        };
        let t = &ctx.toks[p];
        if t.is_ident("use") {
            return true;
        }
        if t.is_punct(';')
            || t.is_ident("struct")
            || t.is_ident("enum")
            || t.is_ident("fn")
            || t.is_ident("impl")
        {
            return false;
        }
        j = p;
    }
    false
}

/// First code token of the declaration containing token `k`: walk back to
/// the previous `,`/`;`/`{`/`}`/`(` boundary outside angle brackets.
fn decl_anchor(ctx: &FileCtx, k: usize) -> Option<usize> {
    let mut j = k;
    let mut angles = 0i32;
    loop {
        let p = ctx.prev_code(j)?;
        let t = &ctx.toks[p];
        if t.is_punct('>') {
            angles += 1;
        } else if t.is_punct('<') {
            angles -= 1;
        } else if angles <= 0
            && (t.is_punct(',')
                || t.is_punct(';')
                || t.is_punct('{')
                || t.is_punct('}')
                || t.is_punct('('))
        {
            // `pub(crate)` / `pub(super)` visibility parens are not a
            // declaration boundary — keep walking to the real one.
            if t.is_punct('(')
                && ctx
                    .prev_code(p)
                    .map(|pp| ctx.toks[pp].is_ident("pub"))
                    .unwrap_or(false)
            {
                j = p;
                continue;
            }
            let a = ctx.next_code(p);
            return if a <= k { Some(a) } else { None };
        }
        if p == 0 {
            let first_is_comment = ctx
                .toks
                .first()
                .map(|t| matches!(t.kind, TokKind::Comment | TokKind::DocComment))
                .unwrap_or(false);
            return Some(if first_is_comment {
                ctx.next_code(0)
            } else {
                0
            });
        }
        j = p;
    }
}

/// `name :` at the anchor → the field's name.
fn field_name(ctx: &FileCtx, anchor: usize) -> Option<String> {
    let mut j = anchor;
    // Skip visibility (`pub`, `pub(crate)`).
    if ctx.toks[j].is_ident("pub") {
        j = ctx.next_code(j);
        if j < ctx.toks.len() && ctx.toks[j].is_punct('(') {
            while j < ctx.toks.len() && !ctx.toks[j].is_punct(')') {
                j = ctx.next_code(j);
            }
            j = ctx.next_code(j);
        }
    }
    if j >= ctx.toks.len() || ctx.toks[j].kind != TokKind::Ident || is_keyword(&ctx.toks[j].text) {
        return None;
    }
    let colon = ctx.next_code(j);
    if colon < ctx.toks.len() && ctx.toks[colon].is_punct(':') {
        Some(ctx.toks[j].text.clone())
    } else {
        None
    }
}

/// `static NAME:` / `pub static NAME:` at the anchor → the static's name.
fn static_name(ctx: &FileCtx, anchor: usize) -> Option<String> {
    let mut j = anchor;
    if ctx.toks[j].is_ident("pub") {
        j = ctx.next_code(j);
    }
    if j < ctx.toks.len() && (ctx.toks[j].is_ident("static") || ctx.toks[j].is_ident("const")) {
        let name_at = ctx.next_code(j);
        if name_at < ctx.toks.len() && ctx.toks[name_at].kind == TokKind::Ident {
            return Some(ctx.toks[name_at].text.clone());
        }
    }
    None
}

/// Collect the full facts registry: cells, scratch structures, and guard
/// sites.
pub fn collect_facts(graph: &CallGraph, ctxs: &[FileCtx]) -> ConcurFacts {
    let by_path: BTreeMap<&str, &FileCtx> = ctxs.iter().map(|c| (c.path.as_str(), c)).collect();
    let cells = collect_cells(graph, ctxs);
    let scratch = crate::alloc::collect_scratch(graph, ctxs);
    let mut guards = Vec::new();
    for (i, f) in graph.ws.fns.iter().enumerate() {
        if f.is_test {
            continue;
        }
        let _ = by_path; // guards come straight from the symbol table
        for lock in &f.facts.locks {
            guards.push(GuardSite {
                file: f.file.clone(),
                line: lock.line,
                func: graph.ws.qual(i),
                label: lock.label.clone(),
                binding: lock.binding.clone(),
            });
        }
    }
    guards.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    ConcurFacts {
        cells,
        scratch,
        guards,
    }
}

/// Render the registry as JSON (hand-rolled; the lint crate stays
/// dependency-free).
pub fn facts_json(facts: &ConcurFacts) -> String {
    fn esc(s: &str) -> String {
        s.replace('\\', "\\\\").replace('"', "\\\"")
    }
    fn opt(s: &Option<String>) -> String {
        match s {
            Some(v) => format!("\"{}\"", esc(v)),
            None => "null".into(),
        }
    }
    let mut out = String::from("{\n  \"cells\": [\n");
    for (i, c) in facts.cells.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"file\": \"{}\", \"line\": {}, \"owner\": \"{}\", \"field\": {}, \
             \"kind\": \"{}\", \"discipline\": {}, \"reachable\": {}}}{}\n",
            esc(&c.file),
            c.line,
            esc(&c.owner),
            opt(&c.field),
            esc(&c.kind),
            opt(&c.discipline),
            c.reachable,
            if i + 1 < facts.cells.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n  \"scratch\": [\n");
    for (i, s) in facts.scratch.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"file\": \"{}\", \"line\": {}, \"owner\": \"{}\", \"ctor\": \"{}\", \
             \"fn\": \"{}\", \"discipline\": {}, \"reachable\": {}}}{}\n",
            esc(&s.file),
            s.line,
            esc(&s.owner),
            esc(&s.ctor),
            esc(&s.func),
            opt(&s.discipline),
            s.reachable,
            if i + 1 < facts.scratch.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n  \"guards\": [\n");
    for (i, g) in facts.guards.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"file\": \"{}\", \"line\": {}, \"fn\": \"{}\", \"label\": \"{}\", \
             \"binding\": {}}}{}\n",
            esc(&g.file),
            g.line,
            esc(&g.func),
            esc(&g.label),
            opt(&g.binding),
            if i + 1 < facts.guards.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

// ------------------------------------------------------------ D109 --

fn d109_send_across_commit(graph: &CallGraph, by_path: &BTreeMap<&str, &FileCtx>) -> Vec<Finding> {
    let ws = &graph.ws;
    let mut out = Vec::new();
    for f in ws.fns.iter() {
        if f.is_test {
            continue;
        }
        let Some((ctx, span)) = site(by_path, f) else {
            continue;
        };
        for c in &f.facts.calls {
            if !POOL_SUBMITS.contains(&c.name.as_str()) {
                continue;
            }
            let open = ctx.next_code(c.idx);
            if open >= ctx.toks.len() || !ctx.toks[open].is_punct('(') {
                continue;
            }
            let close = match_paren(ctx, open, span.end.min(ctx.toks.len()));
            for (body_lo, body_hi, params) in closures_in(ctx, open + 1, close) {
                check_closure_body(ctx, f, &c.name, body_lo, body_hi, params, &mut out);
            }
        }
    }
    out
}

pub(crate) fn match_paren(ctx: &FileCtx, open: usize, hi: usize) -> usize {
    let mut depth = 0i32;
    let mut k = open;
    while k < hi {
        let t = &ctx.toks[k];
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return k;
            }
        }
        k += 1;
    }
    hi.saturating_sub(1)
}

/// Closures in a token range: `(body_lo, body_hi, param names)`. A `|`
/// opens a closure when it follows `(`, `,`, `=`, or `move`; expression
/// bodies run to the next top-level `,` or the range's end.
fn closures_in(ctx: &FileCtx, lo: usize, hi: usize) -> Vec<(usize, usize, Vec<String>)> {
    let mut out = Vec::new();
    let mut k = lo;
    while k < hi {
        let t = &ctx.toks[k];
        if !t.is_punct('|') {
            k += 1;
            continue;
        }
        let starts = match ctx.prev_code(k) {
            Some(p) => {
                let u = &ctx.toks[p];
                u.is_punct('(') || u.is_punct(',') || u.is_punct('=') || u.is_ident("move")
            }
            None => true,
        };
        if !starts {
            k += 1;
            continue;
        }
        // Params up to the closing `|` (an immediate `|` means none).
        let mut params = Vec::new();
        let mut j = ctx.next_code(k);
        while j < hi && !ctx.toks[j].is_punct('|') {
            if ctx.toks[j].kind == TokKind::Ident && !is_keyword(&ctx.toks[j].text) {
                params.push(ctx.toks[j].text.clone());
            }
            j = ctx.next_code(j);
        }
        if j >= hi {
            break;
        }
        let after = ctx.next_code(j);
        if after >= hi {
            break;
        }
        let (body_lo, body_hi) = if ctx.toks[after].is_punct('{') {
            let close = crate::cfg::match_brace_from(ctx, after, hi);
            (after + 1, close)
        } else {
            // Expression body: to the next `,` at depth 0 or range end.
            let mut depth = 0i32;
            let mut e = after;
            while e < hi {
                let u = &ctx.toks[e];
                if u.is_punct('(') || u.is_punct('[') || u.is_punct('{') {
                    depth += 1;
                } else if u.is_punct(')') || u.is_punct(']') || u.is_punct('}') {
                    depth -= 1;
                } else if depth == 0 && u.is_punct(',') {
                    break;
                }
                e += 1;
            }
            (after, e)
        };
        out.push((body_lo, body_hi, params));
        k = body_hi.max(k + 1);
    }
    out
}

/// Methods whose mere invocation mutates the receiver in place.
pub(crate) const MUTATORS: [&str; 8] = [
    "push", "extend", "push_str", "insert", "remove", "clear", "truncate", "append",
];

fn check_closure_body(
    ctx: &FileCtx,
    f: &FnDef,
    pool_call: &str,
    lo: usize,
    hi: usize,
    params: Vec<String>,
    out: &mut Vec<Finding>,
) {
    let hi = hi.min(ctx.toks.len());
    // Locals: parameters, `let`s, `for` vars, and nested closure params.
    let mut locals: BTreeSet<String> = params.into_iter().collect();
    let mut k = lo;
    while k < hi {
        let t = &ctx.toks[k];
        if t.is_ident("let") || t.is_ident("for") {
            for v in bound_vars(ctx, k, hi) {
                locals.insert(v);
            }
        } else if t.is_punct('|') {
            let starts = ctx
                .prev_code(k)
                .map(|p| {
                    let u = &ctx.toks[p];
                    u.is_punct('(') || u.is_punct(',') || u.is_punct('=') || u.is_ident("move")
                })
                .unwrap_or(false);
            if starts {
                let mut j = ctx.next_code(k);
                while j < hi && !ctx.toks[j].is_punct('|') {
                    if ctx.toks[j].kind == TokKind::Ident && !is_keyword(&ctx.toks[j].text) {
                        locals.insert(ctx.toks[j].text.clone());
                    }
                    j = ctx.next_code(j);
                }
                k = j;
            }
        }
        k += 1;
    }
    let flag = |line: u32, name: &str, how: &str, out: &mut Vec<Finding>| {
        out.push(Finding {
            id: LintId::D109,
            file: f.file.clone(),
            line,
            message: format!(
                "closure passed to `{pool_call}` mutates captured `{name}` via {how} outside \
                 the ordered-commit protocol; return per-task results and let the pool \
                 commit them in input order"
            ),
        });
    };
    // Assignments and compound assignments to captured bindings.
    let mut k = lo;
    while k < hi {
        let t = &ctx.toks[k];
        let is_compound = (t.is_punct('+')
            || t.is_punct('-')
            || t.is_punct('*')
            || t.is_punct('/')
            || t.is_punct('%'))
            && k + 1 < hi
            && ctx.toks[k + 1].is_punct('=');
        let is_plain = t.is_punct('=')
            && !(k + 1 < hi && (ctx.toks[k + 1].is_punct('=') || ctx.toks[k + 1].is_punct('>')))
            && ctx
                .prev_code(k)
                .map(|p| {
                    let u = &ctx.toks[p];
                    !(u.is_punct('=')
                        || u.is_punct('<')
                        || u.is_punct('>')
                        || u.is_punct('!')
                        || u.is_punct('+')
                        || u.is_punct('-')
                        || u.is_punct('*')
                        || u.is_punct('/')
                        || u.is_punct('%')
                        || u.is_punct('&')
                        || u.is_punct('|')
                        || u.is_punct('^'))
                })
                .unwrap_or(false);
        if is_compound || is_plain {
            if let Some(target) = assign_target(ctx, k, lo) {
                if !locals.contains(&target) {
                    flag(
                        ctx.toks[k].line,
                        &target,
                        if is_compound {
                            "compound assignment"
                        } else {
                            "assignment"
                        },
                        out,
                    );
                }
            }
            k += if is_compound { 2 } else { 1 };
            continue;
        }
        k += 1;
    }
    // In-place mutating method calls on captured receivers.
    for c in &f.facts.calls {
        if c.idx < lo || c.idx >= hi || !c.is_method || !MUTATORS.contains(&c.name.as_str()) {
            continue;
        }
        let chain = receiver_chain(ctx, c.idx, lo);
        if let Some(first) = chain.last() {
            if !locals.contains(first) {
                flag(c.line, first, &format!("`.{}()`", c.name), out);
            }
        }
    }
}

/// The root binding of an assignment's left-hand side: walk back from the
/// operator across `.field`, `[index]`, and deref/call groups. `None` for
/// `let` initialisers (those bind locals, not captures).
fn assign_target(ctx: &FileCtx, op: usize, lo: usize) -> Option<String> {
    let mut j = ctx.prev_code(op)?;
    let mut target: Option<String> = None;
    loop {
        if j < lo {
            break;
        }
        let t = &ctx.toks[j];
        if t.is_punct(']') || t.is_punct(')') {
            let (open, close) = if t.is_punct(']') {
                ('[', ']')
            } else {
                ('(', ')')
            };
            let mut depth = 0i32;
            while j > lo {
                let u = &ctx.toks[j];
                if u.is_punct(close) {
                    depth += 1;
                } else if u.is_punct(open) {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j -= 1;
            }
            match ctx.prev_code(j) {
                Some(p) if p >= lo => j = p,
                _ => break,
            }
            continue;
        }
        if t.kind == TokKind::Ident && !is_keyword(&t.text) {
            target = Some(t.text.clone());
            match ctx.prev_code(j) {
                Some(p) if p >= lo && ctx.toks[p].is_punct('.') => match ctx.prev_code(p) {
                    Some(pp) if pp >= lo => {
                        j = pp;
                        continue;
                    }
                    _ => break,
                },
                Some(p) if p >= lo && ctx.toks[p].is_ident("let") => return None,
                Some(p)
                    if p >= lo
                        && ctx.toks[p].is_ident("mut")
                        && ctx
                            .prev_code(p)
                            .map(|pp| ctx.toks[pp].is_ident("let"))
                            .unwrap_or(false) =>
                {
                    return None;
                }
                _ => break,
            }
        }
        break;
    }
    target
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Role;
    use crate::symbols::Workspace;

    fn graph_of(files: &[(&str, &str, &str)]) -> (Vec<FileCtx>, CallGraph) {
        let ctxs: Vec<FileCtx> = files
            .iter()
            .map(|(path, krate, src)| FileCtx::new(path, krate, Role::Library, src))
            .collect();
        let refs: Vec<&FileCtx> = ctxs.iter().collect();
        let dirs: BTreeSet<String> = files.iter().map(|(_, k, _)| k.to_string()).collect();
        let mut closures = BTreeMap::new();
        for d in &dirs {
            closures.insert(d.clone(), dirs.clone());
        }
        let ws = Workspace::build(&refs, BTreeMap::new(), closures);
        (ctxs, CallGraph::build(ws))
    }

    fn run_ids(files: &[(&str, &str, &str)]) -> Vec<(LintId, u32)> {
        let (ctxs, graph) = graph_of(files);
        run(&graph, &ctxs)
            .into_iter()
            .map(|f| (f.id, f.line))
            .collect()
    }

    #[test]
    fn d106_guard_live_across_pool_submit() {
        let found = run_ids(&[(
            "crates/core/src/a.rs",
            "core",
            "pub fn resolve_all(m: &M, pool: &P) {\n\
             let g = m.names.lock();\n\
             pool.par_map_guarded(g.len());\n\
             }\n",
        )]);
        assert!(
            found
                .iter()
                .any(|&(id, line)| id == LintId::D106 && line == 3),
            "{found:?}"
        );
    }

    #[test]
    fn d106_dropped_guard_is_fine() {
        let found = run_ids(&[(
            "crates/core/src/a.rs",
            "core",
            "pub fn resolve_all(m: &M, pool: &P) {\n\
             let g = m.names.lock();\n\
             drop(g);\n\
             pool.par_map_guarded(1);\n\
             }\n",
        )]);
        assert!(
            !found.iter().any(|&(id, _)| id == LintId::D106),
            "{found:?}"
        );
    }

    #[test]
    fn d106_transitive_boundary_through_callee() {
        let found = run_ids(&[(
            "crates/core/src/a.rs",
            "core",
            "pub fn resolve_all(m: &M) {\n\
             let g = m.names.lock();\n\
             fan_out(g.len());\n\
             }\n\
             pub fn fan_out(n: usize) { pool().par_chunks(n); }\n",
        )]);
        assert!(
            found
                .iter()
                .any(|&(id, line)| id == LintId::D106 && line == 3),
            "{found:?}"
        );
    }

    #[test]
    fn d107_hash_iteration_into_accumulation() {
        let found = run_ids(&[(
            "crates/core/src/a.rs",
            "core",
            "pub fn resolve_score(m: &FxHashMap<u32, f64>) -> f64 {\n\
             let mut total = 0.0;\n\
             for v in m.values() {\n\
             total += v;\n\
             }\n\
             total\n\
             }\n",
        )]);
        assert!(
            found
                .iter()
                .any(|&(id, line)| id == LintId::D107 && line == 4),
            "{found:?}"
        );
    }

    #[test]
    fn d107_sorted_collection_is_clean() {
        let found = run_ids(&[(
            "crates/core/src/a.rs",
            "core",
            "pub fn resolve_score(m: &FxHashMap<u32, f64>) -> f64 {\n\
             let mut keys: Vec<u32> = m.keys().copied().collect();\n\
             keys.sort_unstable();\n\
             let mut total = 0.0;\n\
             for k in keys.iter() {\n\
             total += f(k);\n\
             }\n\
             total\n\
             }\n\
             fn f(k: &u32) -> f64 { 0.0 }\n",
        )]);
        assert!(
            !found.iter().any(|&(id, _)| id == LintId::D107),
            "{found:?}"
        );
    }

    #[test]
    fn d108_undeclared_reachable_cell_fires_and_declared_is_clean() {
        let src = "pub struct Cache {\n\
             pub shards: Mutex<u32>,\n\
             // distinct-lint: shared(commutative counter merges)\n\
             pub hits: AtomicU64,\n\
             }\n\
             impl Cache {\n\
             pub fn get(&self) -> u32 { 0 }\n\
             }\n\
             pub fn resolve_all(c: &Cache) -> u32 { c.get() }\n";
        let found = run_ids(&[("crates/core/src/a.rs", "core", src)]);
        assert!(
            found
                .iter()
                .any(|&(id, line)| id == LintId::D108 && line == 2),
            "{found:?}"
        );
        assert!(
            !found
                .iter()
                .any(|&(id, line)| id == LintId::D108 && line == 4),
            "{found:?}"
        );
    }

    #[test]
    fn d108_unreachable_cell_is_registered_but_not_flagged() {
        let src = "pub struct Lonely {\n\
             pub cell: Mutex<u32>,\n\
             }\n\
             impl Lonely {\n\
             pub fn get(&self) -> u32 { 0 }\n\
             }\n";
        let (ctxs, graph) = graph_of(&[("crates/core/src/a.rs", "core", src)]);
        let findings = run(&graph, &ctxs);
        assert!(
            !findings.iter().any(|f| f.id == LintId::D108),
            "{findings:?}"
        );
        let facts = collect_facts(&graph, &ctxs);
        assert_eq!(facts.cells.len(), 1);
        assert!(!facts.cells[0].reachable);
    }

    #[test]
    fn d109_closure_mutating_capture_fires() {
        let found = run_ids(&[(
            "crates/core/src/a.rs",
            "core",
            "pub fn resolve_all(items: &[u32], pool: &P) {\n\
             let mut out = Vec::new();\n\
             pool.par_map_indexed(items, |i, item| {\n\
             out.push(item + i);\n\
             });\n\
             }\n",
        )]);
        assert!(
            found
                .iter()
                .any(|&(id, line)| id == LintId::D109 && line == 4),
            "{found:?}"
        );
    }

    #[test]
    fn d109_send_and_locals_are_allowed() {
        let found = run_ids(&[(
            "crates/core/src/a.rs",
            "core",
            "pub fn resolve_all(items: &[u32], pool: &P, tx: &T) {\n\
             pool.par_map_indexed(items, |i, item| {\n\
             let mut local = Vec::new();\n\
             local.push(item + i);\n\
             tx.send(local).ok();\n\
             });\n\
             }\n",
        )]);
        assert!(
            !found.iter().any(|&(id, _)| id == LintId::D109),
            "{found:?}"
        );
    }

    #[test]
    fn facts_json_renders_cells_and_guards() {
        let (ctxs, graph) = graph_of(&[(
            "crates/core/src/a.rs",
            "core",
            "pub struct C {\n\
             // distinct-lint: shared(single-writer epochs)\n\
             pub m: Mutex<u32>,\n\
             }\n\
             impl C {\n\
             pub fn resolve_one(&self) -> u32 { let g = self.m.lock(); *g }\n\
             }\n",
        )]);
        let facts = collect_facts(&graph, &ctxs);
        let json = facts_json(&facts);
        assert!(json.contains("\"owner\": \"C\""), "{json}");
        assert!(json.contains("single-writer epochs"), "{json}");
        assert!(json.contains("\"label\": \"self.m\""), "{json}");
    }
}

//! Offline drop-in subset of `criterion`.
//!
//! The build environment has no crates.io access, so this stub keeps the
//! bench suites compiling and gives them smoke-test semantics: each bench
//! closure runs a handful of iterations and reports wall-clock time per
//! iteration. It is NOT a statistics engine — no warm-up, outlier
//! rejection, or regression analysis. Treat the numbers as order-of-
//! magnitude only.

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export for bench code that uses `criterion::black_box`.
pub use std::hint::black_box;

/// Iterations per bench in smoke mode (kept tiny: benches run as tests).
const SMOKE_ITERS: u32 = 3;

/// Identifier combining a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    param: String,
}

impl BenchmarkId {
    /// Build an id from a name and a displayable parameter.
    pub fn new(name: impl Into<String>, param: impl fmt::Display) -> Self {
        BenchmarkId {
            name: name.into(),
            param: param.to_string(),
        }
    }

    /// Build an id from just a parameter.
    pub fn from_parameter(param: impl fmt::Display) -> Self {
        BenchmarkId {
            name: String::new(),
            param: param.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.name.is_empty() {
            write!(f, "{}", self.param)
        } else {
            write!(f, "{}/{}", self.name, self.param)
        }
    }
}

/// Passed to bench closures; `iter` runs the measured body.
pub struct Bencher {
    last: Option<Duration>,
}

impl Bencher {
    /// Run `f` a few times, recording mean wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..SMOKE_ITERS {
            black_box(f());
        }
        self.last = Some(start.elapsed() / SMOKE_ITERS);
    }
}

fn report(label: &str, timing: Option<Duration>) {
    match timing {
        Some(d) => println!("bench {label}: ~{d:?}/iter (smoke mode)"),
        None => println!("bench {label}: no measurement"),
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(label: &str, mut f: F) {
    let mut b = Bencher { last: None };
    f(&mut b);
    report(label, b.last);
}

/// A named group of benches.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; smoke mode ignores it.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; smoke mode ignores it.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run a bench in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        f: F,
    ) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, id), f);
        self
    }

    /// Run a bench with an input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, id), |b| f(b, input));
        self
    }

    /// End the group.
    pub fn finish(&mut self) {}
}

/// The bench driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Run a top-level bench.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_bench(id, f);
        self
    }

    /// Open a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }
}

/// Collect bench functions into a group runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point running every group, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut runs = 0u32;
        c.bench_function("t", |b| b.iter(|| runs += 1));
        assert_eq!(runs, SMOKE_ITERS);
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(10)
            .bench_function(BenchmarkId::new("a", 1), |b| b.iter(|| 2 + 2))
            .bench_with_input(BenchmarkId::new("b", 2), &3, |b, x| b.iter(|| x + 1));
        g.finish();
        assert_eq!(BenchmarkId::new("a", 1).to_string(), "a/1");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}

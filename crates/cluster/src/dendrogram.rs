//! Dendrogram capture and flat-clustering extraction.
//!
//! Cluster ids follow the scipy convention: items `0..n` are the leaf
//! clusters; the `k`-th merge creates cluster id `n + k`.

/// One merge event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Merge {
    /// First merged cluster id.
    pub a: usize,
    /// Second merged cluster id.
    pub b: usize,
    /// Similarity at which the merge happened.
    pub similarity: f64,
    /// Id of the created cluster (`n + merge index`).
    pub into: usize,
    /// Size of the created cluster.
    pub size: usize,
}

/// A full agglomeration history over `n` items.
#[derive(Debug, Clone, Default)]
pub struct Dendrogram {
    n: usize,
    merges: Vec<Merge>,
}

impl Dendrogram {
    /// A dendrogram over `n` leaves with no merges yet.
    pub fn new(n: usize) -> Self {
        Dendrogram {
            n,
            merges: Vec::new(),
        }
    }

    /// Number of leaf items.
    pub fn leaves(&self) -> usize {
        self.n
    }

    /// Recorded merges, in order.
    pub fn merges(&self) -> &[Merge] {
        &self.merges
    }

    /// Record a merge, returning the created cluster id.
    pub fn record(&mut self, a: usize, b: usize, similarity: f64, size: usize) -> usize {
        let into = self.n + self.merges.len();
        self.merges.push(Merge {
            a,
            b,
            similarity,
            into,
            size,
        });
        into
    }

    /// Flat clustering obtained by applying only merges with
    /// `similarity >= threshold` (merges are recorded in non-increasing
    /// similarity order by the engine, so this is a prefix).
    ///
    /// Returns a label per item in `0..n`; labels are dense, in order of
    /// first appearance.
    pub fn cut(&self, threshold: f64) -> Vec<usize> {
        // Union-find over item + merge ids.
        let total = self.n + self.merges.len();
        let mut parent: Vec<usize> = (0..total).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            // distinct-lint: allow(D104, reason="path-halving union-find walk, amortized near-constant and bounded by the forest depth")
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        // distinct-lint: allow(D104, reason="post-clustering relabel over merges already charged pairwise by the engine; O(n) with no I/O")
        for m in &self.merges {
            if m.similarity >= threshold {
                let ra = find(&mut parent, m.a);
                let rb = find(&mut parent, m.b);
                parent[ra] = m.into;
                parent[rb] = m.into;
            }
        }
        let mut labels = vec![usize::MAX; self.n];
        let mut next = 0usize;
        let mut map: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
        for i in 0..self.n {
            let root = find(&mut parent, i);
            let label = *map.entry(root).or_insert_with(|| {
                let l = next;
                next += 1;
                l
            });
            labels[i] = label;
        }
        labels
    }

    /// Number of clusters after cutting at `threshold`.
    pub fn cluster_count(&self, threshold: f64) -> usize {
        self.cut(threshold)
            .iter()
            .copied()
            .max()
            .map_or(0, |m| m + 1)
    }
}

/// Group items by label: `groups(labels)[c]` lists the items with label `c`.
pub fn groups(labels: &[usize]) -> Vec<Vec<usize>> {
    let k = labels.iter().copied().max().map_or(0, |m| m + 1);
    let mut out = vec![Vec::new(); k];
    for (i, &l) in labels.iter().enumerate() {
        out[l].push(i);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_assigns_sequential_ids() {
        let mut d = Dendrogram::new(4);
        assert_eq!(d.record(0, 1, 0.9, 2), 4);
        assert_eq!(d.record(4, 2, 0.5, 3), 5);
        assert_eq!(d.leaves(), 4);
        assert_eq!(d.merges().len(), 2);
    }

    #[test]
    fn cut_above_all_merges_gives_singletons() {
        let mut d = Dendrogram::new(3);
        d.record(0, 1, 0.9, 2);
        let labels = d.cut(1.5);
        assert_eq!(labels, vec![0, 1, 2]);
        assert_eq!(d.cluster_count(1.5), 3);
    }

    #[test]
    fn cut_below_all_merges_gives_one_cluster_when_fully_merged() {
        let mut d = Dendrogram::new(3);
        d.record(0, 1, 0.9, 2);
        d.record(3, 2, 0.4, 3);
        let labels = d.cut(0.0);
        assert!(labels.iter().all(|&l| l == labels[0]));
        assert_eq!(d.cluster_count(0.0), 1);
    }

    #[test]
    fn cut_at_intermediate_threshold() {
        let mut d = Dendrogram::new(4);
        d.record(0, 1, 0.9, 2); // cluster 4
        d.record(2, 3, 0.8, 2); // cluster 5
        d.record(4, 5, 0.2, 4); // cluster 6
        let labels = d.cut(0.5);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[2], labels[3]);
        assert_ne!(labels[0], labels[2]);
        assert_eq!(d.cluster_count(0.5), 2);
    }

    #[test]
    fn groups_inverts_labels() {
        let g = groups(&[0, 1, 0, 2, 1]);
        assert_eq!(g, vec![vec![0, 2], vec![1, 4], vec![3]]);
        assert!(groups(&[]).is_empty());
    }

    #[test]
    fn empty_dendrogram() {
        let d = Dendrogram::new(0);
        assert!(d.cut(0.5).is_empty());
        assert_eq!(d.cluster_count(0.5), 0);
    }
}

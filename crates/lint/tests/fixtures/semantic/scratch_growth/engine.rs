//@ path: crates/core/src/engine.rs
//@ crate: core
//! Fixture: D112 scratch-structure registry and D113 unbounded growth.
//! `resolve_all` is a spine entry point. It mints two scratch
//! structures: the `RowArena` has no `scratch(...)` declaration and is
//! flagged; the `BufPool` declares its reuse discipline and registers
//! silently. It also grows two `self` fields: `log` has no shrink site
//! anywhere in the impl (flagged), while `memo` is cleared by `trim`
//! and so stays bounded. A scratch declaration that matches no nearby
//! construction is dead and gets the D000 hygiene finding.

pub struct Engine {
    scores: RowArena,
    log: Vec<u64>,
    memo: Vec<u64>,
}

impl Engine {
    /// Spine entry: builds per-call scratch, records per-call state.
    pub fn resolve_all(&mut self, key: u64) -> usize {
        let arena = RowArena::new(); //~ D112
        // distinct-lint: scratch(per resolve: minted at the top of the call, filled from the catalog, dropped when the call returns)
        let pool = BufPool::new();
        self.log.push(key); //~ D113
        self.memo.push(key);
        arena.len() + pool.len() + self.log.len()
    }

    /// The memo has an eviction path, so its growth is bounded.
    fn trim(&mut self) {
        self.memo.clear();
    }
}

// distinct-lint: scratch(matches no construction on this or the next line) //~ D000
fn not_a_constructor() {}

//! Rand index and Adjusted Rand Index (ARI).
//!
//! The Rand index is the pairwise accuracy already exposed by
//! [`PairCounts::accuracy`](crate::pairwise::PairCounts::accuracy); the
//! *adjusted* form corrects it for chance agreement (Hubert & Arabie), so
//! 0 means "no better than random labels" regardless of cluster-size
//! skew — a useful complement when one entity holds most references.

use crate::pairwise::PairCounts;

/// Rand index: fraction of pairs on which the two clusterings agree.
pub fn rand_index(gold: &[usize], pred: &[usize]) -> f64 {
    PairCounts::from_labels(gold, pred).accuracy()
}

/// Adjusted Rand Index in `[-1, 1]`; 1 = identical partitions, ~0 =
/// chance-level agreement.
pub fn adjusted_rand_index(gold: &[usize], pred: &[usize]) -> f64 {
    assert_eq!(gold.len(), pred.len(), "label vectors must be parallel");
    let n = gold.len();
    if n < 2 {
        return 1.0;
    }
    let c = PairCounts::from_labels(gold, pred);
    // Pair-count formulation: a = TP, b = TN, and the expected index comes
    // from the marginals (pairs together in gold / in pred).
    let together_gold = (c.tp + c.fn_) as f64;
    let together_pred = (c.tp + c.fp) as f64;
    let total = (c.tp + c.fp + c.fn_ + c.tn) as f64;
    let expected = together_gold * together_pred / total;
    let max_index = 0.5 * (together_gold + together_pred);
    let index = c.tp as f64;
    if (max_index - expected).abs() < 1e-12 {
        // Both partitions are all-singletons or all-one-cluster in a way
        // that leaves no room above chance; identical partitions score 1.
        return if gold_equivalent(gold, pred) {
            1.0
        } else {
            0.0
        };
    }
    (index - expected) / (max_index - expected)
}

/// True if two labelings induce the same partition.
fn gold_equivalent(a: &[usize], b: &[usize]) -> bool {
    let c = PairCounts::from_labels(a, b);
    c.fp == 0 && c.fn_ == 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identical_partitions_score_one() {
        let gold = vec![0, 0, 1, 1, 2];
        assert_eq!(adjusted_rand_index(&gold, &gold), 1.0);
        // Label permutation does not matter.
        let renamed = vec![5, 5, 9, 9, 1];
        assert_eq!(adjusted_rand_index(&gold, &renamed), 1.0);
        assert_eq!(rand_index(&gold, &renamed), 1.0);
    }

    #[test]
    fn hand_computed_example() {
        // Classic example: gold {0,0,0,1,1,1}, pred {0,0,1,1,2,2}.
        let gold = vec![0, 0, 0, 1, 1, 1];
        let pred = vec![0, 0, 1, 1, 2, 2];
        // TP pairs: (0,1), (4,5) -> 2. together_gold = 6, together_pred = 3.
        // expected = 6*3/15 = 1.2; max = 4.5; ari = (2-1.2)/(4.5-1.2).
        let ari = adjusted_rand_index(&gold, &pred);
        assert!((ari - 0.8 / 3.3).abs() < 1e-12, "{ari}");
    }

    #[test]
    fn chance_level_is_near_zero() {
        // A prediction independent of gold hovers around ARI 0.
        let gold: Vec<usize> = (0..40).map(|i| i % 2).collect();
        let pred: Vec<usize> = (0..40).map(|i| (i / 2) % 2).collect();
        let ari = adjusted_rand_index(&gold, &pred);
        assert!(ari.abs() < 0.2, "{ari}");
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(adjusted_rand_index(&[], &[]), 1.0);
        assert_eq!(adjusted_rand_index(&[0], &[0]), 1.0);
        // All singletons in both: identical partitions.
        assert_eq!(adjusted_rand_index(&[0, 1, 2], &[2, 0, 1]), 1.0);
        // All-merged gold vs all-singleton pred: no agreement possible
        // above chance.
        assert_eq!(adjusted_rand_index(&[0, 0, 0], &[0, 1, 2]), 0.0);
    }

    proptest! {
        #[test]
        fn ari_is_bounded_and_symmetric(
            gold in proptest::collection::vec(0usize..4, 2..25),
            pred in proptest::collection::vec(0usize..4, 2..25),
        ) {
            let n = gold.len().min(pred.len());
            let (g, p) = (&gold[..n], &pred[..n]);
            let ari = adjusted_rand_index(g, p);
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&ari));
            prop_assert!((ari - adjusted_rand_index(p, g)).abs() < 1e-9);
        }

        #[test]
        fn identical_is_always_one(
            gold in proptest::collection::vec(0usize..5, 2..25),
        ) {
            prop_assert_eq!(adjusted_rand_index(&gold, &gold), 1.0);
        }
    }
}

//@ path: crates/core/src/stages.rs
//@ crate: core
//@ deps: relgraph
//@ package: distinct
//! Fixture: D104 charge-free-path coverage. `resolve_uncharged` reaches
//! the hot loop without ever charging the budget control; the identical
//! loop under `resolve_charged` is discharged by the `ctl.charge(..)` hop
//! above it.

/// Entry that charges the control before descending into the hot loop.
pub fn resolve_charged(ctl: &Ctl) -> usize {
    ctl.charge(1);
    hot_loop(3)
}

/// Entry that forgets to charge anything on the way down.
pub fn resolve_uncharged() -> usize {
    hot_loop(3)
}

fn hot_loop(n: usize) -> usize {
    let mut acc = 0;
    for i in 0..n { //~ D104
        acc += i;
    }
    acc
}

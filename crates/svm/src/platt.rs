//! Platt scaling: calibrate raw SVM decision values into probabilities.
//!
//! Fits `P(y = +1 | f) = 1 / (1 + exp(A·f + B))` to (decision value,
//! label) pairs by regularized maximum likelihood, using Platt's target
//! smoothing and a damped Newton iteration (the standard Lin–Lin–Weng
//! formulation). DISTINCT uses this to turn pair decision values into
//! merge confidences that are comparable across models.

use crate::data::{Dataset, Result, SvmError};
use serde::{Deserialize, Serialize};

/// A fitted sigmoid `P(+1 | f) = 1 / (1 + exp(A f + B))`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlattScaler {
    /// Slope (negative for a well-oriented decision function).
    pub a: f64,
    /// Intercept.
    pub b: f64,
}

impl PlattScaler {
    /// Fit from decision values and their true labels (±1).
    ///
    /// Uses Platt's smoothed targets `t+ = (N+ + 1) / (N+ + 2)`,
    /// `t− = 1 / (N− + 2)` to avoid overfitting separable data.
    pub fn fit(decisions: &[f64], labels: &[f64]) -> Result<PlattScaler> {
        if decisions.len() != labels.len() {
            return Err(SvmError::Degenerate(format!(
                "{} decisions vs {} labels",
                decisions.len(),
                labels.len()
            )));
        }
        let n_pos = labels.iter().filter(|&&y| y > 0.0).count();
        let n_neg = labels.len() - n_pos;
        if n_pos == 0 || n_neg == 0 {
            return Err(SvmError::Degenerate("Platt fit needs both classes".into()));
        }
        let t_pos = (n_pos as f64 + 1.0) / (n_pos as f64 + 2.0);
        let t_neg = 1.0 / (n_neg as f64 + 2.0);
        let targets: Vec<f64> = labels
            .iter()
            .map(|&y| if y > 0.0 { t_pos } else { t_neg })
            .collect();

        // Newton with backtracking on the negative log-likelihood.
        let mut a = 0.0f64;
        let mut b = ((n_neg as f64 + 1.0) / (n_pos as f64 + 1.0)).ln();
        let nll = |a: f64, b: f64| -> f64 {
            decisions
                .iter()
                .zip(&targets)
                .map(|(&f, &t)| {
                    let z = a * f + b;
                    // log(1 + e^z) − (1 − t)·(−z)… written stably:
                    if z >= 0.0 {
                        t * z + (1.0 + (-z).exp()).ln()
                    } else {
                        (t - 1.0) * z + (1.0 + z.exp()).ln()
                    }
                })
                .sum()
        };
        let mut current = nll(a, b);
        for _ in 0..100 {
            // Gradient and Hessian.
            let (mut ga, mut gb, mut haa, mut hab, mut hbb) = (0.0, 0.0, 1e-12, 0.0, 1e-12);
            for (&f, &t) in decisions.iter().zip(&targets) {
                let z = a * f + b;
                let p = if z >= 0.0 {
                    let e = (-z).exp();
                    e / (1.0 + e)
                } else {
                    1.0 / (1.0 + z.exp())
                }; // p = P(+1) = 1/(1+e^z)
                let d1 = t - p; // dNLL/dz with our sign convention
                let d2 = p * (1.0 - p);
                ga += f * d1;
                gb += d1;
                haa += f * f * d2;
                hab += f * d2;
                hbb += d2;
            }
            if ga.abs() < 1e-10 && gb.abs() < 1e-10 {
                break;
            }
            // Newton step: solve H d = -g.
            let det = haa * hbb - hab * hab;
            if det.abs() < 1e-18 {
                break;
            }
            let da = -(hbb * ga - hab * gb) / det;
            let db = -(haa * gb - hab * ga) / det;
            // Backtracking line search.
            let mut step = 1.0;
            let mut improved = false;
            for _ in 0..20 {
                let candidate = nll(a + step * da, b + step * db);
                if candidate < current - 1e-12 {
                    a += step * da;
                    b += step * db;
                    current = candidate;
                    improved = true;
                    break;
                }
                step *= 0.5;
            }
            if !improved {
                break;
            }
        }
        Ok(PlattScaler { a, b })
    }

    /// Fit directly from a decision function over a dataset.
    pub fn fit_model(data: &Dataset, decision: impl Fn(&[f64]) -> f64) -> Result<PlattScaler> {
        let decisions: Vec<f64> = data.iter().map(|(x, _)| decision(x)).collect();
        PlattScaler::fit(&decisions, data.labels())
    }

    /// Probability that the label is `+1` given a decision value.
    pub fn probability(&self, decision: f64) -> f64 {
        let z = self.a * decision + self.b;
        if z >= 0.0 {
            let e = (-z).exp();
            e / (1.0 + e)
        } else {
            1.0 / (1.0 + z.exp())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn noisy_decisions(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ds = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..n {
            ds.push(1.0 + rng.gen_range(-1.5..1.5));
            ys.push(1.0);
            ds.push(-1.0 + rng.gen_range(-1.5..1.5));
            ys.push(-1.0);
        }
        (ds, ys)
    }

    #[test]
    fn probabilities_are_monotone_in_decision_value() {
        let (d, y) = noisy_decisions(200, 1);
        let s = PlattScaler::fit(&d, &y).unwrap();
        let mut prev = s.probability(-5.0);
        for i in -9..=10 {
            let p = s.probability(i as f64 * 0.5);
            assert!(p >= prev - 1e-12, "not monotone at {i}");
            prev = p;
        }
    }

    #[test]
    fn large_decisions_map_near_extremes() {
        let (d, y) = noisy_decisions(300, 2);
        let s = PlattScaler::fit(&d, &y).unwrap();
        assert!(s.probability(10.0) > 0.95);
        assert!(s.probability(-10.0) < 0.05);
        assert!((0.0..=1.0).contains(&s.probability(0.0)));
    }

    #[test]
    fn calibration_is_roughly_accurate() {
        // For well-separated data with symmetric noise, P(+1 | f=0) ≈ 0.5.
        let (d, y) = noisy_decisions(500, 3);
        let s = PlattScaler::fit(&d, &y).unwrap();
        let p0 = s.probability(0.0);
        assert!((p0 - 0.5).abs() < 0.1, "P(+1|0) = {p0}");
        // Empirical check: mean predicted probability of positives is high.
        let mean_pos: f64 = d
            .iter()
            .zip(&y)
            .filter(|(_, &yy)| yy > 0.0)
            .map(|(&f, _)| s.probability(f))
            .sum::<f64>()
            / 500.0;
        assert!(mean_pos > 0.7, "mean positive prob {mean_pos}");
    }

    #[test]
    fn degenerate_inputs_rejected() {
        assert!(PlattScaler::fit(&[1.0, 2.0], &[1.0]).is_err());
        assert!(PlattScaler::fit(&[1.0, 2.0], &[1.0, 1.0]).is_err());
    }

    #[test]
    fn fit_model_convenience() {
        let data = Dataset::from_parts(
            vec![vec![1.0], vec![2.0], vec![-1.0], vec![-2.0]],
            vec![1.0, 1.0, -1.0, -1.0],
        )
        .unwrap();
        let s = PlattScaler::fit_model(&data, |x| x[0]).unwrap();
        assert!(s.probability(2.0) > s.probability(-2.0));
    }

    #[test]
    fn separable_data_does_not_blow_up() {
        // Perfectly separable decisions: smoothing must keep A finite.
        let d: Vec<f64> = (0..20).map(|i| if i < 10 { 3.0 } else { -3.0 }).collect();
        let y: Vec<f64> = (0..20).map(|i| if i < 10 { 1.0 } else { -1.0 }).collect();
        let s = PlattScaler::fit(&d, &y).unwrap();
        assert!(s.a.is_finite() && s.b.is_finite());
        assert!(s.probability(3.0) > 0.8);
        assert!(s.probability(-3.0) < 0.2);
    }

    #[test]
    fn serializes() {
        let s = PlattScaler { a: -1.5, b: 0.25 };
        let j = serde_json::to_string(&s).unwrap();
        let back: PlattScaler = serde_json::from_str(&j).unwrap();
        assert_eq!(s, back);
    }
}

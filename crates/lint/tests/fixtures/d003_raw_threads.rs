//@ crate: cluster
//@ path: crates/cluster/src/bad_d003.rs
//@ role: library

use std::sync::mpsc;
use std::thread;

/// Spawns its own workers instead of going through the exec pool, so the
/// thread count — and with it, scheduling — escapes ResolveRequest.
pub fn fan_out(n: usize) {
    let (tx, rx) = mpsc::channel(); //~ D003
    for i in 0..n {
        let tx = tx.clone();
        thread::spawn(move || { //~ D003
            let _ = tx.send(i);
        });
    }
    drop(tx);
    while rx.recv().is_ok() {}
}

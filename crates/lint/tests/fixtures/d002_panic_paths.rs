//@ crate: core
//@ path: crates/core/src/bad_d002.rs
//@ role: library

/// Panics on empty input instead of returning a typed error.
pub fn head(xs: &[f64]) -> f64 {
    let first = xs.first().unwrap(); //~ D002
    first + xs[0] //~ D002
}

/// Aborts on a branch the author believed unreachable.
pub fn pick(mode: u8) -> &'static str {
    match mode {
        0 => "resemblance",
        1 => "walk",
        _ => panic!("unknown mode {mode}"), //~ D002
    }
}

/// Message-carrying expect is still a panic path.
pub fn lookup(xs: &[f64], i: usize) -> f64 {
    *xs.get(i).expect("index out of range") //~ D002
}

#[cfg(test)]
mod tests {
    #[test]
    fn panics_in_test_code_are_fine() {
        let v = [1.0];
        assert_eq!(*v.first().unwrap(), v[0]);
        assert_eq!(super::pick(0), "resemblance");
    }
}

//! # distinct — the DISTINCT object-distinction methodology
//!
//! Reproduction of Yin, Han, Yu, *Object Distinction: Distinguishing
//! Objects with Identical Names* (ICDE 2007). Given a relational database
//! and a set of references sharing one textual name, DISTINCT splits the
//! references into clusters, one per real-world entity, using only the
//! linkage structure of the database:
//!
//! * per-join-path **set resemblance** of weighted neighbor tuples
//!   (Definition 2) and **random walk probability** (§2.4) —
//!   [`features`], backed by [`relgraph`];
//! * **supervised path weighting** from an automatically constructed
//!   training set of rare (hence unique) names — [`training`], [`learn`];
//! * **agglomerative clustering** under a composite cluster similarity
//!   (geometric mean of Average-Link resemblance and collective random
//!   walk), maintained incrementally across merges — [`refcluster`],
//!   backed by the [`cluster`] crate.
//!
//! Entry point: [`Distinct`] in [`pipeline`], driven by a
//! [`ResolveRequest`] / [`TrainRequest`] (see [`request`]). The six
//! comparison variants of the paper's Fig. 4 live in [`variants`];
//! Fig. 5-style reports in [`report`].
//!
//! ```no_run
//! use distinct::{Distinct, DistinctConfig, ResolveRequest};
//! # fn main() -> Result<(), distinct::DistinctError> {
//! # let catalog = relstore::Catalog::new();
//! let mut engine = Distinct::prepare(&catalog, "Publish", "author", DistinctConfig::default())?;
//! engine.train()?;
//! let refs = engine.references_of("Wei Wang");
//! let outcome = engine.resolve(&ResolveRequest::new(&refs));
//! println!("{} references -> {} authors", refs.len(), outcome.clustering.cluster_count());
//! # Ok(()) }
//! ```

#![warn(missing_docs)]

mod cache;

pub mod calibrate;
pub mod checkpoint;
pub mod config;
pub mod control;
pub mod dedupe;
pub mod features;
pub mod learn;
pub mod paths;
pub mod pipeline;
pub mod probe;
pub mod refcluster;
pub mod report;
pub mod request;
pub mod runmgr;
pub mod training;
pub mod update;
pub mod variants;

pub use calibrate::{
    calibrate_min_sim, synthesize_groups, CalibrationConfig, CalibrationResult, PseudoGroup,
};
pub use checkpoint::{CHECKPOINT_FORMAT_VERSION, CHECKPOINT_MAGIC, CHECKPOINT_MAGIC_PREFIX};
pub use config::{CompositeMode, DistinctConfig, MeasureMode, TrainingConfig, WeightingMode};
pub use control::{
    current_rss_bytes, peak_rss_bytes, CancelToken, InterruptKind, Progress, RunControl, Stage,
    TripHandle,
};
pub use dedupe::{DedupeOptions, EntityAssignment, NameResolution};
pub use features::{
    build_profile, build_profile_guarded, directed_walk_features, empty_profile,
    resemblance_features, resemblance_features_with, walk_features, weighted_sum, Profile,
};
pub use learn::{
    assemble_datasets, learn_weights, learn_weights_guarded, LearnedModel, PathWeights,
};
pub use paths::PathSet;
pub use pipeline::{Degraded, Distinct, DistinctError, ResolveOutcome, TrainingReport};
pub use probe::StageProbe;
pub use refcluster::{DistinctMerger, PairCounters};
pub use relgraph::{ConfigError, Resemblance, SketchConfig};
pub use report::{render_name_dot, render_name_report};
pub use request::{ExecReport, ResolveRequest, StageStats, TrainRequest};
pub use runmgr::{DurableOutcome, RunOptions, RunReport, UpdateStreamOutcome, RUN_FORMAT_VERSION};
pub use training::{
    build_training_set, featurize_pairs, PairFeatures, TrainingError, TrainingPair, TrainingSet,
};
pub use update::{UpdateReport, UpdateTuple};
pub use variants::{min_sim_grid, Variant};

//! Generator configuration.

use serde::{Deserialize, Serialize};

/// Specification of one planted ambiguous name (a "Wei Wang"): several
/// distinct real entities that share one author string.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AmbiguousSpec {
    /// The shared author name.
    pub name: String,
    /// Number of references (authorship records) for each entity sharing
    /// the name; the vector length is the number of entities.
    pub refs_per_entity: Vec<usize>,
}

impl AmbiguousSpec {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, refs_per_entity: Vec<usize>) -> Self {
        AmbiguousSpec {
            name: name.into(),
            refs_per_entity,
        }
    }

    /// Number of entities sharing the name.
    pub fn entities(&self) -> usize {
        self.refs_per_entity.len()
    }

    /// Total number of references.
    pub fn total_refs(&self) -> usize {
        self.refs_per_entity.iter().sum()
    }
}

/// Full configuration of the synthetic bibliographic world.
///
/// The defaults produce a laptop-scale world with the structural properties
/// DISTINCT relies on: community-structured coauthorship, venue affinity,
/// and Zipf-distributed name parts (so rare names exist for automatic
/// training-set construction).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorldConfig {
    /// RNG seed — the whole world is deterministic given the config.
    pub seed: u64,
    /// Number of ordinary (non-planted) authors.
    pub n_authors: usize,
    /// Number of venues (conferences).
    pub n_venues: usize,
    /// Number of research communities.
    pub n_communities: usize,
    /// Mean papers per ordinary author (geometric-ish; min 3, matching the
    /// paper's removal of authors with ≤ 2 papers).
    pub mean_papers_per_author: f64,
    /// Range of coauthors per paper, inclusive (total authors = this + 0/1).
    pub coauthors_per_paper: (usize, usize),
    /// Probability that a coauthor is drawn from the author's past
    /// collaborators rather than fresh from the community (collaboration
    /// stickiness; higher = tighter coauthor cliques).
    pub repeat_collaborator_prob: f64,
    /// Probability that a paper picks one coauthor from a *different*
    /// community — the cross-linkage noise that causes DISTINCT's mistakes
    /// in Fig. 5.
    pub cross_community_prob: f64,
    /// Probability a paper appears in one of its community's preferred
    /// venues (vs a uniformly random venue).
    pub venue_affinity: f64,
    /// Preferred venues per community.
    pub venues_per_community: usize,
    /// Publication year range, inclusive.
    pub year_range: (i64, i64),
    /// Size of the first-name pool (Zipf-distributed usage).
    pub first_name_pool: usize,
    /// Size of the last-name pool (Zipf-distributed usage).
    pub last_name_pool: usize,
    /// Zipf exponent for name pools (≈ 1.0 mimics real name frequencies).
    pub zipf_exponent: f64,
    /// Number of distinct publishers for the Conferences.publisher attribute.
    pub n_publishers: usize,
    /// Planted ambiguous names with ground truth.
    pub ambiguous: Vec<AmbiguousSpec>,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            seed: 42,
            n_authors: 2000,
            n_venues: 80,
            n_communities: 32,
            mean_papers_per_author: 6.0,
            coauthors_per_paper: (1, 4),
            repeat_collaborator_prob: 0.7,
            cross_community_prob: 0.08,
            venue_affinity: 0.85,
            venues_per_community: 3,
            year_range: (1990, 2006),
            first_name_pool: 400,
            last_name_pool: 900,
            zipf_exponent: 1.0,
            n_publishers: 6,
            ambiguous: Vec::new(),
        }
    }
}

impl WorldConfig {
    /// A small configuration for fast unit tests: scaled down from the
    /// default but with the venue/community sparsity that keeps entities
    /// distinguishable.
    pub fn tiny(seed: u64) -> Self {
        WorldConfig {
            seed,
            n_authors: 250,
            n_venues: 24,
            n_communities: 10,
            mean_papers_per_author: 5.0,
            first_name_pool: 50,
            last_name_pool: 100,
            ..Default::default()
        }
    }

    /// Paper-scale DBLP: approximately the snapshot the paper evaluates on
    /// (§5 — 127,023 authors after dropping those with ≤ 2 papers, ~616K
    /// papers, ~1.29M authorship records; ≈ 2.1 authors per byline and
    /// ≈ 10.2 records per author), with the Table 1 ambiguous names
    /// planted. Communities are sized so each holds ~160 authors,
    /// mirroring research-group granularity. Generate in release builds
    /// only; prefer [`crate::WorldStream`] + [`crate::stream_to_catalog`]
    /// to avoid materializing the paper list.
    pub fn paper_scale(seed: u64) -> Self {
        WorldConfig {
            seed,
            n_authors: 127_000,
            n_venues: 600,
            n_communities: 800,
            mean_papers_per_author: 10.2,
            coauthors_per_paper: (0, 2),
            venues_per_community: 4,
            year_range: (1970, 2006),
            first_name_pool: 6_000,
            last_name_pool: 30_000,
            ambiguous: Self::table1_ambiguous(),
            ..Default::default()
        }
    }

    /// The ten ambiguous names of the paper's Table 1 with their
    /// (#authors, #references) profile, distributed across entities with a
    /// realistic skew (one dominant entity per name, like the UNC Wei Wang
    /// holding 57 of 141 references).
    pub fn table1_ambiguous() -> Vec<AmbiguousSpec> {
        fn split(total: usize, entities: usize) -> Vec<usize> {
            // Deterministic skewed split: entity k gets a share ∝ 1/(k+1),
            // with a minimum of 2 references, remainder to the largest.
            assert!(entities >= 1 && total >= 2 * entities);
            let weights: Vec<f64> = (0..entities).map(|k| 1.0 / (k as f64 + 1.0)).collect();
            let wsum: f64 = weights.iter().sum();
            let mut out: Vec<usize> = weights
                .iter()
                .map(|w| ((total as f64) * w / wsum).floor().max(2.0) as usize)
                .collect();
            let assigned: usize = out.iter().sum();
            // Push any remainder (or deficit) onto the largest entity.
            if assigned <= total {
                out[0] += total - assigned; // distinct-lint: allow(D002, reason="entities >= 1 is asserted at entry, so out has a first element; dev-only generator crate")
            } else {
                out[0] -= assigned - total; // distinct-lint: allow(D002, reason="entities >= 1 is asserted at entry, so out has a first element; dev-only generator crate")
            }
            out
        }
        vec![
            AmbiguousSpec::new("Hui Fang", split(9, 3)),
            AmbiguousSpec::new("Ajay Gupta", split(16, 4)),
            AmbiguousSpec::new("Joseph Hellerstein", split(151, 2)),
            AmbiguousSpec::new("Rakesh Kumar", split(36, 2)),
            AmbiguousSpec::new("Michael Wagner", split(29, 5)),
            AmbiguousSpec::new("Bing Liu", split(89, 6)),
            AmbiguousSpec::new("Jim Smith", split(19, 3)),
            AmbiguousSpec::new("Lei Wang", split(55, 13)),
            AmbiguousSpec::new("Wei Wang", split(141, 14)),
            AmbiguousSpec::new("Bin Yu", split(44, 5)),
        ]
    }

    /// Validate structural constraints; returns a description of the first
    /// violation, if any.
    pub fn validate(&self) -> Result<(), String> {
        if self.n_communities == 0 {
            return Err("need at least one community".into());
        }
        if self.n_venues < self.venues_per_community {
            return Err("venues_per_community exceeds n_venues".into());
        }
        if self.coauthors_per_paper.0 > self.coauthors_per_paper.1 {
            return Err("coauthors_per_paper range is inverted".into());
        }
        if self.year_range.0 > self.year_range.1 {
            return Err("year_range is inverted".into());
        }
        for p in [
            ("repeat_collaborator_prob", self.repeat_collaborator_prob),
            ("cross_community_prob", self.cross_community_prob),
            ("venue_affinity", self.venue_affinity),
        ] {
            if !(0.0..=1.0).contains(&p.1) {
                return Err(format!("{} must be in [0, 1]", p.0));
            }
        }
        for a in &self.ambiguous {
            if a.refs_per_entity.is_empty() {
                return Err(format!("ambiguous name `{}` has no entities", a.name));
            }
            if a.refs_per_entity.contains(&0) {
                return Err(format!("ambiguous name `{}` has a zero-ref entity", a.name));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        WorldConfig::default().validate().unwrap();
        WorldConfig::tiny(1).validate().unwrap();
        WorldConfig::paper_scale(1).validate().unwrap();
    }

    #[test]
    fn paper_scale_targets_the_dblp_snapshot() {
        let c = WorldConfig::paper_scale(2007);
        assert_eq!(c.n_authors, 127_000);
        // Mean records per author and byline width land near the paper's
        // 1.29M records over ~616K papers.
        assert!((c.mean_papers_per_author - 10.2).abs() < 1e-9);
        assert_eq!(c.coauthors_per_paper, (0, 2));
        // Table 1 names ride along with ground truth.
        assert_eq!(c.ambiguous.len(), 10);
        let total: usize = c.ambiguous.iter().map(|a| a.total_refs()).sum();
        assert_eq!(total, 9 + 16 + 151 + 36 + 29 + 89 + 19 + 55 + 141 + 44);
    }

    #[test]
    fn table1_profile_matches_paper() {
        let specs = WorldConfig::table1_ambiguous();
        assert_eq!(specs.len(), 10);
        let by_name: std::collections::HashMap<&str, &AmbiguousSpec> =
            specs.iter().map(|s| (s.name.as_str(), s)).collect();
        // (#authors, #refs) pairs from Table 1.
        for (name, authors, refs) in [
            ("Hui Fang", 3, 9),
            ("Ajay Gupta", 4, 16),
            ("Joseph Hellerstein", 2, 151),
            ("Rakesh Kumar", 2, 36),
            ("Michael Wagner", 5, 29),
            ("Bing Liu", 6, 89),
            ("Jim Smith", 3, 19),
            ("Lei Wang", 13, 55),
            ("Wei Wang", 14, 141),
            ("Bin Yu", 5, 44),
        ] {
            let s = by_name[name];
            assert_eq!(s.entities(), authors, "{name}");
            assert_eq!(s.total_refs(), refs, "{name}");
            assert!(s.refs_per_entity.iter().all(|&r| r >= 2), "{name}");
        }
    }

    #[test]
    fn table1_split_is_skewed() {
        let specs = WorldConfig::table1_ambiguous();
        let wei = specs.iter().find(|s| s.name == "Wei Wang").unwrap();
        // Dominant entity holds far more than the smallest.
        let max = *wei.refs_per_entity.iter().max().unwrap();
        let min = *wei.refs_per_entity.iter().min().unwrap();
        assert!(max >= 10 * min / 2, "max {max}, min {min}");
        assert!(
            max >= 40,
            "dominant Wei Wang should hold a large share, got {max}"
        );
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut c = WorldConfig::default();
        c.n_communities = 0;
        assert!(c.validate().is_err());

        let mut c = WorldConfig::default();
        c.venue_affinity = 1.5;
        assert!(c.validate().is_err());

        let mut c = WorldConfig::default();
        c.coauthors_per_paper = (4, 1);
        assert!(c.validate().is_err());

        let mut c = WorldConfig::default();
        c.ambiguous.push(AmbiguousSpec::new("X", vec![]));
        assert!(c.validate().is_err());

        let mut c = WorldConfig::default();
        c.ambiguous.push(AmbiguousSpec::new("X", vec![3, 0]));
        assert!(c.validate().is_err());
    }

    #[test]
    fn spec_accessors() {
        let s = AmbiguousSpec::new("A B", vec![5, 3]);
        assert_eq!(s.entities(), 2);
        assert_eq!(s.total_refs(), 8);
    }

    #[test]
    fn config_serializes() {
        let c = WorldConfig::default();
        let j = serde_json::to_string(&c).unwrap();
        let back: WorldConfig = serde_json::from_str(&j).unwrap();
        assert_eq!(c, back);
    }
}

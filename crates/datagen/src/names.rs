//! Name pools with Zipf-distributed usage.
//!
//! Real name frequencies are heavy-tailed: a few first names ("Wei",
//! "John") are very common, most are rare. DISTINCT's automatic training
//! set construction depends on that tail — a name whose first *and* last
//! parts are rare is assumed unique (§3) — so the generator must reproduce
//! it. Names are synthesized deterministically from indexed syllables and
//! drawn with a hand-rolled Zipf sampler.

use rand::Rng;

/// A discrete Zipf sampler over ranks `0..n` with exponent `s`:
/// `P(k) ∝ 1 / (k + 1)^s`, via an inverse-CDF table.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a sampler over `n` ranks (n ≥ 1) with exponent `s` (≥ 0).
    ///
    /// # Panics
    /// Panics on `n == 0` or a negative/non-finite exponent.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n >= 1, "Zipf needs at least one rank");
        assert!(
            s >= 0.0 && s.is_finite(),
            "Zipf exponent must be finite and >= 0"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in cdf.iter_mut() {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True if there is exactly one rank (degenerate but allowed).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Draw a rank.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Probability of rank `k`.
    pub fn prob(&self, k: usize) -> f64 {
        if k == 0 {
            self.cdf[0] // distinct-lint: allow(D002, reason="the constructor builds cdf with one entry per rank and rejects empty pools; dev-only generator crate")
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }
}

/// Deterministic synthetic name for an index: pronounceable-ish, unique
/// per index, stable across runs.
fn synth_name(index: usize, starts: &[&str], mids: &[&str], ends: &[&str]) -> String {
    let s = starts[index % starts.len()];
    let m = mids[(index / starts.len()) % mids.len()];
    let e = ends[(index / (starts.len() * mids.len())) % ends.len()];
    let mut name = format!("{s}{m}{e}");
    // Disambiguate overflow indexes beyond the syllable product space.
    let space = starts.len() * mids.len() * ends.len();
    if index >= space {
        name.push_str(&format!("{}", index / space + 1));
    }
    // Capitalize.
    let mut chars = name.chars();
    match chars.next() {
        Some(c) => c.to_uppercase().collect::<String>() + chars.as_str(),
        None => name,
    }
}

/// A pool of first names with Zipf-distributed sampling.
#[derive(Debug, Clone)]
pub struct NamePool {
    names: Vec<String>,
    zipf: Zipf,
}

const FIRST_STARTS: &[&str] = &[
    "wei", "jo", "mi", "an", "li", "ra", "da", "su", "ke", "ta", "ni", "pa", "ha", "mo", "el",
];
const FIRST_MIDS: &[&str] = &["n", "r", "v", "l", "s", "m", "d", "th"];
const FIRST_ENDS: &[&str] = &["a", "en", "iel", "ong", "ia", "o", "us", "ik"];

const LAST_STARTS: &[&str] = &[
    "wang", "smi", "gar", "mul", "pet", "kov", "tan", "rossi", "yama", "lee", "nov", "fer", "hor",
    "bla", "qui",
];
const LAST_MIDS: &[&str] = &["th", "ne", "ll", "rs", "ck", "mp", "nd", "st"];
const LAST_ENDS: &[&str] = &["son", "ez", "ov", "aki", "er", "ini", "sen", "u"];

impl NamePool {
    /// A pool of `n` first names.
    pub fn first_names(n: usize, zipf_exponent: f64) -> Self {
        let names = (0..n)
            .map(|i| synth_name(i, FIRST_STARTS, FIRST_MIDS, FIRST_ENDS))
            .collect();
        NamePool {
            names,
            zipf: Zipf::new(n, zipf_exponent),
        }
    }

    /// A pool of `n` last names.
    pub fn last_names(n: usize, zipf_exponent: f64) -> Self {
        let names = (0..n)
            .map(|i| synth_name(i, LAST_STARTS, LAST_MIDS, LAST_ENDS))
            .collect();
        NamePool {
            names,
            zipf: Zipf::new(n, zipf_exponent),
        }
    }

    /// Number of names in the pool.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if the pool is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Draw a name index (Zipf over popularity rank).
    pub fn sample_index<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        self.zipf.sample(rng)
    }

    /// The name at an index.
    pub fn name(&self, index: usize) -> &str {
        &self.names[index]
    }

    /// Draw a name.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> &str {
        let i = self.sample_index(rng);
        self.name(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_cdf_is_normalized_and_monotone() {
        let z = Zipf::new(50, 1.0);
        assert_eq!(z.len(), 50);
        let mut total = 0.0;
        for k in 0..50 {
            let p = z.prob(k);
            assert!(p > 0.0);
            if k > 0 {
                // Probabilities are non-increasing in rank.
                assert!(p <= z.prob(k - 1) + 1e-15);
            }
            total += p;
        }
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zipf_rank_zero_dominates() {
        let z = Zipf::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = vec![0usize; 100];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        // Rank 0 should be sampled far more than rank 50.
        assert!(counts[0] > 10 * counts[50].max(1));
        // Empirical frequency of rank 0 ≈ its probability.
        let emp = counts[0] as f64 / 20_000.0;
        assert!((emp - z.prob(0)).abs() < 0.02, "emp {emp} vs {}", z.prob(0));
    }

    #[test]
    fn zipf_exponent_zero_is_uniform() {
        let z = Zipf::new(4, 0.0);
        for k in 0..4 {
            assert!((z.prob(k) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zipf_zero_ranks_panics() {
        Zipf::new(0, 1.0);
    }

    #[test]
    fn names_are_unique_and_capitalized() {
        let pool = NamePool::first_names(500, 1.0);
        assert_eq!(pool.len(), 500);
        let set: std::collections::HashSet<&str> = (0..pool.len()).map(|i| pool.name(i)).collect();
        assert_eq!(set.len(), 500, "names must be unique");
        for i in 0..pool.len() {
            let n = pool.name(i);
            assert!(n.chars().next().unwrap().is_uppercase(), "{n}");
        }
    }

    #[test]
    fn first_and_last_pools_do_not_collide() {
        let f = NamePool::first_names(100, 1.0);
        let l = NamePool::last_names(100, 1.0);
        let fs: std::collections::HashSet<&str> = (0..100).map(|i| f.name(i)).collect();
        for i in 0..100 {
            assert!(!fs.contains(l.name(i)), "collision: {}", l.name(i));
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let pool = NamePool::last_names(80, 1.0);
        let draw = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..10)
                .map(|_| pool.sample(&mut rng).to_string())
                .collect::<Vec<_>>()
        };
        assert_eq!(draw(5), draw(5));
        assert_ne!(draw(5), draw(6));
    }

    #[test]
    fn tail_names_exist() {
        // With a Zipf pool, high-rank (rare) names should be sampled at
        // least occasionally across many draws — the training-set builder
        // depends on the tail being populated.
        let pool = NamePool::first_names(60, 1.0);
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..5_000 {
            seen.insert(pool.sample_index(&mut rng));
        }
        assert!(
            seen.len() > 40,
            "only {} distinct ranks sampled",
            seen.len()
        );
    }
}

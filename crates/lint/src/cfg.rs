//! Statement-level control-flow graph recovery over the token stream.
//!
//! The lexer gives us tokens, [`crate::model`] gives us function spans;
//! this module splits a function body into statements and wires
//! successor edges so the [`crate::dataflow`] framework can run forward
//! analyses with real flow-sensitivity instead of "whole body" facts.
//!
//! Recovery is deliberately coarse — it works on tokens, not an AST:
//!
//! - A statement ends at a `;` outside parentheses, or at a `{` that
//!   opens a block (the header becomes one statement, the block's
//!   contents are split recursively and flattened in source order).
//! - `for`/`while`/`loop` headers get a back edge from the last body
//!   statement and a bypass edge to the statement after the construct.
//! - `if`/`else`/`match` headers get a bypass edge to the statement
//!   after the construct (the not-taken path).
//! - Everything else (closures, struct literals, match arms) is
//!   linearized: over-approximate for may-analyses, which is the safe
//!   direction for every lint built on this.

use crate::lexer::TokKind;
use crate::model::{FileCtx, FnSpan};

/// One recovered statement: a half-open token range plus its first line.
#[derive(Debug, Clone)]
pub struct Stmt {
    /// First token index (inclusive).
    pub lo: usize,
    /// One past the last token index.
    pub hi: usize,
    /// 1-based line of the first code token.
    pub line: u32,
}

/// A function body's statement-level control-flow graph.
#[derive(Debug)]
pub struct Cfg {
    /// Statements in source order (ranges are disjoint and sorted).
    pub stmts: Vec<Stmt>,
    /// `succ[i]` — indices of statements control may flow to from `i`.
    pub succ: Vec<Vec<usize>>,
}

impl Cfg {
    /// Build the CFG for `f`'s body. Bodiless functions get an empty CFG.
    pub fn build(ctx: &FileCtx, f: &FnSpan) -> Cfg {
        let mut b = Builder {
            ctx,
            stmts: Vec::new(),
            edges: Vec::new(),
        };
        if f.body_start < f.end {
            b.block(f.body_start + 1, f.end.saturating_sub(1));
        }
        let n = b.stmts.len();
        let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
        // Source-order fallthrough between flattened statements.
        for i in 0..n.saturating_sub(1) {
            succ[i].push(i + 1);
        }
        for (from, to) in b.edges {
            if from < n && to < n && !succ[from].contains(&to) {
                succ[from].push(to);
            }
        }
        Cfg {
            stmts: b.stmts,
            succ,
        }
    }

    /// The statement containing token index `idx`, if any.
    pub fn stmt_of(&self, idx: usize) -> Option<usize> {
        self.stmts.iter().position(|s| s.lo <= idx && idx < s.hi)
    }
}

struct Builder<'a> {
    ctx: &'a FileCtx,
    stmts: Vec<Stmt>,
    /// Extra (non-fallthrough) edges: loop back edges and branch bypasses.
    edges: Vec<(usize, usize)>,
}

impl Builder<'_> {
    fn push_stmt(&mut self, lo: usize, hi: usize, pending: &mut Vec<usize>) -> usize {
        let toks = &self.ctx.toks;
        let line = toks[lo..hi]
            .iter()
            .find(|t| !matches!(t.kind, TokKind::Comment | TokKind::DocComment))
            .map(|t| t.line)
            .unwrap_or_else(|| toks[lo].line);
        let idx = self.stmts.len();
        // Drain branch-bypass / loop-skip edges aimed at "whatever comes
        // after the construct" — that is this statement.
        for from in pending.drain(..) {
            self.edges.push((from, idx));
        }
        self.stmts.push(Stmt { lo, hi, line });
        idx
    }

    /// Split `[lo, hi)` into statements. Returns the index of the last
    /// statement appended for this range, if any.
    fn block(&mut self, lo: usize, hi: usize) -> Option<usize> {
        let toks = &self.ctx.toks;
        let mut pending: Vec<usize> = Vec::new();
        let mut last: Option<usize> = None;
        let mut i = lo;
        while i < hi {
            if matches!(toks[i].kind, TokKind::Comment | TokKind::DocComment) {
                i += 1;
                continue;
            }
            let start = i;
            let mut paren = 0i32;
            let mut is_loop = false;
            let mut is_branch = false;
            let mut j = i;
            let mut outcome = Outcome::RunsToEnd;
            while j < hi {
                let t = &toks[j];
                if matches!(t.kind, TokKind::Comment | TokKind::DocComment) {
                    j += 1;
                    continue;
                }
                if t.is_punct('(') || t.is_punct('[') {
                    paren += 1;
                } else if t.is_punct(')') || t.is_punct(']') {
                    paren -= 1;
                } else if paren == 0 && t.kind == TokKind::Ident {
                    match t.text.as_str() {
                        "for" | "while" | "loop" => is_loop = true,
                        "if" | "match" | "else" => is_branch = true,
                        _ => {}
                    }
                } else if paren == 0 && t.is_punct('{') {
                    outcome = Outcome::Block(j);
                    break;
                } else if paren == 0 && t.is_punct(';') {
                    outcome = Outcome::Semi(j);
                    break;
                }
                j += 1;
            }
            match outcome {
                Outcome::Semi(semi) => {
                    last = Some(self.push_stmt(start, semi + 1, &mut pending));
                    i = semi + 1;
                }
                Outcome::RunsToEnd => {
                    last = Some(self.push_stmt(start, hi, &mut pending));
                    i = hi;
                }
                Outcome::Block(open) => {
                    let header = self.push_stmt(start, open + 1, &mut pending);
                    last = Some(header);
                    let close = match_brace_from(self.ctx, open, hi);
                    let body_last = self.block(open + 1, close);
                    if is_loop {
                        if let Some(bl) = body_last {
                            self.edges.push((bl, header));
                        }
                    }
                    if is_loop || is_branch {
                        // The construct may not run (zero iterations, the
                        // not-taken branch): edge to whatever comes next.
                        pending.push(header);
                    }
                    if let Some(bl) = body_last {
                        last = Some(bl);
                    }
                    i = close.saturating_add(1);
                }
            }
        }
        // Leftover bypass edges exit the block; the enclosing fallthrough
        // edge from this block's last statement covers that path.
        last
    }
}

enum Outcome {
    Semi(usize),
    Block(usize),
    RunsToEnd,
}

/// Matching `}` for the `{` at `open`, clamped to `hi`.
pub(crate) fn match_brace_from(ctx: &FileCtx, open: usize, hi: usize) -> usize {
    let toks = &ctx.toks;
    let mut depth = 0i32;
    let mut k = open;
    while k < hi.min(toks.len()) {
        let t = &toks[k];
        if matches!(t.kind, TokKind::Comment | TokKind::DocComment) {
            k += 1;
            continue;
        }
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return k;
            }
        }
        k += 1;
    }
    hi.min(toks.len()).saturating_sub(1).max(open)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Role;
    use crate::parse;

    fn cfg_of(body: &str) -> (FileCtx, Cfg) {
        let src = format!("fn f() {{ {body} }}");
        let ctx = FileCtx::new("crates/core/src/x.rs", "core", Role::Library, &src);
        assert_eq!(ctx.fns.len(), 1, "test fn not recovered");
        let span = ctx.fns[0].clone();
        let cfg = Cfg::build(&ctx, &span);
        (ctx, cfg)
    }

    #[test]
    fn straight_line_statements_chain() {
        let (_, cfg) = cfg_of("let a = 1; let b = a + 1; use_it(b);");
        assert_eq!(cfg.stmts.len(), 3);
        assert_eq!(cfg.succ[0], vec![1]);
        assert_eq!(cfg.succ[1], vec![2]);
        assert!(cfg.succ[2].is_empty());
    }

    #[test]
    fn loop_gets_back_edge_and_bypass() {
        let (_, cfg) = cfg_of("let a = 1;\nfor i in 0..3 { work(i); }\nafter();");
        // stmts: let / for-header / work / after
        assert_eq!(cfg.stmts.len(), 4, "{:?}", cfg.stmts);
        // back edge: body -> header
        assert!(cfg.succ[2].contains(&1), "{:?}", cfg.succ);
        // bypass: header -> after
        assert!(cfg.succ[1].contains(&3), "{:?}", cfg.succ);
    }

    #[test]
    fn if_gets_bypass_edge() {
        let (_, cfg) = cfg_of("if c { inside(); }\nafter();");
        assert_eq!(cfg.stmts.len(), 3);
        assert!(cfg.succ[0].contains(&1)); // taken
        assert!(cfg.succ[0].contains(&2)); // not taken
    }

    #[test]
    fn stmt_of_maps_tokens_to_statements() {
        let (ctx, cfg) = cfg_of("let a = 1; touch(a);");
        let fns = parse::parse_fns(&ctx);
        let call = fns[0].facts.calls.iter().find(|c| c.name == "touch");
        let idx = call.expect("call recovered").idx;
        assert_eq!(cfg.stmt_of(idx), Some(1));
    }
}

//! A small relational-algebra query layer over a catalog.
//!
//! Select (σ), project (π), natural-style equi-joins (⋈), order-by, and
//! limit, evaluated eagerly into a [`Rows`] result. This is the query
//! surface a downstream user of the substrate needs for inspecting
//! databases and debugging resolutions — e.g. "all papers of the authors
//! that DISTINCT put in group 3, by year". Joins use the catalog's hash
//! indexes when the join column is a key or an indexed foreign key.

use crate::catalog::Catalog;
use crate::error::{Result, StoreError};
use crate::relation::Relation;
use crate::tuple::RelId;
use crate::value::Value;
use std::cmp::Ordering;
use std::fmt;

/// A predicate over a single column.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Column equals the value.
    Eq(Value),
    /// Column differs from the value (nulls excluded).
    Ne(Value),
    /// Column is strictly less than the value (same type; nulls excluded).
    Lt(Value),
    /// Column is strictly greater than the value (same type; nulls excluded).
    Gt(Value),
    /// Column is null.
    IsNull,
    /// Column is not null.
    NotNull,
}

impl Predicate {
    fn matches(&self, v: &Value) -> bool {
        match self {
            Predicate::Eq(x) => v == x,
            Predicate::Ne(x) => !v.is_null() && v != x,
            Predicate::Lt(x) => !v.is_null() && v < x,
            Predicate::Gt(x) => !v.is_null() && v > x,
            Predicate::IsNull => v.is_null(),
            Predicate::NotNull => !v.is_null(),
        }
    }
}

/// An eagerly materialized result set.
#[derive(Debug, Clone, PartialEq)]
pub struct Rows {
    /// Output column names.
    pub columns: Vec<String>,
    /// Row values, positionally matching `columns`.
    pub rows: Vec<Vec<Value>>,
}

impl Rows {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the result is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Index of a column by name.
    pub fn column(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }
}

impl fmt::Display for Rows {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.columns.join(" | "))?;
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(Value::to_string).collect();
            writeln!(f, "{}", cells.join(" | "))?;
        }
        Ok(())
    }
}

/// A fluent query over one relation, with optional joins.
///
/// ```
/// use relstore::{AttrType, Catalog, Predicate, Query, SchemaBuilder, Value};
/// let mut db = Catalog::new();
/// db.add_relation(SchemaBuilder::new("Papers")
///     .key("paper", AttrType::Int)
///     .data("year", AttrType::Int)
///     .build()?)?;
/// db.insert("Papers", [Value::Int(1), Value::Int(1997)].into())?;
/// db.insert("Papers", [Value::Int(2), Value::Int(2003)].into())?;
/// db.finalize(true)?;
/// let rows = Query::new(&db, "Papers")?
///     .filter("year", Predicate::Gt(Value::Int(2000)))
///     .project(&["paper"])
///     .run()?;
/// assert_eq!(rows.len(), 1);
/// # Ok::<(), relstore::StoreError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Query<'a> {
    catalog: &'a Catalog,
    base: RelId,
    /// (column name in output namespace, predicate)
    filters: Vec<(String, Predicate)>,
    /// (left output column, target relation, prefix for its columns)
    joins: Vec<(String, RelId, String)>,
    projection: Option<Vec<String>>,
    order_by: Option<(String, bool)>,
    limit: Option<usize>,
}

impl<'a> Query<'a> {
    /// Start a query over `relation`.
    pub fn new(catalog: &'a Catalog, relation: &str) -> Result<Query<'a>> {
        let base = catalog
            .relation_id(relation)
            .ok_or_else(|| StoreError::UnknownRelation(relation.to_string()))?;
        Ok(Query {
            catalog,
            base,
            filters: Vec::new(),
            joins: Vec::new(),
            projection: None,
            order_by: None,
            limit: None,
        })
    }

    /// Add a filter on an output column (base columns use their plain
    /// names; joined columns use `prefix.name`).
    pub fn filter(mut self, column: impl Into<String>, predicate: Predicate) -> Self {
        self.filters.push((column.into(), predicate));
        self
    }

    /// Equi-join: for each row, look up the tuple of `target` whose key
    /// equals the row's `on_column` value; the target's columns join the
    /// output namespace as `prefix.name`. Rows with no match are dropped
    /// (inner join).
    pub fn join(
        mut self,
        on_column: impl Into<String>,
        target: &str,
        prefix: impl Into<String>,
    ) -> Result<Self> {
        let rid = self
            .catalog
            .relation_id(target)
            .ok_or_else(|| StoreError::UnknownRelation(target.to_string()))?;
        if self.catalog.relation(rid).schema().key_index().is_none() {
            return Err(StoreError::InvalidJoinPath(format!(
                "join target `{target}` has no key"
            )));
        }
        self.joins.push((on_column.into(), rid, prefix.into()));
        Ok(self)
    }

    /// Keep only the named output columns, in order.
    pub fn project(mut self, columns: &[&str]) -> Self {
        self.projection = Some(columns.iter().map(|s| s.to_string()).collect());
        self
    }

    /// Sort by an output column (`ascending = false` for descending).
    /// Nulls sort first.
    pub fn order_by(mut self, column: impl Into<String>, ascending: bool) -> Self {
        self.order_by = Some((column.into(), ascending));
        self
    }

    /// Keep at most `n` rows (applied after ordering).
    pub fn limit(mut self, n: usize) -> Self {
        self.limit = Some(n);
        self
    }

    /// Evaluate the query.
    pub fn run(self) -> Result<Rows> {
        // Build the output schema: base columns, then each join's columns.
        let base_rel = self.catalog.relation(self.base);
        let mut columns: Vec<String> = base_rel
            .schema()
            .attributes
            .iter()
            .map(|a| a.name.clone())
            .collect();
        for (_, rid, prefix) in &self.joins {
            for a in &self.catalog.relation(*rid).schema().attributes {
                columns.push(format!("{prefix}.{}", a.name));
            }
        }
        let col_index = |name: &str| -> Result<usize> {
            columns
                .iter()
                .position(|c| c == name)
                .ok_or_else(|| StoreError::UnknownAttribute {
                    relation: base_rel.name().to_string(),
                    attribute: name.to_string(),
                })
        };

        // Pre-resolve filter/join/order columns.
        let filters: Vec<(usize, &Predicate)> = self
            .filters
            .iter()
            .map(|(c, p)| Ok((col_index(c)?, p)))
            .collect::<Result<_>>()?;
        let joins: Vec<(usize, RelId)> = {
            // Join columns resolve against the namespace available at the
            // time of the join (base + earlier joins), which is a prefix of
            // the full namespace, so resolving against the full one is fine.
            self.joins
                .iter()
                .map(|(c, rid, _)| Ok((col_index(c)?, *rid)))
                .collect::<Result<Vec<_>>>()?
        };

        // Materialize.
        let mut rows: Vec<Vec<Value>> = Vec::new();
        'tuples: for (_, t) in base_rel.iter() {
            let mut row: Vec<Value> = t.values().to_vec();
            for &(col, rid) in &joins {
                let key = &row[col];
                let target: &Relation = self.catalog.relation(rid);
                match (!key.is_null()).then(|| target.by_key(key)).flatten() {
                    Some(tid) => row.extend(target.tuple(tid).values().iter().cloned()),
                    None => continue 'tuples, // inner join: drop the row
                }
            }
            if filters.iter().all(|(col, p)| p.matches(&row[*col])) {
                rows.push(row);
            }
        }

        // Order.
        if let Some((col_name, ascending)) = &self.order_by {
            let col = col_index(col_name)?;
            rows.sort_by(|a, b| {
                let ord = a[col].cmp(&b[col]);
                if *ascending {
                    ord
                } else {
                    ord.reverse()
                }
            });
        } else {
            // Deterministic output regardless of hash iteration anywhere.
            rows.sort_by(|a, b| {
                for (x, y) in a.iter().zip(b) {
                    match x.cmp(y) {
                        Ordering::Equal => continue,
                        other => return other,
                    }
                }
                Ordering::Equal
            });
        }
        if let Some(n) = self.limit {
            rows.truncate(n);
        }

        // Project.
        if let Some(projection) = &self.projection {
            let idxs: Vec<usize> = projection
                .iter()
                .map(|c| col_index(c))
                .collect::<Result<_>>()?;
            let projected: Vec<Vec<Value>> = rows
                .into_iter()
                .map(|row| idxs.iter().map(|&i| row[i].clone()).collect())
                .collect();
            return Ok(Rows {
                columns: projection.clone(),
                rows: projected,
            });
        }
        Ok(Rows { columns, rows })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::SchemaBuilder;
    use crate::value::AttrType;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_relation(
            SchemaBuilder::new("Venues")
                .key("venue", AttrType::Str)
                .data("tier", AttrType::Int)
                .build()
                .unwrap(),
        )
        .unwrap();
        c.add_relation(
            SchemaBuilder::new("Papers")
                .key("paper", AttrType::Int)
                .fk("venue", AttrType::Str, "Venues")
                .data("year", AttrType::Int)
                .build()
                .unwrap(),
        )
        .unwrap();
        for (v, t) in [("VLDB", 1), ("KDD", 1), ("WS", 3)] {
            c.insert("Venues", [Value::str(v), Value::Int(t)].into())
                .unwrap();
        }
        for (p, v, y) in [
            (1, "VLDB", 1997i64),
            (2, "KDD", 2002),
            (3, "VLDB", 2003),
            (4, "WS", 2003),
        ] {
            c.insert(
                "Papers",
                [Value::Int(p), Value::str(v), Value::Int(y)].into(),
            )
            .unwrap();
        }
        c.finalize(true).unwrap();
        c
    }

    #[test]
    fn select_all() {
        let c = catalog();
        let rows = Query::new(&c, "Papers").unwrap().run().unwrap();
        assert_eq!(rows.len(), 4);
        assert_eq!(rows.columns, vec!["paper", "venue", "year"]);
        assert!(!rows.is_empty());
    }

    #[test]
    fn filters_combine_with_and() {
        let c = catalog();
        let rows = Query::new(&c, "Papers")
            .unwrap()
            .filter("venue", Predicate::Eq(Value::str("VLDB")))
            .filter("year", Predicate::Gt(Value::Int(2000)))
            .run()
            .unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows.rows[0][0], Value::Int(3));
    }

    #[test]
    fn predicate_variants() {
        let c = catalog();
        let count = |p: Predicate| {
            Query::new(&c, "Papers")
                .unwrap()
                .filter("year", p)
                .run()
                .unwrap()
                .len()
        };
        assert_eq!(count(Predicate::Eq(Value::Int(2003))), 2);
        assert_eq!(count(Predicate::Ne(Value::Int(2003))), 2);
        assert_eq!(count(Predicate::Lt(Value::Int(2002))), 1);
        assert_eq!(count(Predicate::Gt(Value::Int(1997))), 3);
        assert_eq!(count(Predicate::IsNull), 0);
        assert_eq!(count(Predicate::NotNull), 4);
    }

    #[test]
    fn join_brings_in_prefixed_columns() {
        let c = catalog();
        let rows = Query::new(&c, "Papers")
            .unwrap()
            .join("venue", "Venues", "v")
            .unwrap()
            .filter("v.tier", Predicate::Eq(Value::Int(1)))
            .project(&["paper", "v.venue", "v.tier"])
            .run()
            .unwrap();
        assert_eq!(rows.columns, vec!["paper", "v.venue", "v.tier"]);
        assert_eq!(rows.len(), 3); // papers 1, 2, 3 (WS is tier 3)
    }

    #[test]
    fn order_and_limit() {
        let c = catalog();
        let rows = Query::new(&c, "Papers")
            .unwrap()
            .order_by("year", false)
            .limit(2)
            .project(&["paper"])
            .run()
            .unwrap();
        assert_eq!(rows.len(), 2);
        // Years 2003, 2003 come first (papers 3 and 4 in some stable order).
        let papers: Vec<i64> = rows.rows.iter().map(|r| r[0].as_int().unwrap()).collect();
        assert!(papers.contains(&3) || papers.contains(&4));
    }

    #[test]
    fn unknown_names_error() {
        let c = catalog();
        assert!(Query::new(&c, "Nope").is_err());
        assert!(Query::new(&c, "Papers")
            .unwrap()
            .filter("nope", Predicate::NotNull)
            .run()
            .is_err());
        assert!(Query::new(&c, "Papers")
            .unwrap()
            .join("venue", "Nope", "x")
            .is_err());
        assert!(Query::new(&c, "Papers")
            .unwrap()
            .project(&["nope"])
            .run()
            .is_err());
    }

    #[test]
    fn inner_join_drops_dangling_rows() {
        let mut c = catalog();
        c.insert(
            "Papers",
            [Value::Int(9), Value::Null, Value::Int(2004)].into(),
        )
        .unwrap();
        c.finalize(false).unwrap();
        let rows = Query::new(&c, "Papers")
            .unwrap()
            .join("venue", "Venues", "v")
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(rows.len(), 4, "null-venue paper must be dropped");
    }

    #[test]
    fn display_renders_rows() {
        let c = catalog();
        let rows = Query::new(&c, "Venues").unwrap().run().unwrap();
        let s = rows.to_string();
        assert!(s.contains("venue | tier"));
        assert!(s.contains("VLDB | 1"));
    }

    #[test]
    fn column_lookup() {
        let c = catalog();
        let rows = Query::new(&c, "Papers").unwrap().run().unwrap();
        assert_eq!(rows.column("year"), Some(2));
        assert_eq!(rows.column("nope"), None);
    }
}

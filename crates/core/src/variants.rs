//! The six method variants compared in Fig. 4.
//!
//! 1. **DISTINCT** — supervised weighting, combined measure, fixed
//!    `min-sim` (0.0005);
//! 2. **unsupervised combined** — DISTINCT without supervised learning;
//! 3. **supervised set resemblance** — one measure, learned weights;
//! 4. **supervised random walk** — one measure, learned weights;
//! 5. **unsupervised set resemblance** — the approach of \[1\];
//! 6. **unsupervised random walk** — the approach of \[9\].
//!
//! Per the paper, every approach except DISTINCT gets the `min-sim` that
//! maximizes its average accuracy (a sweep), so differences reflect the
//! method, not a lucky threshold.

use crate::config::{DistinctConfig, MeasureMode, WeightingMode};
use serde::{Deserialize, Serialize};

/// One of the six compared variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Variant {
    /// Full DISTINCT.
    Distinct,
    /// Combined measure, uniform weights.
    UnsupervisedCombined,
    /// Set resemblance only, learned weights.
    SupervisedResemblance,
    /// Random walk only, learned weights.
    SupervisedWalk,
    /// Set resemblance only, uniform weights (\[1\]).
    UnsupervisedResemblance,
    /// Random walk only, uniform weights (\[9\]).
    UnsupervisedWalk,
}

impl Variant {
    /// All six variants, in the paper's Fig. 4 order.
    pub fn all() -> [Variant; 6] {
        [
            Variant::Distinct,
            Variant::UnsupervisedCombined,
            Variant::SupervisedResemblance,
            Variant::SupervisedWalk,
            Variant::UnsupervisedResemblance,
            Variant::UnsupervisedWalk,
        ]
    }

    /// Display label matching the paper's legend.
    pub fn label(self) -> &'static str {
        match self {
            Variant::Distinct => "DISTINCT",
            Variant::UnsupervisedCombined => "Unsupervised combined measure",
            Variant::SupervisedResemblance => "Supervised set resemblance",
            Variant::SupervisedWalk => "Supervised random walk",
            Variant::UnsupervisedResemblance => "Unsupervised set resemblance",
            Variant::UnsupervisedWalk => "Unsupervised random walk",
        }
    }

    /// Whether the variant trains SVM path weights.
    pub fn supervised(self) -> bool {
        matches!(
            self,
            Variant::Distinct | Variant::SupervisedResemblance | Variant::SupervisedWalk
        )
    }

    /// Whether the variant's `min-sim` is swept (every one but DISTINCT).
    pub fn sweeps_min_sim(self) -> bool {
        self != Variant::Distinct
    }

    /// Derive this variant's configuration from a base configuration
    /// (keeping path length, training parameters, and expansion settings).
    pub fn config(self, base: &DistinctConfig) -> DistinctConfig {
        let mut c = base.clone();
        c.measure = match self {
            Variant::Distinct | Variant::UnsupervisedCombined => MeasureMode::Combined,
            Variant::SupervisedResemblance | Variant::UnsupervisedResemblance => {
                MeasureMode::SetResemblance
            }
            Variant::SupervisedWalk | Variant::UnsupervisedWalk => MeasureMode::RandomWalk,
        };
        c.weighting = if self.supervised() {
            WeightingMode::Supervised
        } else {
            WeightingMode::Uniform
        };
        c
    }
}

impl std::fmt::Display for Variant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The default grid of `min-sim` values swept for the non-DISTINCT
/// variants (log-spaced; brackets the paper's 0.0005 from both sides).
pub fn min_sim_grid() -> Vec<f64> {
    vec![
        1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 2e-4, 5e-4, 1e-3, 2e-3, 5e-3, 1e-2, 2e-2, 5e-2, 1e-1, 2e-1,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_variants_with_unique_labels() {
        let all = Variant::all();
        assert_eq!(all.len(), 6);
        let labels: std::collections::HashSet<&str> = all.iter().map(|v| v.label()).collect();
        assert_eq!(labels.len(), 6);
        assert_eq!(all[0].to_string(), "DISTINCT");
    }

    #[test]
    fn supervision_flags() {
        assert!(Variant::Distinct.supervised());
        assert!(Variant::SupervisedWalk.supervised());
        assert!(!Variant::UnsupervisedCombined.supervised());
        assert!(!Variant::UnsupervisedResemblance.supervised());
    }

    #[test]
    fn only_distinct_uses_fixed_threshold() {
        for v in Variant::all() {
            assert_eq!(v.sweeps_min_sim(), v != Variant::Distinct);
        }
    }

    #[test]
    fn config_derivation() {
        let base = DistinctConfig::default();
        let c = Variant::UnsupervisedResemblance.config(&base);
        assert_eq!(c.measure, MeasureMode::SetResemblance);
        assert_eq!(c.weighting, WeightingMode::Uniform);
        assert_eq!(c.max_path_len, base.max_path_len);

        let c = Variant::SupervisedWalk.config(&base);
        assert_eq!(c.measure, MeasureMode::RandomWalk);
        assert_eq!(c.weighting, WeightingMode::Supervised);

        let c = Variant::Distinct.config(&base);
        assert_eq!(c.measure, MeasureMode::Combined);
        assert_eq!(c.weighting, WeightingMode::Supervised);
    }

    #[test]
    fn grid_is_sorted_and_brackets_paper_threshold() {
        let g = min_sim_grid();
        assert!(g.windows(2).all(|w| w[0] < w[1]));
        assert!(g.contains(&5e-4));
        assert!(g[0] < 5e-4 && *g.last().unwrap() > 5e-4);
    }
}

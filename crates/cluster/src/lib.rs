//! # cluster — agglomerative hierarchical clustering framework
//!
//! DISTINCT clusters references bottom-up: every reference starts as a
//! singleton and the most similar pair of clusters merges until no pair
//! reaches `min-sim` (paper §4). This crate provides that engine in a
//! reusable form:
//!
//! * [`agglomerate`] — the merge loop, driven by a lazy max-heap of
//!   candidate pairs, with deterministic tie-breaking;
//! * [`Merger`] — the extension point: supplies cluster-pair similarities
//!   and maintains them *incrementally* across merges (§4.2). DISTINCT's
//!   composite resemblance × random-walk measure implements this trait in
//!   the `distinct` crate;
//! * [`MatrixMerger`] + [`Linkage`] — the textbook matrix algorithm
//!   (single / complete / average link) used by baselines and ablations;
//! * [`Dendrogram`] — merge history with threshold cuts;
//! * [`ConstrainedMerger`] — must-link / cannot-link enforcement around
//!   any merger (user-feedback loops in entity resolution).

#![warn(missing_docs)]

pub mod components;
pub mod constraints;
pub mod dendrogram;
pub mod engine;
pub mod linkage;

pub use components::{compose, connected_components, ComponentClustering};
pub use constraints::ConstrainedMerger;
pub use dendrogram::{groups, Dendrogram, Merge};
pub use engine::{
    agglomerate, agglomerate_exec, agglomerate_guarded, Clustering, MatrixMerger, Merger,
    PartialClustering,
};
pub use linkage::Linkage;

//! Experiment T2 — regenerate **Table 2**: per-name precision / recall /
//! f-measure of full DISTINCT (supervised weighting + combined measure) at
//! the fixed calibrated `min-sim`, next to the paper's reported values.
//!
//! Run: `cargo run --release -p distinct-bench --bin exp_table2`

use distinct::{Distinct, DistinctConfig};
use distinct_bench::{build_dataset, evaluate_name, PAPER_TABLE2, STANDARD_SEED};
use eval::{f3, Align, PhaseTimer, Table};

fn main() {
    let mut timer = PhaseTimer::new();
    let dataset = timer.time("generate world", || build_dataset(STANDARD_SEED));
    let config = DistinctConfig::default();
    let min_sim = config.min_sim;
    let mut engine = timer.time("prepare engine (expand + paths + graph)", || {
        Distinct::prepare(&dataset.catalog, "Publish", "author", config).expect("prepare")
    });
    let report = timer.time("training set + SVM (paper: 62.1 s at DBLP scale)", || {
        engine.train().expect("train")
    });
    println!(
        "training: {} unique names, {}+{} pairs, resem acc {:.3}, walk acc {:.3}\n",
        report.unique_names,
        report.positives,
        report.negatives,
        report.resem_accuracy,
        report.walk_accuracy
    );

    let results: Vec<_> = timer.time("resolve 10 names", || {
        dataset
            .truths
            .iter()
            .map(|t| evaluate_name(&engine, t, min_sim))
            .collect()
    });

    let mut table = Table::new(
        &[
            "Name",
            "precision",
            "recall",
            "f-measure",
            "paper p",
            "paper r",
            "paper f",
        ],
        &[
            Align::Left,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
        ],
    )
    .with_title(format!(
        "Table 2. Accuracy for distinguishing references (min-sim = {min_sim})"
    ));
    let mut sum = (0.0, 0.0, 0.0);
    for r in &results {
        let paper = PAPER_TABLE2.iter().find(|p| p.name == r.name);
        table.row(vec![
            r.name.clone(),
            f3(r.scores.precision),
            f3(r.scores.recall),
            f3(r.scores.f_measure),
            paper.map_or_else(String::new, |p| f3(p.precision)),
            paper.map_or_else(String::new, |p| f3(p.recall)),
            paper.map_or_else(String::new, |p| f3(p.f_measure)),
        ]);
        sum.0 += r.scores.precision;
        sum.1 += r.scores.recall;
        sum.2 += r.scores.f_measure;
    }
    let n = results.len() as f64;
    let paper_avg = (
        PAPER_TABLE2.iter().map(|p| p.precision).sum::<f64>() / PAPER_TABLE2.len() as f64,
        PAPER_TABLE2.iter().map(|p| p.recall).sum::<f64>() / PAPER_TABLE2.len() as f64,
        PAPER_TABLE2.iter().map(|p| p.f_measure).sum::<f64>() / PAPER_TABLE2.len() as f64,
    );
    table.row(vec![
        "average".into(),
        f3(sum.0 / n),
        f3(sum.1 / n),
        f3(sum.2 / n),
        f3(paper_avg.0),
        f3(paper_avg.1),
        f3(paper_avg.2),
    ]);
    println!("{}", table.render());

    let perfect_precision = results
        .iter()
        .filter(|r| r.scores.precision >= 0.9999)
        .count();
    println!(
        "names with no false positive: {perfect_precision} / {} (paper: 7 / 10)",
        results.len()
    );
    println!("\n{}", timer.report());
}

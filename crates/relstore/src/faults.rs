//! Deterministic I/O fault injection for persistence testing.
//!
//! All persistence writes go through a [`Vfs`]; production code uses
//! [`StdVfs`] (plain `std::fs`), while tests wrap it in a [`FaultyVfs`]
//! driven by a [`FaultPlan`] of seeded failures:
//!
//! * **fail** — the Nth write returns an I/O error with nothing written
//!   (full disk, pulled drive);
//! * **torn** — the Nth write persists only a prefix of the bytes and then
//!   errors (crash mid-write); the prefix length is derived from the plan
//!   seed, so runs are reproducible;
//! * **bit flip** — the Nth write silently persists the payload with one
//!   bit inverted (disk rot); the write *succeeds*, and the corruption
//!   must be caught later at load time by checksums.
//!
//! Writes are counted across the whole plan lifetime, so a multi-file save
//! can be killed at any chosen point (schema, a relation body, the
//! manifest commit record).

use std::io;
use std::path::Path;

/// Minimal filesystem surface used by persistence.
///
/// `&mut self` throughout: fault-injecting implementations count
/// operations.
pub trait Vfs {
    /// Write `bytes` to `path`, replacing any existing file.
    fn write(&mut self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Read the full contents of `path`.
    fn read(&mut self, path: &Path) -> io::Result<Vec<u8>>;
    /// Atomically rename `from` to `to` (same directory).
    fn rename(&mut self, from: &Path, to: &Path) -> io::Result<()>;
    /// Create `path` and all missing parents.
    fn create_dir_all(&mut self, path: &Path) -> io::Result<()>;
}

/// The real filesystem.
#[derive(Debug, Default, Clone, Copy)]
pub struct StdVfs;

impl Vfs for StdVfs {
    fn write(&mut self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        std::fs::write(path, bytes)
    }
    fn read(&mut self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }
    fn rename(&mut self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }
    fn create_dir_all(&mut self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }
}

/// What to do to a chosen write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Error out before writing anything.
    Fail,
    /// Persist only a seeded-length prefix, then error (crash mid-write).
    Torn,
    /// Flip one seeded bit and report success (silent corruption).
    BitFlip,
}

/// One injected fault: applied to the `nth` write (1-based) issued through
/// the [`FaultyVfs`].
#[derive(Debug, Clone, Copy)]
pub struct Fault {
    /// 1-based index of the targeted write.
    pub nth_write: u64,
    /// What happens to it.
    pub kind: FaultKind,
}

/// A deterministic schedule of injected faults.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    faults: Vec<Fault>,
    seed: u64,
}

impl FaultPlan {
    /// An empty plan (no faults) with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            faults: Vec::new(),
            seed,
        }
    }

    /// Add a fault on the `nth` write (1-based).
    pub fn with_fault(mut self, nth_write: u64, kind: FaultKind) -> Self {
        self.faults.push(Fault { nth_write, kind });
        self
    }

    /// Shorthand: fail the `nth` write outright.
    pub fn fail_nth_write(n: u64) -> Self {
        FaultPlan::new(0).with_fault(n, FaultKind::Fail)
    }

    /// Shorthand: tear the `nth` write (seed controls the prefix length).
    pub fn torn_nth_write(n: u64, seed: u64) -> Self {
        FaultPlan::new(seed).with_fault(n, FaultKind::Torn)
    }

    /// Shorthand: flip one bit in the `nth` write (seed picks the bit).
    pub fn bit_flip_nth_write(n: u64, seed: u64) -> Self {
        FaultPlan::new(seed).with_fault(n, FaultKind::BitFlip)
    }

    fn fault_for(&self, write_index: u64) -> Option<FaultKind> {
        self.faults
            .iter()
            .find(|f| f.nth_write == write_index)
            .map(|f| f.kind)
    }
}

/// A [`Vfs`] that injects the faults of a [`FaultPlan`] into an inner Vfs.
#[derive(Debug)]
pub struct FaultyVfs<V: Vfs = StdVfs> {
    inner: V,
    plan: FaultPlan,
    writes: u64,
}

impl FaultyVfs<StdVfs> {
    /// Inject `plan` over the real filesystem.
    pub fn new(plan: FaultPlan) -> Self {
        FaultyVfs {
            inner: StdVfs,
            plan,
            writes: 0,
        }
    }
}

impl<V: Vfs> FaultyVfs<V> {
    /// Inject `plan` over an arbitrary inner Vfs.
    pub fn over(inner: V, plan: FaultPlan) -> Self {
        FaultyVfs {
            inner,
            plan,
            writes: 0,
        }
    }

    /// Writes attempted so far (used to size exhaustive kill sweeps).
    pub fn writes_attempted(&self) -> u64 {
        self.writes
    }

    /// Deterministic value in `[0, bound)` derived from the plan seed and
    /// the write index (splitmix64 finalizer — good avalanche, no state).
    fn mix(&self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let mut z = self
            .plan
            .seed
            .wrapping_add(self.writes.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        (z ^ (z >> 31)) % bound
    }
}

impl<V: Vfs> Vfs for FaultyVfs<V> {
    fn write(&mut self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        self.writes += 1;
        match self.plan.fault_for(self.writes) {
            None => self.inner.write(path, bytes),
            Some(FaultKind::Fail) => Err(io::Error::other(format!(
                "injected failure on write #{}",
                self.writes
            ))),
            Some(FaultKind::Torn) => {
                let keep = if bytes.is_empty() {
                    0
                } else {
                    self.mix(bytes.len() as u64) as usize
                };
                self.inner.write(path, &bytes[..keep])?;
                Err(io::Error::other(format!(
                    "injected torn write #{} ({} of {} bytes persisted)",
                    self.writes,
                    keep,
                    bytes.len()
                )))
            }
            Some(FaultKind::BitFlip) => {
                let mut corrupted = bytes.to_vec();
                if !corrupted.is_empty() {
                    let bit = self.mix(corrupted.len() as u64 * 8);
                    corrupted[(bit / 8) as usize] ^= 1 << (bit % 8);
                }
                self.inner.write(path, &corrupted)
            }
        }
    }

    fn read(&mut self, path: &Path) -> io::Result<Vec<u8>> {
        self.inner.read(path)
    }

    fn rename(&mut self, from: &Path, to: &Path) -> io::Result<()> {
        self.inner.rename(from, to)
    }

    fn create_dir_all(&mut self, path: &Path) -> io::Result<()> {
        self.inner.create_dir_all(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("relstore_faults_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn nth_write_fails_and_leaves_no_file() {
        let dir = tmp("fail");
        let mut vfs = FaultyVfs::new(FaultPlan::fail_nth_write(2));
        vfs.write(&dir.join("a"), b"first").unwrap();
        assert!(vfs.write(&dir.join("b"), b"second").is_err());
        assert!(dir.join("a").exists());
        assert!(!dir.join("b").exists());
        vfs.write(&dir.join("c"), b"third").unwrap();
        assert_eq!(vfs.writes_attempted(), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_write_persists_a_strict_prefix() {
        let dir = tmp("torn");
        let payload = b"0123456789abcdef";
        for seed in 0..16 {
            let mut vfs = FaultyVfs::new(FaultPlan::torn_nth_write(1, seed));
            let path = dir.join(format!("t{seed}"));
            assert!(vfs.write(&path, payload).is_err());
            let on_disk = std::fs::read(&path).unwrap();
            assert!(on_disk.len() < payload.len());
            assert_eq!(&payload[..on_disk.len()], &on_disk[..]);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_flip_succeeds_with_exactly_one_bit_changed() {
        let dir = tmp("flip");
        let payload = b"the quick brown fox";
        for seed in 0..16 {
            let mut vfs = FaultyVfs::new(FaultPlan::bit_flip_nth_write(1, seed));
            let path = dir.join(format!("f{seed}"));
            vfs.write(&path, payload).unwrap();
            let on_disk = std::fs::read(&path).unwrap();
            assert_eq!(on_disk.len(), payload.len());
            let flipped: u32 = payload
                .iter()
                .zip(&on_disk)
                .map(|(a, b)| (a ^ b).count_ones())
                .sum();
            assert_eq!(flipped, 1, "seed {seed}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn faults_are_deterministic_per_seed() {
        let dir = tmp("det");
        let payload = b"determinism matters";
        let read_after = |seed: u64, tag: &str| {
            let mut vfs = FaultyVfs::new(FaultPlan::bit_flip_nth_write(1, seed));
            let path = dir.join(format!("d{seed}_{tag}"));
            vfs.write(&path, payload).unwrap();
            std::fs::read(&path).unwrap()
        };
        assert_eq!(read_after(7, "a"), read_after(7, "b"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

//! Relation storage: typed tuple arrays plus key and secondary hash indexes.

use crate::error::{Result, StoreError};
use crate::fxhash::FxHashMap;
use crate::schema::RelationSchema;
use crate::tuple::{Tuple, TupleId};
use crate::value::Value;

/// One stored relation: its schema, tuples, and indexes.
///
/// The key attribute (if declared) is always indexed and uniqueness is
/// enforced on insert. Additional attributes can be indexed on demand with
/// [`Relation::build_index`]; foreign-key attributes are indexed by the
/// catalog when linkage is finalized, since reverse foreign-key traversal
/// (`target -> referrers`) is the hot operation of join-path propagation.
#[derive(Debug, Clone)]
pub struct Relation {
    schema: RelationSchema,
    tuples: Vec<Tuple>,
    /// Unique index on the key attribute (if the schema declares one).
    key_index: FxHashMap<Value, TupleId>,
    /// Secondary (non-unique) indexes: attribute position -> value -> tuple ids.
    secondary: FxHashMap<usize, FxHashMap<Value, Vec<TupleId>>>,
}

impl Relation {
    /// Create an empty relation with the given schema.
    pub fn new(schema: RelationSchema) -> Self {
        Relation {
            schema,
            tuples: Vec::new(),
            key_index: FxHashMap::default(),
            secondary: FxHashMap::default(),
        }
    }

    /// The relation's schema.
    pub fn schema(&self) -> &RelationSchema {
        &self.schema
    }

    /// The relation's name.
    pub fn name(&self) -> &str {
        &self.schema.name
    }

    /// Number of stored tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True if no tuples are stored.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Insert a tuple, validating arity, types, and key uniqueness.
    pub fn insert(&mut self, tuple: Tuple) -> Result<TupleId> {
        if tuple.arity() != self.schema.arity() {
            return Err(StoreError::ArityMismatch {
                relation: self.schema.name.clone(),
                expected: self.schema.arity(),
                got: tuple.arity(),
            });
        }
        // distinct-lint: allow(D104, reason="validation loop bounded by the schema arity (a handful of attributes per tuple); callers charge per tuple")
        for (i, attr) in self.schema.attributes.iter().enumerate() {
            let v = tuple.get(i);
            if !v.matches(attr.ty) {
                return Err(StoreError::TypeMismatch {
                    relation: self.schema.name.clone(),
                    attribute: attr.name.clone(),
                    expected: attr.ty.to_string(),
                    got: v
                        .attr_type()
                        .map(|t| t.to_string())
                        .unwrap_or_else(|| "null".into()),
                });
            }
        }
        let tid = TupleId(self.tuples.len() as u32);
        if let Some(k) = self.schema.key_index() {
            let key = tuple.get(k).clone();
            if key.is_null() {
                return Err(StoreError::TypeMismatch {
                    relation: self.schema.name.clone(),
                    attribute: self.schema.attributes[k].name.clone(),
                    expected: "non-null key".into(),
                    got: "null".into(),
                });
            }
            if self.key_index.contains_key(&key) {
                return Err(StoreError::DuplicateKey {
                    relation: self.schema.name.clone(),
                    key: key.to_string(),
                });
            }
            self.key_index.insert(key, tid); // distinct-lint: allow(D113, reason="primary-key index holds one entry per stored tuple for the corpus lifetime; dropped with the relation")
        }
        // Maintain any already-built secondary indexes. Iteration order over
        // the index map is irrelevant: each pass touches a different index,
        // and within one index the posting order follows tuple insertion.
        // distinct-lint: allow(D001, reason="independent per-index updates; posting order follows tuple insertion, not hash order")
        for (attr, index) in self.secondary.iter_mut() {
            let v = tuple.get(*attr);
            if !v.is_null() {
                index.entry(v.clone()).or_default().push(tid);
            }
        }
        // distinct-lint: allow(D113, reason="tuple storage is the reference corpus itself: insert-only by design, freed when the relation is dropped")
        self.tuples.push(tuple);
        Ok(tid)
    }

    /// The tuple with the given id.
    #[inline]
    pub fn tuple(&self, tid: TupleId) -> &Tuple {
        &self.tuples[tid.index()]
    }

    /// All tuples with their ids, in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (TupleId, &Tuple)> {
        self.tuples
            .iter()
            .enumerate()
            .map(|(i, t)| (TupleId(i as u32), t))
    }

    /// Look up a tuple by key value (requires a key attribute).
    pub fn by_key(&self, key: &Value) -> Option<TupleId> {
        self.key_index.get(key).copied()
    }

    /// Build (or rebuild) a secondary index on the attribute at `attr`.
    ///
    /// Null values are not indexed.
    pub fn build_index(&mut self, attr: usize) {
        let mut index: FxHashMap<Value, Vec<TupleId>> = FxHashMap::default();
        for (i, t) in self.tuples.iter().enumerate() {
            let v = t.get(attr);
            if !v.is_null() {
                index.entry(v.clone()).or_default().push(TupleId(i as u32));
            }
        }
        // distinct-lint: allow(D113, reason="one index per attribute, bounded by the schema arity; entries mirror stored tuples and live as long as the relation")
        self.secondary.insert(attr, index);
    }

    /// True if a secondary index exists on attribute `attr`.
    pub fn has_index(&self, attr: usize) -> bool {
        self.secondary.contains_key(&attr)
    }

    /// Tuples whose attribute `attr` equals `value`.
    ///
    /// Uses the secondary index when one exists, otherwise scans. The key
    /// attribute is answered from the unique key index.
    pub fn lookup(&self, attr: usize, value: &Value) -> Vec<TupleId> {
        if Some(attr) == self.schema.key_index() {
            return self.by_key(value).into_iter().collect();
        }
        if let Some(index) = self.secondary.get(&attr) {
            return index.get(value).cloned().unwrap_or_default();
        }
        self.iter()
            .filter(|(_, t)| t.get(attr) == value)
            .map(|(tid, _)| tid)
            .collect()
    }

    /// Number of tuples whose attribute `attr` equals `value` (fanout).
    pub fn lookup_count(&self, attr: usize, value: &Value) -> usize {
        if Some(attr) == self.schema.key_index() {
            return usize::from(self.by_key(value).is_some());
        }
        if let Some(index) = self.secondary.get(&attr) {
            return index.get(value).map_or(0, Vec::len);
        }
        self.iter().filter(|(_, t)| t.get(attr) == value).count()
    }

    /// Distinct non-null values of attribute `attr`, with their multiplicity.
    pub fn value_counts(&self, attr: usize) -> FxHashMap<Value, usize> {
        let mut counts: FxHashMap<Value, usize> = FxHashMap::default();
        for (_, t) in self.iter() {
            let v = t.get(attr);
            if !v.is_null() {
                *counts.entry(v.clone()).or_insert(0) += 1;
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::SchemaBuilder;
    use crate::value::AttrType;

    fn sample() -> Relation {
        let schema = SchemaBuilder::new("Proceedings")
            .key("proc_key", AttrType::Int)
            .fk("conference", AttrType::Str, "Conferences")
            .data("year", AttrType::Int)
            .build()
            .unwrap();
        let mut r = Relation::new(schema);
        r.insert([Value::Int(1), Value::str("VLDB"), Value::Int(1997)].into())
            .unwrap();
        r.insert([Value::Int(2), Value::str("SIGMOD"), Value::Int(2002)].into())
            .unwrap();
        r.insert([Value::Int(3), Value::str("VLDB"), Value::Int(2003)].into())
            .unwrap();
        r
    }

    #[test]
    fn insert_and_read_back() {
        let r = sample();
        assert_eq!(r.len(), 3);
        assert!(!r.is_empty());
        assert_eq!(r.tuple(TupleId(0)).get(1).as_str(), Some("VLDB"));
        assert_eq!(r.name(), "Proceedings");
    }

    #[test]
    fn key_lookup_and_uniqueness() {
        let mut r = sample();
        assert_eq!(r.by_key(&Value::Int(2)), Some(TupleId(1)));
        assert_eq!(r.by_key(&Value::Int(99)), None);
        let dup = r.insert([Value::Int(1), Value::str("KDD"), Value::Int(2004)].into());
        assert!(matches!(dup, Err(StoreError::DuplicateKey { .. })));
    }

    #[test]
    fn arity_and_type_validation() {
        let mut r = sample();
        let bad_arity = r.insert(Tuple::new(vec![Value::Int(9)]));
        assert!(matches!(bad_arity, Err(StoreError::ArityMismatch { .. })));
        let bad_type = r.insert([Value::str("oops"), Value::str("VLDB"), Value::Int(1997)].into());
        assert!(matches!(bad_type, Err(StoreError::TypeMismatch { .. })));
    }

    #[test]
    fn null_key_rejected() {
        let mut r = sample();
        let res = r.insert([Value::Null, Value::str("VLDB"), Value::Int(2000)].into());
        assert!(res.is_err());
    }

    #[test]
    fn scan_lookup_without_index() {
        let r = sample();
        assert!(!r.has_index(1));
        let hits = r.lookup(1, &Value::str("VLDB"));
        assert_eq!(hits, vec![TupleId(0), TupleId(2)]);
        assert_eq!(r.lookup_count(1, &Value::str("VLDB")), 2);
        assert_eq!(r.lookup_count(1, &Value::str("ICDE")), 0);
    }

    #[test]
    fn indexed_lookup_matches_scan() {
        let mut r = sample();
        let scan = r.lookup(1, &Value::str("VLDB"));
        r.build_index(1);
        assert!(r.has_index(1));
        assert_eq!(r.lookup(1, &Value::str("VLDB")), scan);
        assert_eq!(r.lookup_count(1, &Value::str("VLDB")), 2);
    }

    #[test]
    fn index_maintained_on_insert() {
        let mut r = sample();
        r.build_index(1);
        r.insert([Value::Int(4), Value::str("VLDB"), Value::Int(2005)].into())
            .unwrap();
        assert_eq!(r.lookup(1, &Value::str("VLDB")).len(), 3);
    }

    #[test]
    fn key_attr_lookup_goes_through_key_index() {
        let r = sample();
        assert_eq!(r.lookup(0, &Value::Int(3)), vec![TupleId(2)]);
        assert_eq!(r.lookup_count(0, &Value::Int(3)), 1);
    }

    #[test]
    fn value_counts() {
        let r = sample();
        let counts = r.value_counts(1);
        assert_eq!(counts.get(&Value::str("VLDB")), Some(&2));
        assert_eq!(counts.get(&Value::str("SIGMOD")), Some(&1));
        assert_eq!(counts.len(), 2);
    }

    #[test]
    fn nulls_not_indexed() {
        let schema = SchemaBuilder::new("R")
            .data("x", AttrType::Str)
            .build()
            .unwrap();
        let mut r = Relation::new(schema);
        r.insert(Tuple::new(vec![Value::Null])).unwrap();
        r.insert(Tuple::new(vec![Value::str("a")])).unwrap();
        r.build_index(0);
        assert_eq!(r.lookup(0, &Value::str("a")).len(), 1);
        assert!(r.value_counts(0).len() == 1);
    }
}

//! Cooperative execution control: cancellation, deadlines, work budgets.
//!
//! A [`RunControl`] travels with a pipeline invocation and is consulted at
//! stage boundaries and inside the hot loops (probability propagation, SMO
//! training, agglomerative merging). The lower crates stay independent of
//! this type: they accept a plain `FnMut(u64) -> bool` *guard* closure, and
//! [`RunControl::guard`] produces one that charges the shared budget.
//!
//! Work units are deliberately coarse — one unit per frontier entry
//! propagated, per SMO outer-loop iteration, per candidate-pair similarity
//! — so a budget bounds CPU time roughly linearly without the loops paying
//! more than an atomic add per check. Deadline reads of the wall clock are
//! amortized to once every [`DEADLINE_STRIDE`] charges.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How many `charge` calls elapse between wall-clock deadline reads.
const DEADLINE_STRIDE: u64 = 256;

/// A cloneable handle that requests cancellation of a run.
///
/// Hand a clone to another thread (a ctrl-C handler, a supervisor); the
/// running pipeline observes the flag at its next control check.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// Pipeline stages, for interruption reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // variant names are self-describing
pub enum Stage {
    TrainingSet,
    Profiles,
    SimilarityMatrix,
    SvmTraining,
    Clustering,
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Stage::TrainingSet => "training-set construction",
            Stage::Profiles => "profile computation",
            Stage::SimilarityMatrix => "pairwise similarity matrix",
            Stage::SvmTraining => "SVM training",
            Stage::Clustering => "agglomerative clustering",
        })
    }
}

/// How far a stage had progressed when it was interrupted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Progress {
    /// Items completed (profiles built, pairs featurized, ...).
    pub done: usize,
    /// Items the stage set out to process.
    pub total: usize,
}

impl fmt::Display for Progress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.done, self.total)
    }
}

/// Why a run was interrupted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterruptKind {
    /// The [`CancelToken`] was triggered.
    Cancelled,
    /// The wall-clock deadline passed.
    DeadlineExceeded,
    /// The work budget ran out.
    BudgetExhausted,
}

impl fmt::Display for InterruptKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            InterruptKind::Cancelled => "cancelled",
            InterruptKind::DeadlineExceeded => "deadline exceeded",
            InterruptKind::BudgetExhausted => "work budget exhausted",
        })
    }
}

/// Execution limits for one pipeline invocation.
///
/// ```
/// use distinct::RunControl;
/// use std::time::Duration;
/// let ctl = RunControl::new()
///     .with_deadline(Duration::from_secs(30))
///     .with_budget(5_000_000);
/// let token = ctl.token(); // hand to another thread to cancel
/// assert!(ctl.status().is_none());
/// # let _ = token;
/// ```
#[derive(Debug)]
pub struct RunControl {
    cancel: CancelToken,
    deadline: Option<Instant>,
    budget: Option<u64>,
    spent: AtomicU64,
    // Trips latch: once interrupted, every later check reports the same
    // kind, so a run's error consistently names the first cause.
    tripped: AtomicU64, // 0 = none, else InterruptKind discriminant + 1
    charges: AtomicU64,
}

impl Default for RunControl {
    fn default() -> Self {
        Self::new()
    }
}

impl RunControl {
    /// No limits: never interrupts (cancellation still possible via
    /// [`RunControl::token`]).
    pub fn new() -> Self {
        RunControl {
            cancel: CancelToken::new(),
            deadline: None,
            budget: None,
            spent: AtomicU64::new(0),
            tripped: AtomicU64::new(0),
            charges: AtomicU64::new(0),
        }
    }

    /// Limit wall-clock time, measured from this call.
    pub fn with_deadline(mut self, limit: Duration) -> Self {
        self.deadline = Some(Instant::now() + limit);
        self
    }

    /// Limit total work units across all stages.
    pub fn with_budget(mut self, units: u64) -> Self {
        self.budget = Some(units);
        self
    }

    /// Attach an external cancellation token.
    pub fn with_token(mut self, token: CancelToken) -> Self {
        self.cancel = token;
        self
    }

    /// A handle that cancels this run when triggered.
    pub fn token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Work units consumed so far.
    pub fn spent(&self) -> u64 {
        self.spent.load(Ordering::Relaxed)
    }

    fn latch(&self, kind: InterruptKind) -> InterruptKind {
        let code = match kind {
            InterruptKind::Cancelled => 1,
            InterruptKind::DeadlineExceeded => 2,
            InterruptKind::BudgetExhausted => 3,
        };
        match self
            .tripped
            .compare_exchange(0, code, Ordering::Relaxed, Ordering::Relaxed)
        {
            Ok(_) => kind,
            Err(prev) => Self::decode(prev).unwrap_or(kind),
        }
    }

    fn decode(code: u64) -> Option<InterruptKind> {
        match code {
            1 => Some(InterruptKind::Cancelled),
            2 => Some(InterruptKind::DeadlineExceeded),
            3 => Some(InterruptKind::BudgetExhausted),
            _ => None,
        }
    }

    /// Full status check (reads the clock). Use at stage boundaries.
    pub fn status(&self) -> Option<InterruptKind> {
        if let Some(k) = Self::decode(self.tripped.load(Ordering::Relaxed)) {
            return Some(k);
        }
        if self.cancel.is_cancelled() {
            return Some(self.latch(InterruptKind::Cancelled));
        }
        if let Some(budget) = self.budget {
            if self.spent() > budget {
                return Some(self.latch(InterruptKind::BudgetExhausted));
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Some(self.latch(InterruptKind::DeadlineExceeded));
            }
        }
        None
    }

    /// Record `units` of work and check limits. The deadline is only read
    /// every [`DEADLINE_STRIDE`] calls; cancellation and budget are checked
    /// every call (two relaxed atomics).
    pub fn charge(&self, units: u64) -> Option<InterruptKind> {
        self.spent.fetch_add(units, Ordering::Relaxed);
        if let Some(k) = Self::decode(self.tripped.load(Ordering::Relaxed)) {
            return Some(k);
        }
        if self.cancel.is_cancelled() {
            return Some(self.latch(InterruptKind::Cancelled));
        }
        if let Some(budget) = self.budget {
            if self.spent.load(Ordering::Relaxed) > budget {
                return Some(self.latch(InterruptKind::BudgetExhausted));
            }
        }
        if self.deadline.is_some()
            && self
                .charges
                .fetch_add(1, Ordering::Relaxed)
                .is_multiple_of(DEADLINE_STRIDE)
        {
            if let Some(deadline) = self.deadline {
                if Instant::now() >= deadline {
                    return Some(self.latch(InterruptKind::DeadlineExceeded));
                }
            }
        }
        None
    }

    /// A guard closure for the lower crates' `*_guarded` entry points:
    /// charges the shared budget, `false` means "stop now".
    pub fn guard(&self) -> impl FnMut(u64) -> bool + '_ {
        move |units| self.charge(units).is_none()
    }

    /// Like [`RunControl::guard`], but shareable across worker threads:
    /// every charge lands on the same budget and the trip latch is
    /// observed by all workers, so a limit tripping on one thread stops
    /// the whole fan-out at the next chunk boundary.
    pub fn shared_guard(&self) -> impl Fn(u64) -> bool + Sync + '_ {
        move |units| self.charge(units).is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_control_never_trips() {
        let ctl = RunControl::new();
        assert!(ctl.status().is_none());
        for _ in 0..10_000 {
            assert!(ctl.charge(1_000).is_none());
        }
        assert_eq!(ctl.spent(), 10_000_000);
    }

    #[test]
    fn budget_trips_and_latches() {
        let ctl = RunControl::new().with_budget(100);
        assert!(ctl.charge(100).is_none());
        assert_eq!(ctl.charge(1), Some(InterruptKind::BudgetExhausted));
        // Latched: later checks report the same kind even if cancellation
        // arrives afterwards.
        ctl.token().cancel();
        assert_eq!(ctl.status(), Some(InterruptKind::BudgetExhausted));
    }

    #[test]
    fn cancellation_is_observed_from_another_handle() {
        let ctl = RunControl::new();
        let token = ctl.token();
        assert!(ctl.status().is_none());
        std::thread::spawn(move || token.cancel()).join().unwrap();
        assert_eq!(ctl.status(), Some(InterruptKind::Cancelled));
        assert_eq!(ctl.charge(1), Some(InterruptKind::Cancelled));
    }

    #[test]
    fn elapsed_deadline_trips_status_immediately() {
        let ctl = RunControl::new().with_deadline(Duration::ZERO);
        std::thread::sleep(Duration::from_millis(1));
        assert_eq!(ctl.status(), Some(InterruptKind::DeadlineExceeded));
    }

    #[test]
    fn elapsed_deadline_trips_charge_within_a_stride() {
        let ctl = RunControl::new().with_deadline(Duration::ZERO);
        std::thread::sleep(Duration::from_millis(1));
        let mut tripped = false;
        for _ in 0..=DEADLINE_STRIDE {
            if ctl.charge(1) == Some(InterruptKind::DeadlineExceeded) {
                tripped = true;
                break;
            }
        }
        assert!(tripped, "deadline not observed within one stride");
    }

    #[test]
    fn guard_closure_reports_trip() {
        let ctl = RunControl::new().with_budget(5);
        let mut guard = ctl.guard();
        assert!(guard(5));
        assert!(!guard(1));
        assert!(!guard(1), "guard stays tripped");
    }

    #[test]
    fn shared_guard_trips_across_threads() {
        let ctl = RunControl::new().with_budget(1000);
        let guard = ctl.shared_guard();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    // 2000 units per thread: each thread exceeds the budget
                    // even if it runs alone, so its last charge must refuse.
                    let mut mine = true;
                    for _ in 0..2000 {
                        mine = guard(1);
                    }
                    assert!(!mine, "2000 charged units must trip a 1000 budget");
                });
            }
        });
        assert_eq!(ctl.status(), Some(InterruptKind::BudgetExhausted));
    }
}

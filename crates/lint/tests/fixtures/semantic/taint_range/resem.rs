//@ path: crates/relgraph/src/resem.rs
//@ crate: relgraph
//! Fixture: the D102 producer side. `resemblance_of` divides without
//! clamping or asserting a [0, 1] range while a cluster-crate sink
//! consumes it; `walk_prob` performs the same arithmetic but clamps.

pub fn resemblance_of(a: &Refs, b: &Refs) -> f64 { //~ D102
    a.weight / b.weight
}

/// Walk probability over the shared neighborhood, clamped into range.
pub fn walk_prob(a: &Refs) -> f64 {
    (a.weight * a.weight).clamp(0.0, 1.0)
}

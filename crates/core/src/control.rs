//! Cooperative execution control: cancellation, deadlines, work budgets.
//!
//! A [`RunControl`] travels with a pipeline invocation and is consulted at
//! stage boundaries and inside the hot loops (probability propagation, SMO
//! training, agglomerative merging). The lower crates stay independent of
//! this type: they accept a plain `FnMut(u64) -> bool` *guard* closure, and
//! [`RunControl::guard`] produces one that charges the shared budget.
//!
//! Work units are deliberately coarse — one unit per frontier entry
//! propagated, per SMO outer-loop iteration, per candidate-pair similarity
//! — so a budget bounds CPU time roughly linearly without the loops paying
//! more than an atomic add per check. Deadline reads of the wall clock are
//! amortized to once every [`DEADLINE_STRIDE`] charges.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How many `charge` calls elapse between wall-clock deadline reads.
const DEADLINE_STRIDE: u64 = 256;

/// A cloneable handle that requests cancellation of a run.
///
/// Hand a clone to another thread (a ctrl-C handler, a supervisor); the
/// running pipeline observes the flag at its next control check.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>); // distinct-lint: shared(monotonic flag: set-once cancellation, observed at control checks)

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// Pipeline stages, for interruption reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // variant names are self-describing
pub enum Stage {
    TrainingSet,
    Profiles,
    SimilarityMatrix,
    SvmTraining,
    Clustering,
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Stage::TrainingSet => "training-set construction",
            Stage::Profiles => "profile computation",
            Stage::SimilarityMatrix => "pairwise similarity matrix",
            Stage::SvmTraining => "SVM training",
            Stage::Clustering => "agglomerative clustering",
        })
    }
}

/// How far a stage had progressed when it was interrupted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Progress {
    /// Items completed (profiles built, pairs featurized, ...).
    pub done: usize,
    /// Items the stage set out to process.
    pub total: usize,
}

impl fmt::Display for Progress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.done, self.total)
    }
}

/// Why a run was interrupted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterruptKind {
    /// The [`CancelToken`] was triggered.
    Cancelled,
    /// The wall-clock deadline passed.
    DeadlineExceeded,
    /// The work budget ran out.
    BudgetExhausted,
    /// A watchdog observed no heartbeat progress for the stall timeout
    /// and tripped the run (stuck stage, livelocked worker).
    Stalled,
}

impl fmt::Display for InterruptKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            InterruptKind::Cancelled => "cancelled",
            InterruptKind::DeadlineExceeded => "deadline exceeded",
            InterruptKind::BudgetExhausted => "work budget exhausted",
            InterruptKind::Stalled => "stalled (no heartbeat progress)",
        })
    }
}

/// Execution limits for one pipeline invocation.
///
/// ```
/// use distinct::RunControl;
/// use std::time::Duration;
/// let ctl = RunControl::new()
///     .with_deadline(Duration::from_secs(30))
///     .with_budget(5_000_000);
/// let token = ctl.token(); // hand to another thread to cancel
/// assert!(ctl.status().is_none());
/// # let _ = token;
/// ```
#[derive(Debug)]
pub struct RunControl {
    cancel: CancelToken,
    deadline: Option<Instant>,
    budget: Option<u64>,
    // distinct-lint: shared(commutative counter: relaxed adds of per-chunk costs, compared only against the budget)
    spent: AtomicU64,
    // Trips latch: once interrupted, every later check reports the same
    // kind, so a run's error consistently names the first cause.
    // Arc-shared so a [`TripHandle`] can latch from another thread.
    // distinct-lint: shared(first-trip-wins latch: compare-exchange from zero; later trips keep the first cause)
    tripped: Arc<AtomicU64>, // 0 = none, else InterruptKind discriminant + 1
    // distinct-lint: shared(commutative counter: relaxed increments, read only for diagnostics)
    charges: AtomicU64,
}

impl Default for RunControl {
    fn default() -> Self {
        Self::new()
    }
}

impl RunControl {
    /// No limits: never interrupts (cancellation still possible via
    /// [`RunControl::token`]).
    pub fn new() -> Self {
        RunControl {
            cancel: CancelToken::new(),
            deadline: None,
            budget: None,
            spent: AtomicU64::new(0),
            tripped: Arc::new(AtomicU64::new(0)),
            charges: AtomicU64::new(0),
        }
    }

    /// Limit wall-clock time, measured from this call.
    pub fn with_deadline(mut self, limit: Duration) -> Self {
        self.deadline = Some(Instant::now() + limit);
        self
    }

    /// Limit total work units across all stages.
    pub fn with_budget(mut self, units: u64) -> Self {
        self.budget = Some(units);
        self
    }

    /// Attach an external cancellation token.
    pub fn with_token(mut self, token: CancelToken) -> Self {
        self.cancel = token;
        self
    }

    /// A handle that cancels this run when triggered.
    pub fn token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Work units consumed so far.
    pub fn spent(&self) -> u64 {
        self.spent.load(Ordering::Relaxed)
    }

    fn latch(&self, kind: InterruptKind) -> InterruptKind {
        latch_in(&self.tripped, kind)
    }

    fn decode(code: u64) -> Option<InterruptKind> {
        match code {
            1 => Some(InterruptKind::Cancelled),
            2 => Some(InterruptKind::DeadlineExceeded),
            3 => Some(InterruptKind::BudgetExhausted),
            4 => Some(InterruptKind::Stalled),
            _ => None,
        }
    }

    /// Trip the run externally with the given cause: the kind latches (the
    /// first cause wins) and the cancel flag is raised so guard closures
    /// observe the interruption on their next charge. The run-manager
    /// watchdog uses this to convert a stuck stage into a typed
    /// [`InterruptKind::Stalled`] degradation.
    pub fn interrupt(&self, kind: InterruptKind) -> InterruptKind {
        let latched = self.latch(kind);
        self.cancel.cancel();
        latched
    }

    /// A cloneable, `'static` handle onto this control's trip latch and
    /// cancel flag, for threads that outlive the borrow of the control
    /// itself — the run-manager watchdog holds one so a stall callback can
    /// trip the run without borrowing it.
    pub fn trip_handle(&self) -> TripHandle {
        TripHandle {
            cancel: self.cancel.clone(),
            tripped: Arc::clone(&self.tripped),
        }
    }

    /// Full status check (reads the clock). Use at stage boundaries.
    pub fn status(&self) -> Option<InterruptKind> {
        if let Some(k) = Self::decode(self.tripped.load(Ordering::Relaxed)) {
            return Some(k);
        }
        if self.cancel.is_cancelled() {
            return Some(self.latch(InterruptKind::Cancelled));
        }
        if let Some(budget) = self.budget {
            if self.spent() > budget {
                return Some(self.latch(InterruptKind::BudgetExhausted));
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Some(self.latch(InterruptKind::DeadlineExceeded));
            }
        }
        None
    }

    /// Record `units` of work and check limits. The deadline is only read
    /// every [`DEADLINE_STRIDE`] calls; cancellation and budget are checked
    /// every call (two relaxed atomics).
    pub fn charge(&self, units: u64) -> Option<InterruptKind> {
        self.spent.fetch_add(units, Ordering::Relaxed);
        if let Some(k) = Self::decode(self.tripped.load(Ordering::Relaxed)) {
            return Some(k);
        }
        if self.cancel.is_cancelled() {
            return Some(self.latch(InterruptKind::Cancelled));
        }
        if let Some(budget) = self.budget {
            if self.spent.load(Ordering::Relaxed) > budget {
                return Some(self.latch(InterruptKind::BudgetExhausted));
            }
        }
        if self.deadline.is_some()
            && self
                .charges
                .fetch_add(1, Ordering::Relaxed)
                .is_multiple_of(DEADLINE_STRIDE)
        {
            if let Some(deadline) = self.deadline {
                if Instant::now() >= deadline {
                    return Some(self.latch(InterruptKind::DeadlineExceeded));
                }
            }
        }
        None
    }

    /// A guard closure for the lower crates' `*_guarded` entry points:
    /// charges the shared budget, `false` means "stop now".
    pub fn guard(&self) -> impl FnMut(u64) -> bool + '_ {
        move |units| self.charge(units).is_none()
    }

    /// Like [`RunControl::guard`], but shareable across worker threads:
    /// every charge lands on the same budget and the trip latch is
    /// observed by all workers, so a limit tripping on one thread stops
    /// the whole fan-out at the next chunk boundary.
    pub fn shared_guard(&self) -> impl Fn(u64) -> bool + Sync + '_ {
        move |units| self.charge(units).is_none()
    }
}

/// Latch `kind` into a shared trip word (first cause wins), reporting the
/// kind that is actually latched.
fn latch_in(tripped: &AtomicU64, kind: InterruptKind) -> InterruptKind {
    let code = match kind {
        InterruptKind::Cancelled => 1,
        InterruptKind::DeadlineExceeded => 2,
        InterruptKind::BudgetExhausted => 3,
        InterruptKind::Stalled => 4,
    };
    match tripped.compare_exchange(0, code, Ordering::Relaxed, Ordering::Relaxed) {
        Ok(_) => kind,
        Err(prev) => RunControl::decode(prev).unwrap_or(kind),
    }
}

/// A cloneable, thread-safe handle onto a [`RunControl`]'s trip latch.
///
/// Unlike the control itself (which is borrowed by the running pipeline),
/// a handle is `'static` and can move into a watchdog or supervisor
/// thread; [`TripHandle::interrupt`] behaves exactly like
/// [`RunControl::interrupt`] on the originating control.
#[derive(Debug, Clone)]
pub struct TripHandle {
    cancel: CancelToken,
    // distinct-lint: shared(same latch as RunControl.tripped: first-trip-wins via compare-exchange)
    tripped: Arc<AtomicU64>,
}

impl TripHandle {
    /// Trip the originating run: latch the cause (first one wins) and
    /// raise the cancel flag so guards observe it on their next charge.
    pub fn interrupt(&self, kind: InterruptKind) -> InterruptKind {
        let latched = latch_in(&self.tripped, kind);
        self.cancel.cancel();
        latched
    }
}

/// Parse a `VmRSS:`/`VmHWM:` line of `/proc/self/status` ("  1234 kB")
/// into bytes.
fn parse_status_kb(line: &str) -> Option<u64> {
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// Read one `VmXXX` field of `/proc/self/status` in bytes.
fn read_proc_status(field: &str) -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find(|l| l.starts_with(field))
        .and_then(parse_status_kb)
}

/// Current resident set size of this process in bytes, or `None` where
/// `/proc/self/status` is unavailable (non-Linux). Used by the run
/// manager's memory-budget guard; like the wall clock, process-wide
/// memory observation lives here so the rest of the workspace stays
/// deterministic (lint D004's sanctioned home).
pub fn current_rss_bytes() -> Option<u64> {
    read_proc_status("VmRSS:")
}

/// Peak resident set size (high-water mark) of this process in bytes, or
/// `None` where unavailable. Reported in [`crate::ExecReport`] for the
/// benchmark ladder.
pub fn peak_rss_bytes() -> Option<u64> {
    read_proc_status("VmHWM:")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_control_never_trips() {
        let ctl = RunControl::new();
        assert!(ctl.status().is_none());
        for _ in 0..10_000 {
            assert!(ctl.charge(1_000).is_none());
        }
        assert_eq!(ctl.spent(), 10_000_000);
    }

    #[test]
    fn budget_trips_and_latches() {
        let ctl = RunControl::new().with_budget(100);
        assert!(ctl.charge(100).is_none());
        assert_eq!(ctl.charge(1), Some(InterruptKind::BudgetExhausted));
        // Latched: later checks report the same kind even if cancellation
        // arrives afterwards.
        ctl.token().cancel();
        assert_eq!(ctl.status(), Some(InterruptKind::BudgetExhausted));
    }

    #[test]
    fn cancellation_is_observed_from_another_handle() {
        let ctl = RunControl::new();
        let token = ctl.token();
        assert!(ctl.status().is_none());
        std::thread::spawn(move || token.cancel()).join().unwrap();
        assert_eq!(ctl.status(), Some(InterruptKind::Cancelled));
        assert_eq!(ctl.charge(1), Some(InterruptKind::Cancelled));
    }

    #[test]
    fn elapsed_deadline_trips_status_immediately() {
        let ctl = RunControl::new().with_deadline(Duration::ZERO);
        std::thread::sleep(Duration::from_millis(1));
        assert_eq!(ctl.status(), Some(InterruptKind::DeadlineExceeded));
    }

    #[test]
    fn elapsed_deadline_trips_charge_within_a_stride() {
        let ctl = RunControl::new().with_deadline(Duration::ZERO);
        std::thread::sleep(Duration::from_millis(1));
        let mut tripped = false;
        for _ in 0..=DEADLINE_STRIDE {
            if ctl.charge(1) == Some(InterruptKind::DeadlineExceeded) {
                tripped = true;
                break;
            }
        }
        assert!(tripped, "deadline not observed within one stride");
    }

    #[test]
    fn guard_closure_reports_trip() {
        let ctl = RunControl::new().with_budget(5);
        let mut guard = ctl.guard();
        assert!(guard(5));
        assert!(!guard(1));
        assert!(!guard(1), "guard stays tripped");
    }

    #[test]
    fn interrupt_latches_stalled_and_cancels() {
        let ctl = RunControl::new();
        assert_eq!(
            ctl.interrupt(InterruptKind::Stalled),
            InterruptKind::Stalled
        );
        // Latched: the first cause wins over later interrupts.
        assert_eq!(
            ctl.interrupt(InterruptKind::Cancelled),
            InterruptKind::Stalled
        );
        assert_eq!(ctl.status(), Some(InterruptKind::Stalled));
        assert_eq!(ctl.charge(1), Some(InterruptKind::Stalled));
        assert!(ctl.token().is_cancelled());
    }

    #[test]
    fn trip_handle_interrupts_from_another_thread() {
        let ctl = RunControl::new();
        let handle = ctl.trip_handle();
        std::thread::spawn(move || handle.interrupt(InterruptKind::Stalled))
            .join()
            .unwrap();
        assert_eq!(ctl.status(), Some(InterruptKind::Stalled));
        assert!(ctl.token().is_cancelled());
        // The latch still reports the first cause to later handles.
        assert_eq!(
            ctl.trip_handle().interrupt(InterruptKind::Cancelled),
            InterruptKind::Stalled
        );
    }

    #[test]
    fn rss_probes_report_plausible_sizes_on_linux() {
        if let (Some(cur), Some(peak)) = (current_rss_bytes(), peak_rss_bytes()) {
            assert!(cur > 0);
            assert!(peak >= cur / 2, "HWM {peak} implausibly below RSS {cur}");
        }
        assert_eq!(parse_status_kb("VmRSS:\t  128 kB"), Some(128 * 1024));
        assert_eq!(parse_status_kb("VmRSS:"), None);
    }

    #[test]
    fn shared_guard_trips_across_threads() {
        let ctl = RunControl::new().with_budget(1000);
        let guard = ctl.shared_guard();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    // 2000 units per thread: each thread exceeds the budget
                    // even if it runs alone, so its last charge must refuse.
                    let mut mine = true;
                    for _ in 0..2000 {
                        mine = guard(1);
                    }
                    assert!(!mine, "2000 charged units must trip a 1000 budget");
                });
            }
        });
        assert_eq!(ctl.status(), Some(InterruptKind::BudgetExhausted));
    }
}

//! Automatic `min-sim` calibration — an extension beyond the paper.
//!
//! The paper fixes `min-sim` by hand (0.0005 for its weight scale). That
//! constant does not transfer across databases, weight normalizations, or
//! even training-set sizes. This module removes it: since the training
//! stage already identified *unique* names, we can manufacture labelled
//! ambiguity by **pooling the references of several unique names into one
//! pseudo-ambiguous group** — by construction, the name identity is the
//! ground truth. Sweeping the clustering threshold over these groups and
//! keeping the best-scoring value yields a calibrated `min-sim` with no
//! manual labels, in the same spirit as the paper's automatic training-set
//! construction.

use crate::pipeline::Distinct;
use eval::PairCounts;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use relstore::TupleRef;
use serde::{Deserialize, Serialize};

/// Calibration parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CalibrationConfig {
    /// Number of pseudo-ambiguous groups to synthesize.
    pub groups: usize,
    /// Entities pooled per group, inclusive range (mirrors Table 1's 2–14).
    pub entities_per_group: (usize, usize),
    /// Only unique names with at least this many references participate.
    pub min_refs: usize,
    /// Cap on references drawn per entity (keeps groups balanced-ish).
    pub max_refs_per_entity: usize,
    /// Sampling seed.
    pub seed: u64,
    /// Thresholds evaluated.
    pub grid: Vec<f64>,
    /// Conservative-pick tolerance: among thresholds whose mean f-measure
    /// is within this of the best, the **largest** wins. Pseudo-ambiguous
    /// groups are built from unique names and carry less cross-linkage
    /// than genuinely ambiguous ones, so the raw optimum skews low
    /// (over-merging); preferring the high end of the plateau compensates.
    pub tolerance: f64,
}

impl Default for CalibrationConfig {
    fn default() -> Self {
        CalibrationConfig {
            groups: 20,
            entities_per_group: (2, 5),
            min_refs: 3,
            max_refs_per_entity: 30,
            seed: 23,
            grid: crate::variants::min_sim_grid(),
            tolerance: 0.05,
        }
    }
}

/// Outcome of a calibration run.
#[derive(Debug, Clone)]
pub struct CalibrationResult {
    /// The selected threshold.
    pub min_sim: f64,
    /// Mean pairwise f-measure at the selected threshold.
    pub f_measure: f64,
    /// Mean pairwise accuracy at the selected threshold.
    pub accuracy: f64,
    /// The full sweep: `(threshold, accuracy, f-measure)` per grid point.
    pub sweep: Vec<(f64, f64, f64)>,
    /// Number of pseudo-ambiguous groups actually built.
    pub groups: usize,
}

/// One synthesized pseudo-ambiguous group.
#[derive(Debug, Clone)]
pub struct PseudoGroup {
    /// Pooled references.
    pub refs: Vec<TupleRef>,
    /// Ground-truth entity index per reference.
    pub labels: Vec<usize>,
}

/// Build pseudo-ambiguous groups from unique names.
pub fn synthesize_groups(
    names: &[(String, Vec<TupleRef>)],
    cfg: &CalibrationConfig,
) -> Vec<PseudoGroup> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut eligible: Vec<&(String, Vec<TupleRef>)> = names
        .iter()
        .filter(|(_, refs)| refs.len() >= cfg.min_refs)
        .collect();
    eligible.shuffle(&mut rng);
    let mut groups = Vec::new();
    let mut cursor = 0usize;
    for _ in 0..cfg.groups {
        let k = rng.gen_range(cfg.entities_per_group.0..=cfg.entities_per_group.1);
        if cursor + k > eligible.len() {
            break; // ran out of unique names
        }
        let mut refs = Vec::new();
        let mut labels = Vec::new();
        for (entity, (_, entity_refs)) in eligible[cursor..cursor + k].iter().enumerate() {
            for &r in entity_refs.iter().take(cfg.max_refs_per_entity) {
                refs.push(r);
                labels.push(entity);
            }
        }
        cursor += k;
        groups.push(PseudoGroup { refs, labels });
    }
    groups
}

/// Sweep the grid over pseudo-ambiguous groups and pick the threshold with
/// the best mean f-measure (accuracy breaks ties).
///
/// Returns `None` if fewer than two groups could be synthesized (not
/// enough unique names) or the grid is empty.
pub fn calibrate_min_sim(
    engine: &Distinct,
    names: &[(String, Vec<TupleRef>)],
    cfg: &CalibrationConfig,
) -> Option<CalibrationResult> {
    let groups = synthesize_groups(names, cfg);
    if groups.len() < 2 || cfg.grid.is_empty() {
        return None;
    }
    let mut sweep = Vec::with_capacity(cfg.grid.len());
    for &min_sim in &cfg.grid {
        let mut f_sum = 0.0;
        let mut acc_sum = 0.0;
        for g in &groups {
            let clustering = engine
                .resolve(&crate::request::ResolveRequest::new(&g.refs).min_sim(min_sim))
                .clustering;
            let counts = PairCounts::from_labels(&g.labels, &clustering.labels);
            f_sum += counts.scores().f_measure;
            acc_sum += counts.accuracy();
        }
        sweep.push((
            min_sim,
            acc_sum / groups.len() as f64,
            f_sum / groups.len() as f64,
        ));
    }
    // Conservative pick: largest threshold within `tolerance` of the best
    // mean f-measure.
    let best_f = sweep
        .iter()
        .map(|&(_, _, f)| f)
        .fold(f64::NEG_INFINITY, f64::max);
    let (min_sim, accuracy, f_measure) = sweep
        .iter()
        .rev()
        .find(|&&(_, _, f)| f >= best_f - cfg.tolerance)
        .copied()?;
    Some(CalibrationResult {
        min_sim,
        f_measure,
        accuracy,
        sweep,
        groups: groups.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use relstore::{RelId, TupleId};

    fn fake_names(n: usize, refs_each: usize) -> Vec<(String, Vec<TupleRef>)> {
        (0..n)
            .map(|i| {
                let refs = (0..refs_each)
                    .map(|j| TupleRef::new(RelId(0), TupleId((i * refs_each + j) as u32)))
                    .collect();
                (format!("Name {i}"), refs)
            })
            .collect()
    }

    #[test]
    fn groups_pool_disjoint_names() {
        let names = fake_names(20, 4);
        let cfg = CalibrationConfig {
            groups: 5,
            ..Default::default()
        };
        let groups = synthesize_groups(&names, &cfg);
        assert!(!groups.is_empty());
        let mut seen = std::collections::HashSet::new();
        for g in &groups {
            assert_eq!(g.refs.len(), g.labels.len());
            // Entities labelled densely from 0.
            let k = g.labels.iter().max().unwrap() + 1;
            assert!((cfg.entities_per_group.0..=cfg.entities_per_group.1).contains(&k));
            for &r in &g.refs {
                assert!(seen.insert(r), "reference reused across groups");
            }
        }
    }

    #[test]
    fn min_refs_filter_applies() {
        let mut names = fake_names(10, 2); // below min_refs = 3
        names.extend(
            fake_names(1, 5)
                .into_iter()
                .map(|(n, r)| (format!("big {n}"), r)),
        );
        let cfg = CalibrationConfig::default();
        let groups = synthesize_groups(&names, &cfg);
        // Only one eligible name -> cannot form a 2+-entity group.
        assert!(groups.is_empty());
    }

    #[test]
    fn max_refs_per_entity_caps_group_size() {
        let names = fake_names(4, 50);
        let cfg = CalibrationConfig {
            groups: 1,
            entities_per_group: (2, 2),
            max_refs_per_entity: 10,
            ..Default::default()
        };
        let groups = synthesize_groups(&names, &cfg);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].refs.len(), 20);
    }

    #[test]
    fn synthesis_is_deterministic() {
        let names = fake_names(30, 4);
        let cfg = CalibrationConfig::default();
        let a = synthesize_groups(&names, &cfg);
        let b = synthesize_groups(&names, &cfg);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.refs, y.refs);
            assert_eq!(x.labels, y.labels);
        }
    }
}

//! Cross-crate property tests: randomized relational catalogs, CSV
//! round-trips, propagation invariants, and clustering laws.

use cluster::{agglomerate, Linkage, MatrixMerger};
use proptest::prelude::*;
use relgraph::{propagate, LinkGraph};
use relstore::{
    csv, enumerate_paths, AttrType, Catalog, PathEnumOptions, Relation, SchemaBuilder, Tuple,
    TupleRef, Value,
};

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

/// A random two-level catalog: `Child(key, parent -> Parent, tag)` and
/// `Parent(key, label)`, with `n_parents` parents and arbitrary child
/// assignments (possibly null).
fn random_catalog(n_parents: usize, assignments: &[Option<usize>]) -> Catalog {
    let mut c = Catalog::new();
    c.add_relation(
        SchemaBuilder::new("Parent")
            .key("key", AttrType::Int)
            .data("label", AttrType::Str)
            .build()
            .unwrap(),
    )
    .unwrap();
    c.add_relation(
        SchemaBuilder::new("Child")
            .key("key", AttrType::Int)
            .fk("parent", AttrType::Int, "Parent")
            .data("tag", AttrType::Str)
            .build()
            .unwrap(),
    )
    .unwrap();
    for p in 0..n_parents {
        c.insert(
            "Parent",
            Tuple::new(vec![
                Value::Int(p as i64),
                Value::str(format!("L{}", p % 3)),
            ]),
        )
        .unwrap();
    }
    for (i, a) in assignments.iter().enumerate() {
        let parent = match a {
            Some(p) => Value::Int((*p % n_parents) as i64),
            None => Value::Null,
        };
        c.insert(
            "Child",
            Tuple::new(vec![
                Value::Int(i as i64),
                parent,
                Value::str(format!("t{}", i % 4)),
            ]),
        )
        .unwrap();
    }
    c.finalize(true).unwrap();
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // -- relstore ----------------------------------------------------------

    #[test]
    fn csv_round_trip_arbitrary_strings(
        rows in proptest::collection::vec(
            (any::<i64>(), "[ -~]*", proptest::option::of(any::<i64>())), 0..25),
    ) {
        let schema = SchemaBuilder::new("R")
            .data("text", AttrType::Str)
            .data("num", AttrType::Int)
            .data("id", AttrType::Int)
            .build()
            .unwrap();
        let mut rel = Relation::new(schema.clone());
        for (i, (id, text, num)) in rows.iter().enumerate() {
            let _ = i;
            rel.insert(Tuple::new(vec![
                Value::str(text),
                num.map(Value::Int).unwrap_or(Value::Null),
                Value::Int(*id),
            ]))
            .unwrap();
        }
        let emitted = csv::to_csv(&rel);
        let mut back = Relation::new(schema);
        csv::load_csv(&mut back, &emitted).unwrap();
        prop_assert_eq!(back.len(), rel.len());
        for (tid, t) in rel.iter() {
            prop_assert_eq!(t, back.tuple(tid));
        }
    }

    #[test]
    fn fk_traversal_round_trips(
        n_parents in 1usize..6,
        assignments in proptest::collection::vec(
            proptest::option::of(0usize..16), 1..30),
    ) {
        let c = random_catalog(n_parents, &assignments);
        let child = c.relation_id("Child").unwrap();
        let fk = c.fk_edges()[0].id;
        // For each child with a parent: the child appears in its parent's
        // backward list exactly once.
        for (tid, t) in c.relation(child).iter() {
            let r = TupleRef::new(child, tid);
            match c.follow_forward(fk, r) {
                Some(parent) => {
                    let back = c.follow_backward(fk, parent);
                    prop_assert_eq!(back.iter().filter(|&&x| x == r).count(), 1);
                    prop_assert_eq!(c.backward_count(fk, parent), back.len());
                }
                None => prop_assert!(t.get(1).is_null()),
            }
        }
    }

    // -- relgraph -----------------------------------------------------------

    #[test]
    fn propagation_mass_conservation_on_random_catalogs(
        n_parents in 1usize..6,
        assignments in proptest::collection::vec(
            proptest::option::of(0usize..16), 1..25),
        start_idx in 0usize..25,
    ) {
        let c = random_catalog(n_parents, &assignments);
        let ex = relstore::expand_values(&c).unwrap();
        let graph = LinkGraph::build(&ex.catalog);
        let child = ex.catalog.relation_id("Child").unwrap();
        let n_children = ex.catalog.relation(child).len();
        let origin = TupleRef::new(child, relstore::TupleId((start_idx % n_children) as u32));
        let opts = PathEnumOptions { max_len: 3, ..Default::default() };
        for path in enumerate_paths(&ex.catalog, child, &opts) {
            let prop = propagate(&graph, &ex.catalog, &path, origin);
            // Forward mass never exceeds 1.
            prop_assert!(prop.total_forward() <= 1.0 + 1e-9);
            // Forward and backward supports coincide; all values in (0, 1].
            for (n, &f) in &prop.forward {
                prop_assert!(f > 0.0 && f <= 1.0 + 1e-9);
                let b = prop.backward[n];
                prop_assert!(b > 0.0 && b <= 1.0 + 1e-9);
            }
            prop_assert_eq!(prop.forward.len(), prop.backward.len());
        }
    }

    // -- cluster -------------------------------------------------------------

    #[test]
    fn clustering_labels_are_a_valid_partition(
        sims in proptest::collection::vec(0.0f64..1.0, 0..36),
        min_sim in 0.0f64..1.0,
    ) {
        // Build a symmetric matrix from the flat triangle.
        let n = (1..).find(|&k| k * (k + 1) / 2 >= sims.len()).unwrap_or(1).min(8);
        let mut m = vec![vec![0.0; n]; n];
        let mut it = sims.iter();
        for i in 0..n {
            for j in (i + 1)..n {
                let v = *it.next().unwrap_or(&0.0);
                m[i][j] = v;
                m[j][i] = v;
            }
        }
        for linkage in [Linkage::Single, Linkage::Complete, Linkage::Average] {
            let mut merger = MatrixMerger::new(m.clone(), linkage);
            let c = agglomerate(n, &mut merger, min_sim);
            prop_assert_eq!(c.labels.len(), n);
            // Labels dense from 0.
            let k = c.cluster_count();
            for &l in &c.labels {
                prop_assert!(l < k);
            }
            for label in 0..k {
                prop_assert!(c.labels.contains(&label));
            }
            // Merges recorded in non-increasing similarity order.
            let merge_sims: Vec<f64> =
                c.dendrogram.merges().iter().map(|mg| mg.similarity).collect();
            for w in merge_sims.windows(2) {
                prop_assert!(w[0] >= w[1] - 1e-12);
            }
        }
    }

    #[test]
    fn higher_threshold_never_produces_fewer_clusters(
        sims in proptest::collection::vec(0.0f64..1.0, 15),
        t_lo in 0.0f64..0.5,
        dt in 0.0f64..0.5,
    ) {
        let n = 6;
        let mut m = vec![vec![0.0; n]; n];
        let mut it = sims.iter();
        for i in 0..n {
            for j in (i + 1)..n {
                let v = *it.next().unwrap();
                m[i][j] = v;
                m[j][i] = v;
            }
        }
        let clusters_at = |t: f64| {
            let mut merger = MatrixMerger::new(m.clone(), Linkage::Average);
            agglomerate(n, &mut merger, t).cluster_count()
        };
        prop_assert!(clusters_at(t_lo + dt) >= clusters_at(t_lo));
    }

    // -- eval ----------------------------------------------------------------

    #[test]
    fn pairwise_and_bcubed_agree_on_perfection(
        gold in proptest::collection::vec(0usize..4, 1..20),
        pred in proptest::collection::vec(0usize..4, 1..20),
    ) {
        let n = gold.len().min(pred.len());
        let (gold, pred) = (&gold[..n], &pred[..n]);
        let pw = eval::pairwise_scores(gold, pred);
        let b3 = eval::bcubed_scores(gold, pred);
        // Same-partition check: pairwise f = 1 iff B3 f = 1.
        prop_assert_eq!(pw.f_measure >= 1.0 - 1e-12, b3.f_measure >= 1.0 - 1e-12);
        // B3 recall 1 iff pairwise recall 1 (no gold pair separated).
        prop_assert_eq!(pw.recall >= 1.0 - 1e-12, b3.recall >= 1.0 - 1e-12);
    }
}

// ---------------------------------------------------------------------------
// Pinned regressions (see tests/property_suite.proptest-regressions)
// ---------------------------------------------------------------------------

/// The shrunk counterexample persisted as `cc fbb22b6a…`: one row holding
/// an empty string and a NULL integer. The vendored proptest never replays
/// the `.proptest-regressions` file (its RNG stream is derived from the
/// test name, with no persistence), so the case is pinned here explicitly:
/// a bare empty CSV field must round-trip as `Null` and a quoted `""` as
/// the empty string, or the two collapse into each other.
#[test]
fn regression_csv_round_trip_empty_string_null_int() {
    let schema = SchemaBuilder::new("R")
        .data("text", AttrType::Str)
        .data("num", AttrType::Int)
        .data("id", AttrType::Int)
        .build()
        .unwrap();
    let mut rel = Relation::new(schema.clone());
    rel.insert(Tuple::new(vec![Value::str(""), Value::Null, Value::Int(0)]))
        .unwrap();
    let emitted = csv::to_csv(&rel);
    // The writer must keep the two nothing-like values distinguishable.
    assert!(
        emitted.lines().nth(1).unwrap().starts_with("\"\","),
        "empty string must be emitted quoted, got {emitted:?}"
    );
    let mut back = Relation::new(schema);
    csv::load_csv(&mut back, &emitted).unwrap();
    assert_eq!(back.len(), 1);
    let t = back.tuple(relstore::TupleId(0));
    assert_eq!(t.values()[0], Value::str(""));
    assert_eq!(t.values()[1], Value::Null);
    assert_eq!(t.values()[2], Value::Int(0));
}
